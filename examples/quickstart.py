#!/usr/bin/env python3
"""Quickstart: exact and approximate inference for a GDatalog¬[Δ] program.

This script walks through the paper's running example (network resilience,
Examples 1.1/3.1/3.6/3.10): a 3-router clique in which router 1 is infected
by a malware that spreads to neighbours with probability 0.1.  The network is
*dominated* when every router is infected or isolated, which the program
captures with stable negation and an integrity constraint.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import GDatalogEngine

PROGRAM = """
% Malware propagation: an infected router infects each neighbour with p=0.1.
infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).

% A router that is not infected is uninfected (stable negation).
uninfected(X) :- router(X), not infected(X, 1).

% Domination fails when two uninfected routers are connected.
:- uninfected(X), uninfected(Y), connected(X, Y).
"""

DATABASE = """
router(1). router(2). router(3).
infected(1, 1).
connected(1, 2). connected(2, 1). connected(1, 3).
connected(3, 1). connected(2, 3). connected(3, 2).
"""


def main() -> None:
    engine = GDatalogEngine.from_source(PROGRAM, DATABASE, grounder="simple")

    # ---- exact inference (exhaustive chase) --------------------------------
    space = engine.output_space()
    print("=== exact inference ===")
    print(f"finite possible outcomes : {len(space)}")
    print(f"total finite mass        : {space.finite_probability:.6f}")
    print(f"P(network dominated)     : {space.probability_has_stable_model():.6f}  (paper: 0.19)")
    print(f"P(router 2 infected)     : {engine.marginal('infected(2, 1)'):.6f}")
    print(f"P(router 2 uninfected)   : {engine.marginal('uninfected(2)'):.6f}")
    print()

    # ---- the event structure ------------------------------------------------
    print("=== events (grouped by induced set of stable models) ===")
    for i, event in enumerate(space.events()):
        label = "dominated" if event.has_stable_model else "not dominated"
        print(f"event {i}: p = {event.probability:.6f}  [{label}, {len(event)} outcome(s)]")
    print()

    # ---- Monte-Carlo estimation ---------------------------------------------
    print("=== Monte-Carlo estimation (forward sampling) ===")
    estimate = engine.estimate_has_stable_model(n=2000, seed=0)
    low, high = estimate.confidence_interval()
    print(f"P(network dominated) ≈ {estimate}  95% CI [{low:.4f}, {high:.4f}]")


if __name__ == "__main__":
    main()
