#!/usr/bin/env python3
"""Comparing GDatalog¬ with the BCKOV, ProbLog-style and credal-PASP baselines.

Three comparisons on workloads expressible in several formalisms:

1. *Positive programs*: our simple-grounder semantics versus the original
   BCKOV semantics of Bárány et al. (they are isomorphic — Theorem C.4).
2. *Monotone infection reachability*: GDatalog¬ attribute-level sampling
   versus ProbLog-style probabilistic edge facts.
3. *Non-monotone choice*: the fair-coin program versus its credal
   probabilistic-ASP reading (lower/upper probabilities).

Run with::

    python examples/baseline_comparison.py
"""

from __future__ import annotations

from repro import GDatalogEngine
from repro.analysis import TextTable
from repro.baselines import BCKOVEngine, PASPProgram, ProbabilisticFact, ProbLogProgram
from repro.logic import Database, fact, parse_datalog_program, parse_gdatalog_program
from repro.workloads import coin_program, random_database, random_positive_program


def bckov_comparison() -> None:
    print("=== 1. positive programs: simple-grounder semantics vs BCKOV ===")
    table = TextTable(["seed", "outcomes (ours)", "outcomes (BCKOV)", "max |Δp|"])
    for seed in range(4):
        program = random_positive_program(seed=seed, rule_count=4)
        database = random_database(seed=seed)
        engine = GDatalogEngine(program, database, grounder="simple")
        ours: dict[frozenset, float] = {}
        for outcome in engine.possible_outcomes():
            key = next(iter(outcome.stable_models_modulo(hide_active=True, hide_result=False)))
            ours[key] = ours.get(key, 0.0) + outcome.probability
        bckov = BCKOVEngine(program, database).run()
        theirs = bckov.distribution_over_instances()
        keys = set(ours) | set(theirs)
        max_diff = max(abs(ours.get(k, 0.0) - theirs.get(k, 0.0)) for k in keys)
        table.add_row(seed, len(engine.possible_outcomes()), len(bckov), f"{max_diff:.2e}")
    print(table.render())
    print()


def problog_comparison() -> None:
    print("=== 2. monotone reachability: GDatalog¬ vs ProbLog-style facts ===")
    # GDatalog¬ encoding: each edge transmits with probability 0.5.
    gdatalog_source = """
    infected(Y, flip<0.5>[X, Y]) :- infected(X, 1), connected(X, Y).
    """
    gdatalog_db = """
    infected(1, 1).
    connected(1, 2). connected(2, 3).
    """
    engine = GDatalogEngine.from_source(gdatalog_source, gdatalog_db)

    # ProbLog-style encoding: probabilistic "transmits" facts + reachability rules.
    problog_rules = parse_datalog_program(
        """
        reached(X) :- seed(X).
        reached(Y) :- reached(X), transmits(X, Y).
        """
    )
    problog = ProbLogProgram(
        [ProbabilisticFact(0.5, fact("transmits", 1, 2)), ProbabilisticFact(0.5, fact("transmits", 2, 3))],
        problog_rules,
        Database([fact("seed", 1)]),
    )
    table = TextTable(["query", "GDatalog¬", "ProbLog baseline"])
    table.add_row("node 2 reached", engine.marginal("infected(2, 1)"), problog.query(fact("reached", 2)))
    table.add_row("node 3 reached", engine.marginal("infected(3, 1)"), problog.query(fact("reached", 3)))
    print(table.render())
    print()


def pasp_comparison() -> None:
    print("=== 3. non-monotone choice: the coin program vs credal PASP ===")
    engine = GDatalogEngine(coin_program(), Database())
    space = engine.output_space()
    print(f"GDatalog¬: P(some stable model) = {space.probability_has_stable_model():.3f}; "
          f"P(aux1 brave) = {space.marginal(fact('aux1'), 'brave'):.3f}; "
          f"P(aux1 cautious) = {space.marginal(fact('aux1'), 'cautious'):.3f}")

    pasp_rules = parse_datalog_program(
        """
        aux1 :- coin1, not aux2.
        aux2 :- coin1, not aux1.
        """
    )
    pasp = PASPProgram([ProbabilisticFact(0.5, fact("coin1"))], pasp_rules)
    interval = pasp.query(fact("aux1"))
    print(f"credal PASP: P(aux1) ∈ {interval}")
    print()
    print("The GDatalog¬ brave/cautious marginals coincide with the credal upper/lower")
    print("probabilities on this workload, while additionally assigning positive mass")
    print("to the inconsistent ('heads') outcome instead of excluding it a priori.")


def main() -> None:
    bckov_comparison()
    problog_comparison()
    pasp_comparison()


if __name__ == "__main__":
    main()
