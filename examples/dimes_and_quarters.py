#!/usr/bin/env python3
"""Stratified negation and the perfect grounder (Appendix E, Figure 1).

A set of dimes is tossed; only if none of them shows tail, a set of quarters
is tossed as well.  The example prints the dependency graph of the program
(the paper's Figure 1), its stratification, and compares the possible
outcomes produced by the simple and by the perfect grounder — the perfect
grounder never activates the quarter flips on branches where a dime already
showed tail, yielding fewer (but probabilistically equivalent) outcomes.

Run with::

    python examples/dimes_and_quarters.py
"""

from __future__ import annotations

from repro import GDatalogEngine
from repro.analysis import TextTable
from repro.gdatalog import format_dependency_graph, format_stratification, to_dot
from repro.workloads import dime_quarter_database, dime_quarter_program


def main() -> None:
    program = dime_quarter_program()
    database = dime_quarter_database(dimes=2, quarters=1)

    print("=== program ===")
    print(program)
    print()
    print("=== dependency graph dg(Π)  (Figure 1; [neg] = dashed edge) ===")
    print(format_dependency_graph(program))
    print()
    print("=== stratification (topological ordering over scc(Π)) ===")
    print(format_stratification(program))
    print()
    print("=== Graphviz DOT (paste into `dot -Tpng`) ===")
    print(to_dot(program, name="figure1"))
    print()

    table = TextTable(
        ["grounder", "outcomes", "P(somedimetail)", "P(quartertail)", "mass"],
        title="Simple vs perfect grounder on the dime/quarter program",
    )
    spaces = {}
    for grounder in ("simple", "perfect"):
        engine = GDatalogEngine(program, database, grounder=grounder)
        space = engine.output_space()
        spaces[grounder] = space
        table.add_row(
            grounder,
            len(space),
            engine.marginal("somedimetail"),
            engine.marginal("quartertail(3, 1)"),
            space.finite_probability,
        )
    print(table.render())
    print()

    print("Theorem 5.3 check: perfect is as good as simple:",
          spaces["perfect"].as_good_as(spaces["simple"]))
    print()

    print("=== possible outcomes under the perfect grounder ===")
    engine = GDatalogEngine(program, database, grounder="perfect")
    for outcome in engine.possible_outcomes():
        choices = ", ".join(
            f"{r.active_atom.args[-1]}↦{int(r.outcome_value)}" for r in sorted(outcome.atr_rules, key=str)
        )
        model = next(iter(outcome.visible_stable_models()))
        rendered_model = ", ".join(sorted(str(a) for a in model))
        print(f"p = {outcome.probability:.4f}  choices [{choices}]  model {{{rendered_model}}}")


if __name__ == "__main__":
    main()
