#!/usr/bin/env python3
"""Network resilience across topologies and infection rates.

This example sweeps the paper's malware-domination workload over several
network topologies and propagation probabilities, comparing exact chase
inference with Monte-Carlo estimation, and conditioning the prior on partial
observations (the PPDL constraint component).

Run with::

    python examples/network_resilience.py
"""

from __future__ import annotations

from repro import GDatalogEngine
from repro.analysis import TextTable, Timer
from repro.ppdl import AtomQuery, ConditionalQuery, ConstraintSet
from repro.workloads import network_database, resilience_program, topology_graph


def domination_table() -> None:
    """P(dominated) for several small topologies and infection rates."""
    table = TextTable(
        ["topology", "routers", "p(infect)", "outcomes", "P(dominated)", "MC estimate", "chase s"],
        title="Malware domination probability (exact chase vs Monte-Carlo)",
    )
    for kind, size in (("clique", 3), ("chain", 4), ("star", 4), ("cycle", 4)):
        for probability in (0.1, 0.5):
            program = resilience_program(probability)
            database = network_database(topology_graph(kind, size), infected_seeds=[0])
            engine = GDatalogEngine(program, database, grounder="simple")
            with Timer() as timer:
                exact = engine.probability_has_stable_model()
            estimate = engine.estimate_has_stable_model(n=1500, seed=1)
            table.add_row(
                kind,
                size,
                probability,
                len(engine.possible_outcomes()),
                exact,
                estimate.value,
                f"{timer.elapsed:.3f}",
            )
    print(table.render())
    print()


def conditioning_demo() -> None:
    """Condition the 3-router example on observing that router 3 got infected."""
    program = resilience_program(0.1)
    database = network_database(topology_graph("clique", 3), infected_seeds=[0])
    engine = GDatalogEngine(program, database)
    space = engine.output_space()

    prior_query = AtomQuery.of("infected(2, 1)")
    evidence = ConstraintSet.observing("infected(3, 1)")
    posterior_query = ConditionalQuery(prior_query, evidence)

    print("=== conditioning on the observation infected(3, 1) ===")
    print(f"prior     P(infected(2, 1)) = {prior_query.evaluate(space):.6f}")
    print(f"posterior P(infected(2, 1) | infected(3, 1)) = {posterior_query.evaluate(space):.6f}")
    print()


def domination_vs_infection_rate() -> None:
    """The series behind the synthetic 'domination curve' figure."""
    program_points = [round(0.1 * i, 1) for i in range(1, 10)]
    database = network_database(topology_graph("clique", 3), infected_seeds=[0])
    table = TextTable(["p(infect)", "P(dominated)"], title="Domination curve (3-router clique)")
    for probability in program_points:
        engine = GDatalogEngine(resilience_program(probability), database)
        table.add_row(probability, engine.probability_has_stable_model())
    print(table.render())


def main() -> None:
    domination_table()
    conditioning_demo()
    domination_vs_infection_rate()


if __name__ == "__main__":
    main()
