"""Unit tests for the consequence operator, least models and the GL reduct."""

from __future__ import annotations

import pytest

from repro.logic.atoms import atom
from repro.logic.rules import Rule, constraint, fact_rule, rule
from repro.stable.fixpoint import immediate_consequences, least_model, satisfies_rule, violated_constraints
from repro.stable.reduct import gelfond_lifschitz_reduct, is_stable_model


def ground_rules():
    return [
        fact_rule(atom("edge", 1, 2)),
        fact_rule(atom("edge", 2, 3)),
        rule(atom("reach", 2), [atom("edge", 1, 2)]),
        rule(atom("reach", 3), [atom("reach", 2), atom("edge", 2, 3)]),
    ]


class TestLeastModel:
    def test_least_model_transitive(self):
        model = least_model(ground_rules())
        assert atom("reach", 3) in model
        assert atom("reach", 2) in model
        assert len(model) == 4

    def test_facts_only(self):
        assert least_model([fact_rule(atom("p", 1))]) == frozenset({atom("p", 1)})

    def test_empty_program(self):
        assert least_model([]) == frozenset()

    def test_negation_rejected(self):
        bad = rule(atom("p", 1), [atom("q", 1)], negative=[atom("s", 1)])
        with pytest.raises(ValueError):
            least_model([bad, fact_rule(atom("q", 1))])

    def test_constraints_ignored_for_derivation(self):
        model = least_model([fact_rule(atom("p", 1)), constraint([atom("p", 1)])])
        assert model == frozenset({atom("p", 1)})

    def test_unreachable_rule_not_fired(self):
        model = least_model([rule(atom("p", 1), [atom("missing", 1)])])
        assert model == frozenset()

    def test_immediate_consequences(self):
        derived = immediate_consequences(ground_rules(), {atom("edge", 1, 2)})
        assert atom("reach", 2) in derived
        assert atom("reach", 3) not in derived


class TestSatisfactionAndConstraints:
    def test_satisfies_rule_positive(self):
        r = rule(atom("p", 1), [atom("q", 1)])
        assert satisfies_rule(r, {atom("q", 1), atom("p", 1)})
        assert not satisfies_rule(r, {atom("q", 1)})
        assert satisfies_rule(r, set())  # body false

    def test_satisfies_rule_negative_body(self):
        r = rule(atom("p", 1), [atom("q", 1)], negative=[atom("s", 1)])
        assert satisfies_rule(r, {atom("q", 1), atom("s", 1)})  # body blocked
        assert not satisfies_rule(r, {atom("q", 1)})

    def test_violated_constraints(self):
        rules = [constraint([atom("a", 1), atom("b", 1)])]
        assert violated_constraints(rules, {atom("a", 1), atom("b", 1)})
        assert not violated_constraints(rules, {atom("a", 1)})

    def test_constraint_with_negation(self):
        rules = [constraint([atom("a", 1)], negative=[atom("b", 1)])]
        assert violated_constraints(rules, {atom("a", 1)})
        assert not violated_constraints(rules, {atom("a", 1), atom("b", 1)})


class TestReduct:
    def test_reduct_removes_blocked_rules(self):
        rules = [
            rule(atom("p", 1), [atom("q", 1)], negative=[atom("r", 1)]),
            fact_rule(atom("q", 1)),
        ]
        reduct = gelfond_lifschitz_reduct(rules, {atom("r", 1)})
        heads = {r.head for r in reduct}
        assert atom("p", 1) not in heads

    def test_reduct_strips_negative_literals(self):
        rules = [rule(atom("p", 1), [atom("q", 1)], negative=[atom("r", 1)])]
        reduct = gelfond_lifschitz_reduct(rules, set())
        assert len(reduct) == 1
        assert reduct[0].negative_body == ()

    def test_is_stable_model_positive_program(self):
        rules = ground_rules()
        model = least_model(rules)
        assert is_stable_model(rules, model)
        assert not is_stable_model(rules, model | {atom("reach", 99)})

    def test_is_stable_model_with_negation(self):
        # p :- not q.   q :- not p.   Two stable models: {p}, {q}.
        rules = [
            Rule(atom("p"), (), (atom("q"),)),
            Rule(atom("q"), (), (atom("p"),)),
        ]
        assert is_stable_model(rules, {atom("p")})
        assert is_stable_model(rules, {atom("q")})
        assert not is_stable_model(rules, {atom("p"), atom("q")})
        assert not is_stable_model(rules, set())

    def test_is_stable_model_rejects_constraint_violation(self):
        rules = [fact_rule(atom("a", 1)), constraint([atom("a", 1)])]
        assert not is_stable_model(rules, {atom("a", 1)})

    def test_odd_loop_has_no_stable_model(self):
        # a :- not a.  -> no stable model
        rules = [Rule(atom("a"), (), (atom("a"),))]
        assert not is_stable_model(rules, set())
        assert not is_stable_model(rules, {atom("a")})
