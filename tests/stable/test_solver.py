"""Unit tests for the stable-model solver and the stratified evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import SolverLimitError, StratificationError
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_datalog_program
from repro.logic.rules import Rule, constraint, fact_rule, rule
from repro.stable.grounding import GroundProgram, ground_program
from repro.stable.reduct import is_stable_model
from repro.stable.solver import SolverConfig, StableModelSolver, has_stable_model, stable_models
from repro.stable.stratified import perfect_model, perfect_model_ground


def even_loop_program() -> GroundProgram:
    """p :- not q.   q :- not p.   (two stable models)"""
    return GroundProgram((Rule(atom("p"), (), (atom("q"),)), Rule(atom("q"), (), (atom("p"),))))


class TestSolverBasics:
    def setup_method(self):
        self.solver = StableModelSolver()

    def test_positive_program_single_model(self):
        ground = GroundProgram((fact_rule(atom("a")), rule(atom("b"), [atom("a")])))
        models = self.solver.all_stable_models(ground)
        assert models == [frozenset({atom("a"), atom("b")})]

    def test_even_negative_loop(self):
        models = self.solver.all_stable_models(even_loop_program())
        assert set(models) == {frozenset({atom("p")}), frozenset({atom("q")})}

    def test_odd_negative_loop_no_model(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        assert self.solver.all_stable_models(ground) == []
        assert not self.solver.has_stable_model(ground)

    def test_constraint_filters_models(self):
        ground = even_loop_program().with_rules([constraint([atom("p")])])
        models = self.solver.all_stable_models(GroundProgram(tuple(ground)))
        assert models == [frozenset({atom("q")})]

    def test_constraint_eliminating_all_models(self):
        ground = GroundProgram((fact_rule(atom("a")), constraint([atom("a")])))
        assert not self.solver.has_stable_model(ground)

    def test_count_and_brave_cautious(self):
        ground = even_loop_program()
        assert self.solver.count(ground) == 2
        assert self.solver.brave_consequences(ground) == frozenset({atom("p"), atom("q")})
        assert self.solver.cautious_consequences(ground) == frozenset()

    def test_cautious_none_when_inconsistent(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        assert self.solver.cautious_consequences(ground) is None

    def test_is_stable_direct_check(self):
        ground = even_loop_program()
        assert self.solver.is_stable(ground, {atom("p")})
        assert not self.solver.is_stable(ground, {atom("p"), atom("q")})

    def test_every_enumerated_model_passes_reduct_check(self):
        source = """
        a :- not b.
        b :- not a.
        c :- a.
        d :- b, not c.
        """
        ground = ground_program(parse_datalog_program(source), Database())
        for model in StableModelSolver().enumerate(ground):
            assert is_stable_model(ground.rules, model)

    def test_solver_limit(self):
        rules = []
        for i in range(12):
            rules.append(Rule(atom("p", i), (), (atom("q", i),)))
            rules.append(Rule(atom("q", i), (), (atom("p", i),)))
        config = SolverConfig(max_guesses=8)
        with pytest.raises(SolverLimitError):
            list(StableModelSolver(config).enumerate(GroundProgram(tuple(rules))))

    def test_solver_without_well_founded_pruning_agrees(self):
        source = """
        a :- not b.
        b :- not a.
        c :- a.
        """
        ground = ground_program(parse_datalog_program(source), Database())
        default = set(StableModelSolver().enumerate(ground))
        unpruned = set(StableModelSolver(SolverConfig(use_well_founded=False)).enumerate(ground))
        assert default == unpruned


class TestSolverFastPaths:
    """The WF-seeded reduct fixpoints and the lazy existence memo."""

    def _many_model_program(self, choices: int) -> GroundProgram:
        """*choices* independent even loops: 2**choices stable models."""
        rules = []
        for i in range(choices):
            p, q = atom(f"p{i}"), atom(f"q{i}")
            rules.append(Rule(p, (), (q,)))
            rules.append(Rule(q, (), (p,)))
        return GroundProgram(tuple(rules))

    def test_wf_seeding_preserves_models(self):
        """Seeded and unseeded guess fixpoints enumerate identical model sets."""
        base = (
            fact_rule(atom("a")),
            rule(atom("b"), [atom("a")]),
            Rule(atom("p"), (atom("b"),), (atom("q"),)),
            Rule(atom("q"), (atom("b"),), (atom("p"),)),
            Rule(atom("r"), (), (atom("r"),)),  # odd loop: r stays undecided-false
        )
        seeded = StableModelSolver(SolverConfig(use_well_founded=True))
        raw = StableModelSolver(SolverConfig(use_well_founded=False))
        assert set(seeded.enumerate(base)) == set(raw.enumerate(base)) == set()
        consistent = base[:4]
        assert set(seeded.enumerate(consistent)) == set(raw.enumerate(consistent))
        assert set(seeded.all_stable_models(consistent)) == {
            frozenset({atom("a"), atom("b"), atom("p")}),
            frozenset({atom("a"), atom("b"), atom("q")}),
        }

    def test_least_model_seeding_is_identity(self):
        from repro.stable.fixpoint import least_model

        rules = (
            fact_rule(atom("a")),
            rule(atom("b"), [atom("a")]),
            rule(atom("c"), [atom("a"), atom("b")]),
        )
        full = least_model(rules)
        assert least_model(rules, seed=[atom("a")]) == full
        assert least_model(rules, seed=full) == full

    def test_has_stable_model_miss_stays_lazy(self):
        """A cache-missing existence check must not materialize the model cache."""
        solver = StableModelSolver(SolverConfig(memoize=True))
        program = self._many_model_program(6)  # 64 models
        assert solver.has_stable_model(program)
        stats = solver.cache_stats()
        assert stats["entries"] == 0  # full enumeration never ran
        assert stats["existence_entries"] == 1
        assert stats["misses"] == 1

    def test_repeated_existence_checks_hit_the_existence_memo(self):
        solver = StableModelSolver(SolverConfig(memoize=True))
        program = self._many_model_program(4)
        assert solver.has_stable_model(program)
        misses_after_first = solver.cache_misses
        assert solver.has_stable_model(program)
        assert solver.cache_misses == misses_after_first
        assert solver.cache_hits >= 1

    def test_existence_memo_records_negative_answers(self):
        solver = StableModelSolver(SolverConfig(memoize=True))
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        assert not solver.has_stable_model(ground)
        assert not solver.has_stable_model(ground)
        assert solver.cache_stats()["existence_entries"] == 1

    def test_enumerate_after_existence_check_still_full(self):
        solver = StableModelSolver(SolverConfig(memoize=True))
        program = self._many_model_program(3)
        assert solver.has_stable_model(program)
        assert len(list(solver.enumerate(program))) == 8
        # Once enumerated, existence answers from the model cache.
        assert solver.has_stable_model(program)

    def test_clear_cache_drops_the_existence_memo(self):
        solver = StableModelSolver(SolverConfig(memoize=True))
        solver.has_stable_model(even_loop_program())
        solver.clear_cache()
        assert solver.cache_stats()["existence_entries"] == 0


class TestModuleLevelHelpers:
    def test_stable_models_of_reachability(self):
        program = parse_datalog_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            """
        )
        db = Database.from_relations({"start": [(1,)], "edge": [(1, 2)], "node": [(1,), (2,), (3,)]})
        models = stable_models(program, db)
        assert len(models) == 1
        model = models[0]
        assert fact("reach", 2) in model
        assert fact("unreached", 3) in model

    def test_has_stable_model_helper(self):
        program = parse_datalog_program("a :- not a.")
        assert not has_stable_model(program, Database())
        program2 = parse_datalog_program("a :- not b. b :- not a.")
        assert has_stable_model(program2, Database())


class TestStratifiedEvaluator:
    def setup_method(self):
        self.program = parse_datalog_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            """
        )
        self.db = Database.from_relations(
            {"start": [(1,)], "edge": [(1, 2), (2, 3)], "node": [(1,), (2,), (3,), (4,)]}
        )

    def test_perfect_model_matches_solver(self):
        expected = stable_models(self.program, self.db)[0]
        assert perfect_model(self.program, self.db) == expected

    def test_perfect_model_ground_matches(self):
        ground = ground_program(self.program, self.db)
        expected = StableModelSolver().all_stable_models(ground)[0]
        assert perfect_model_ground(ground) == expected

    def test_perfect_model_ground_rejects_unstratified(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        with pytest.raises(StratificationError):
            perfect_model_ground(ground)

    def test_perfect_model_with_violated_constraint_raises(self):
        program = parse_datalog_program("p(X) :- q(X). :- p(1).")
        with pytest.raises(ValueError):
            perfect_model(program, Database([fact("q", 1)]))
