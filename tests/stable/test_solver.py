"""Unit tests for the stable-model solver and the stratified evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import SolverLimitError, StratificationError
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_datalog_program
from repro.logic.rules import Rule, constraint, fact_rule, rule
from repro.stable.grounding import GroundProgram, ground_program
from repro.stable.reduct import is_stable_model
from repro.stable.solver import SolverConfig, StableModelSolver, has_stable_model, stable_models
from repro.stable.stratified import perfect_model, perfect_model_ground


def even_loop_program() -> GroundProgram:
    """p :- not q.   q :- not p.   (two stable models)"""
    return GroundProgram((Rule(atom("p"), (), (atom("q"),)), Rule(atom("q"), (), (atom("p"),))))


class TestSolverBasics:
    def setup_method(self):
        self.solver = StableModelSolver()

    def test_positive_program_single_model(self):
        ground = GroundProgram((fact_rule(atom("a")), rule(atom("b"), [atom("a")])))
        models = self.solver.all_stable_models(ground)
        assert models == [frozenset({atom("a"), atom("b")})]

    def test_even_negative_loop(self):
        models = self.solver.all_stable_models(even_loop_program())
        assert set(models) == {frozenset({atom("p")}), frozenset({atom("q")})}

    def test_odd_negative_loop_no_model(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        assert self.solver.all_stable_models(ground) == []
        assert not self.solver.has_stable_model(ground)

    def test_constraint_filters_models(self):
        ground = even_loop_program().with_rules([constraint([atom("p")])])
        models = self.solver.all_stable_models(GroundProgram(tuple(ground)))
        assert models == [frozenset({atom("q")})]

    def test_constraint_eliminating_all_models(self):
        ground = GroundProgram((fact_rule(atom("a")), constraint([atom("a")])))
        assert not self.solver.has_stable_model(ground)

    def test_count_and_brave_cautious(self):
        ground = even_loop_program()
        assert self.solver.count(ground) == 2
        assert self.solver.brave_consequences(ground) == frozenset({atom("p"), atom("q")})
        assert self.solver.cautious_consequences(ground) == frozenset()

    def test_cautious_none_when_inconsistent(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        assert self.solver.cautious_consequences(ground) is None

    def test_is_stable_direct_check(self):
        ground = even_loop_program()
        assert self.solver.is_stable(ground, {atom("p")})
        assert not self.solver.is_stable(ground, {atom("p"), atom("q")})

    def test_every_enumerated_model_passes_reduct_check(self):
        source = """
        a :- not b.
        b :- not a.
        c :- a.
        d :- b, not c.
        """
        ground = ground_program(parse_datalog_program(source), Database())
        for model in StableModelSolver().enumerate(ground):
            assert is_stable_model(ground.rules, model)

    def test_solver_limit(self):
        rules = []
        for i in range(12):
            rules.append(Rule(atom("p", i), (), (atom("q", i),)))
            rules.append(Rule(atom("q", i), (), (atom("p", i),)))
        config = SolverConfig(max_guesses=8)
        with pytest.raises(SolverLimitError):
            list(StableModelSolver(config).enumerate(GroundProgram(tuple(rules))))

    def test_solver_without_well_founded_pruning_agrees(self):
        source = """
        a :- not b.
        b :- not a.
        c :- a.
        """
        ground = ground_program(parse_datalog_program(source), Database())
        default = set(StableModelSolver().enumerate(ground))
        unpruned = set(StableModelSolver(SolverConfig(use_well_founded=False)).enumerate(ground))
        assert default == unpruned


class TestModuleLevelHelpers:
    def test_stable_models_of_reachability(self):
        program = parse_datalog_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            """
        )
        db = Database.from_relations({"start": [(1,)], "edge": [(1, 2)], "node": [(1,), (2,), (3,)]})
        models = stable_models(program, db)
        assert len(models) == 1
        model = models[0]
        assert fact("reach", 2) in model
        assert fact("unreached", 3) in model

    def test_has_stable_model_helper(self):
        program = parse_datalog_program("a :- not a.")
        assert not has_stable_model(program, Database())
        program2 = parse_datalog_program("a :- not b. b :- not a.")
        assert has_stable_model(program2, Database())


class TestStratifiedEvaluator:
    def setup_method(self):
        self.program = parse_datalog_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            """
        )
        self.db = Database.from_relations(
            {"start": [(1,)], "edge": [(1, 2), (2, 3)], "node": [(1,), (2,), (3,), (4,)]}
        )

    def test_perfect_model_matches_solver(self):
        expected = stable_models(self.program, self.db)[0]
        assert perfect_model(self.program, self.db) == expected

    def test_perfect_model_ground_matches(self):
        ground = ground_program(self.program, self.db)
        expected = StableModelSolver().all_stable_models(ground)[0]
        assert perfect_model_ground(ground) == expected

    def test_perfect_model_ground_rejects_unstratified(self):
        ground = GroundProgram((Rule(atom("a"), (), (atom("a"),)),))
        with pytest.raises(StratificationError):
            perfect_model_ground(ground)

    def test_perfect_model_with_violated_constraint_raises(self):
        program = parse_datalog_program("p(X) :- q(X). :- p(1).")
        with pytest.raises(ValueError):
            perfect_model(program, Database([fact("q", 1)]))
