"""Unit tests for program grounding, interpretations and the well-founded semantics."""

from __future__ import annotations

import pytest

from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_datalog_program
from repro.logic.rules import Rule, constraint, fact_rule, rule
from repro.stable.grounding import GroundProgram, ground_program, ground_rules_against
from repro.stable.interpretation import Interpretation, PartialInterpretation
from repro.stable.wellfounded import gamma_operator, well_founded_model
from repro.logic.unify import FactIndex


REACH_PROGRAM = parse_datalog_program(
    """
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    unreached(X) :- node(X), not reach(X).
    """
)

REACH_DATABASE = Database.from_relations(
    {"start": [(1,)], "edge": [(1, 2), (2, 3)], "node": [(1,), (2,), (3,), (4,)]}
)


class TestGroundProgram:
    def test_requires_ground_rules(self):
        with pytest.raises(ValueError):
            GroundProgram((rule(atom("p", "X"), [atom("q", "X")]),))

    def test_views(self):
        ground = GroundProgram(
            (
                fact_rule(atom("q", 1)),
                rule(atom("p", 1), [atom("q", 1)], negative=[atom("s", 1)]),
                constraint([atom("p", 1)]),
            )
        )
        assert len(ground.facts) == 1
        assert len(ground.constraints) == 1
        assert len(ground.proper_rules) == 2
        assert atom("s", 1) in ground.negative_body_atoms()
        assert atom("p", 1) in ground.herbrand_base()
        assert not ground.is_positive()

    def test_with_rules(self):
        ground = GroundProgram((fact_rule(atom("q", 1)),))
        assert len(ground.with_rules([fact_rule(atom("q", 2))])) == 2


class TestGroundRulesAgainst:
    def test_instances_from_index(self):
        facts = FactIndex([fact("edge", 1, 2), fact("reach", 1)])
        r = rule(atom("reach", "Y"), [atom("reach", "X"), atom("edge", "X", "Y")])
        instances = list(ground_rules_against(r, facts))
        assert len(instances) == 1
        assert instances[0].head == atom("reach", 2)


class TestGroundProgramConstruction:
    def test_reachability_grounding(self):
        ground = ground_program(REACH_PROGRAM, REACH_DATABASE)
        heads = {r.head for r in ground.proper_rules}
        assert atom("reach", 1) in heads
        assert atom("reach", 3) in heads
        # node 4 has no incoming edges: no reach(4) instance should exist
        assert atom("reach", 4) not in heads
        assert atom("unreached", 4) in heads

    def test_grounding_includes_facts(self):
        ground = ground_program(REACH_PROGRAM, REACH_DATABASE)
        fact_heads = {r.head for r in ground.facts}
        assert fact("start", 1) in fact_heads

    def test_grounding_of_constraints(self):
        program = parse_datalog_program("p(X) :- q(X). :- p(X), bad(X).")
        db = Database.from_relations({"q": [(1,)], "bad": [(1,), (2,)]})
        ground = ground_program(program, db)
        constraint_bodies = [r.positive_body for r in ground.constraints]
        assert (atom("p", 1), atom("bad", 1)) in constraint_bodies
        # bad(2) cannot join with a derivable p(2): no such constraint instance
        assert all(atom("p", 2) not in body for body in constraint_bodies)

    def test_grounding_accepts_plain_iterables(self):
        ground = ground_program(REACH_PROGRAM, [fact("start", 1), fact("node", 1)])
        assert len(ground.facts) == 2


class TestInterpretation:
    def test_set_like_behaviour(self):
        interpretation = Interpretation([atom("p", 1), atom("q", 1)])
        assert atom("p", 1) in interpretation
        assert len(interpretation) == 2
        assert interpretation == {atom("p", 1), atom("q", 1)}
        assert (interpretation | [atom("r", 1)]).atoms >= interpretation.atoms
        assert (interpretation & [atom("p", 1)]) == Interpretation([atom("p", 1)])

    def test_predicate_filters(self):
        interpretation = Interpretation([atom("p", 1), atom("active_flip_1_0", 0.5)])
        assert len(interpretation.restrict_predicates(["p"])) == 1
        assert len(interpretation.without_predicates(["active_flip_1_0"])) == 1

    def test_partial_interpretation(self):
        partial = PartialInterpretation({atom("p", 1)}, {atom("q", 1)})
        assert partial.is_consistent()
        assert partial.decides(atom("p", 1))
        assert partial.unknown([atom("p", 1), atom("q", 1), atom("r", 1)]) == {atom("r", 1)}
        copy = partial.copy()
        copy.true.add(atom("z", 1))
        assert atom("z", 1) not in partial.true


class TestWellFounded:
    def test_total_on_stratified_program(self):
        ground = ground_program(REACH_PROGRAM, REACH_DATABASE)
        wf = well_founded_model(ground.rules)
        assert atom("reach", 3) in wf.true
        assert atom("unreached", 4) in wf.true
        assert atom("reach", 4) in wf.false
        assert not wf.unknown(ground.herbrand_base())

    def test_unknown_on_even_loop(self):
        rules = [
            Rule(atom("p"), (), (atom("q"),)),
            Rule(atom("q"), (), (atom("p"),)),
        ]
        wf = well_founded_model(rules)
        assert atom("p") not in wf.true and atom("p") not in wf.false
        assert wf.unknown([atom("p"), atom("q")]) == {atom("p"), atom("q")}

    def test_odd_loop_is_unknown(self):
        rules = [Rule(atom("a"), (), (atom("a"),))]
        wf = well_founded_model(rules)
        assert atom("a") in wf.unknown([atom("a")])

    def test_gamma_operator(self):
        rules = [
            Rule(atom("p"), (), (atom("q"),)),
            fact_rule(atom("r")),
        ]
        assert atom("p") in gamma_operator(rules, frozenset())
        assert atom("p") not in gamma_operator(rules, frozenset({atom("q")}))
        assert atom("r") in gamma_operator(rules, frozenset({atom("q")}))

    def test_wf_true_atoms_hold_in_every_stable_model(self):
        from repro.stable.solver import StableModelSolver

        ground = ground_program(REACH_PROGRAM, REACH_DATABASE)
        wf = well_founded_model(ground.rules)
        for model in StableModelSolver().enumerate(ground):
            assert wf.true <= set(model)
            assert not (wf.false & set(model))
