"""Unit tests for terms, atoms and literals."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.logic.atoms import Atom, Predicate, atom, fact
from repro.logic.literals import Literal, neg, pos
from repro.logic.terms import Constant, Variable, is_ground_term, make_term


class TestConstant:
    def test_equality_and_hash(self):
        assert Constant(1) == Constant(1)
        assert Constant(1) != Constant(2)
        assert hash(Constant("a")) == hash(Constant("a"))

    def test_numeric_translation(self):
        assert Constant(3).as_number() == 3.0
        assert Constant(0.5).as_number() == 0.5
        assert Constant(True).as_number() == 1.0
        assert Constant("2.5").as_number() == 2.5

    def test_non_numeric_string_raises(self):
        with pytest.raises(ValidationError):
            Constant("router").as_number()

    def test_is_numeric_flag(self):
        assert Constant(1).is_numeric
        assert not Constant("x").is_numeric

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValidationError):
            Constant([1, 2])  # type: ignore[arg-type]

    def test_string_rendering(self):
        assert str(Constant(3)) == "3"
        assert str(Constant("abc")) == "abc"
        assert str(Constant("Hello world")) == '"Hello world"'


class TestVariable:
    def test_equality(self):
        assert Variable("X") == Variable("X")
        assert Variable("X") != Variable("Y")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            Variable("")

    def test_str(self):
        assert str(Variable("Node")) == "Node"


class TestMakeTerm:
    def test_uppercase_becomes_variable(self):
        assert make_term("X") == Variable("X")
        assert make_term("_anon") == Variable("_anon")

    def test_lowercase_and_numbers_become_constants(self):
        assert make_term("alice") == Constant("alice")
        assert make_term(7) == Constant(7)
        assert make_term(0.25) == Constant(0.25)

    def test_existing_terms_pass_through(self):
        v = Variable("X")
        assert make_term(v) is v

    def test_is_ground_term(self):
        assert is_ground_term(Constant(1))
        assert not is_ground_term(Variable("X"))

    def test_unsupported_value(self):
        with pytest.raises(ValidationError):
            make_term(object())


class TestAtom:
    def test_arity_checked(self):
        with pytest.raises(ValidationError):
            Atom(Predicate("edge", 2), (Constant(1),))

    def test_builder_infers_arity(self):
        built = atom("edge", 1, "X")
        assert built.predicate == Predicate("edge", 2)
        assert built.args == (Constant(1), Variable("X"))

    def test_ground_detection(self):
        assert atom("edge", 1, 2).is_ground
        assert not atom("edge", 1, "X").is_ground

    def test_variables_and_constants(self):
        a = atom("r", "X", 3, "Y")
        assert a.variables() == {Variable("X"), Variable("Y")}
        assert a.constants() == {Constant(3)}

    def test_substitute(self):
        a = atom("edge", "X", "Y")
        result = a.substitute({Variable("X"): Constant(1)})
        assert result == atom("edge", 1, "Y")

    def test_substitute_noop_returns_self(self):
        a = atom("edge", 1, 2)
        assert a.substitute({Variable("Z"): Constant(5)}) is a

    def test_predicate_call_builds_atom(self):
        predicate = Predicate("node", 1)
        assert predicate(3) == atom("node", 3)

    def test_fact_requires_ground(self):
        with pytest.raises(ValidationError):
            fact("edge", 1, "X")

    def test_str_nullary(self):
        assert str(atom("fail")) == "fail"

    def test_str_with_args(self):
        assert str(atom("edge", 1, "X")) == "edge(1, X)"

    def test_hashable_in_sets(self):
        assert len({atom("p", 1), atom("p", 1), atom("p", 2)}) == 2

    def test_delta_like_argument_rejected(self):
        with pytest.raises(ValidationError):
            Atom(Predicate("p", 1), ("not-a-term",))  # type: ignore[arg-type]


class TestLiteral:
    def test_positive_and_negative(self):
        a = atom("p", "X")
        assert pos(a).positive
        assert neg(a).negative
        assert neg(a).atom == a

    def test_negate(self):
        literal = pos(atom("p", 1))
        assert literal.negate() == neg(atom("p", 1))
        assert literal.negate().negate() == literal

    def test_substitute(self):
        literal = neg(atom("p", "X"))
        assert literal.substitute({Variable("X"): Constant(2)}) == neg(atom("p", 2))

    def test_str(self):
        assert str(pos(atom("p", 1))) == "p(1)"
        assert str(neg(atom("p", 1))) == "not p(1)"

    def test_groundness(self):
        assert pos(atom("p", 1)).is_ground
        assert not neg(atom("p", "X")).is_ground
