"""Unit tests for Datalog¬ rules, programs, dependency graphs and stratification."""

from __future__ import annotations

import pytest

from repro.exceptions import StratificationError, ValidationError
from repro.logic.atoms import Predicate, atom
from repro.logic.literals import neg
from repro.logic.program import DatalogProgram
from repro.logic.rules import FALSE_ATOM, Rule, constraint, fact_rule, rule


class TestRuleConstruction:
    def test_simple_rule(self):
        r = rule(atom("p", "X"), [atom("q", "X")])
        assert r.head == atom("p", "X")
        assert r.positive_body == (atom("q", "X"),)
        assert not r.negative_body

    def test_literal_body_items(self):
        r = rule(atom("p", "X"), [atom("q", "X"), neg(atom("r", "X"))])
        assert r.negative_body == (atom("r", "X"),)

    def test_unsafe_head_rejected(self):
        with pytest.raises(ValidationError):
            rule(atom("p", "X"), [atom("q", "Y")])

    def test_unsafe_negative_rejected(self):
        with pytest.raises(ValidationError):
            rule(atom("p", "X"), [atom("q", "X")], negative=[atom("r", "Z")])

    def test_fact_rule(self):
        r = fact_rule(atom("p", 1))
        assert r.is_fact
        assert r.is_positive
        with pytest.raises(ValidationError):
            fact_rule(atom("p", "X"))

    def test_constraint(self):
        c = constraint([atom("p", "X"), atom("q", "X")])
        assert c.is_constraint
        assert c.head == FALSE_ATOM

    def test_groundness(self):
        assert rule(atom("p", 1), [atom("q", 1)]).is_ground
        assert not rule(atom("p", "X"), [atom("q", "X")]).is_ground

    def test_substitute(self):
        r = rule(atom("p", "X"), [atom("q", "X")], negative=[atom("s", "X")])
        grounded = r.substitute({atom("p", "X").args[0]: atom("p", 1).args[0]})
        assert grounded.head == atom("p", 1)
        assert grounded.negative_body == (atom("s", 1),)

    def test_str_variants(self):
        assert str(fact_rule(atom("p", 1))) == "p(1)."
        assert str(rule(atom("p", "X"), [atom("q", "X")])) == "p(X) :- q(X)."
        assert str(constraint([atom("q", 1)])) == ":- q(1)."

    def test_body_literals(self):
        r = rule(atom("p", "X"), [atom("q", "X")], negative=[atom("s", "X")])
        literals = r.body_literals()
        assert len(literals) == 2
        assert literals[0].positive and literals[1].negative

    def test_predicates(self):
        r = rule(atom("p", "X"), [atom("q", "X")], negative=[atom("s", "X")])
        names = {p.name for p in r.predicates()}
        assert names == {"p", "q", "s"}


class TestProgramViews:
    def setup_method(self):
        self.program = DatalogProgram(
            [
                rule(atom("reach", "X"), [atom("start", "X")]),
                rule(atom("reach", "Y"), [atom("reach", "X"), atom("edge", "X", "Y")]),
                rule(atom("unreached", "X"), [atom("node", "X")], negative=[atom("reach", "X")]),
            ]
        )

    def test_schema_partition(self):
        idb = {p.name for p in self.program.intensional_predicates()}
        edb = {p.name for p in self.program.extensional_predicates()}
        assert idb == {"reach", "unreached"}
        assert edb == {"start", "edge", "node"}

    def test_is_positive(self):
        assert not self.program.is_positive
        assert DatalogProgram([rule(atom("p", "X"), [atom("q", "X")])]).is_positive

    def test_restricted_to_heads(self):
        restricted = self.program.restricted_to_heads([Predicate("reach", 1)])
        assert len(restricted) == 2

    def test_with_rules(self):
        bigger = self.program.with_rules([rule(atom("extra", "X"), [atom("node", "X")])])
        assert len(bigger) == len(self.program) + 1

    def test_constraints_view(self):
        program = DatalogProgram([constraint([atom("p", "X")]), rule(atom("p", "X"), [atom("q", "X")])])
        assert len(program.constraints()) == 1
        assert len(program.proper_rules()) == 1


class TestDependencyGraph:
    def test_edges(self):
        program = DatalogProgram(
            [
                rule(atom("p", "X"), [atom("q", "X")], negative=[atom("s", "X")]),
                rule(atom("s", "X"), [atom("q", "X")]),
            ]
        )
        graph = program.dependency_graph()
        assert (Predicate("q", 1), Predicate("p", 1)) in graph.positive_edges
        assert (Predicate("s", 1), Predicate("p", 1)) in graph.negative_edges

    def test_depends_on(self):
        program = DatalogProgram(
            [
                rule(atom("b", "X"), [atom("a", "X")]),
                rule(atom("c", "X"), [atom("b", "X")]),
            ]
        )
        graph = program.dependency_graph()
        assert graph.depends_on(Predicate("c", 1), Predicate("a", 1))
        assert not graph.depends_on(Predicate("a", 1), Predicate("c", 1))

    def test_stratified_program(self):
        program = DatalogProgram(
            [
                rule(atom("p", "X"), [atom("q", "X")]),
                rule(atom("r", "X"), [atom("q", "X")], negative=[atom("p", "X")]),
            ]
        )
        assert program.is_stratified
        strata = program.stratification()
        index_of = {next(iter(c)).name: i for i, c in enumerate(strata) if len(c) == 1}
        assert index_of["p"] < index_of["r"]

    def test_unstratified_program(self):
        program = DatalogProgram(
            [
                rule(atom("a", "X"), [atom("n", "X")], negative=[atom("b", "X")]),
                rule(atom("b", "X"), [atom("n", "X")], negative=[atom("a", "X")]),
            ]
        )
        assert not program.is_stratified
        with pytest.raises(StratificationError):
            program.stratification()

    def test_positive_cycle_is_fine(self):
        program = DatalogProgram(
            [
                rule(atom("a", "X"), [atom("b", "X")]),
                rule(atom("b", "X"), [atom("a", "X")]),
            ]
        )
        assert program.is_stratified
        components = program.stratification()
        assert any(len(c) == 2 for c in components)

    def test_topological_order_of_sccs(self):
        program = DatalogProgram(
            [
                rule(atom("mid", "X"), [atom("base", "X")]),
                rule(atom("top", "X"), [atom("mid", "X")]),
            ]
        )
        strata = program.stratification()
        names = [sorted(p.name for p in component) for component in strata]
        assert names.index(["base"]) < names.index(["mid"]) < names.index(["top"])

    def test_strata_subprograms(self):
        program = DatalogProgram(
            [
                rule(atom("mid", "X"), [atom("base", "X")]),
                rule(atom("top", "X"), [atom("mid", "X")], negative=[atom("base", "X")]),
            ]
        )
        strata_programs = program.strata()
        sizes = [len(p) for p in strata_programs]
        assert sum(sizes) == 2
