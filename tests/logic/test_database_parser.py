"""Unit tests for databases, the tokenizer/parser and pretty printing."""

from __future__ import annotations

import pytest

from repro.exceptions import ParseError, ValidationError
from repro.gdatalog.delta_terms import DeltaTerm
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import (
    parse_atom,
    parse_database,
    parse_datalog_program,
    parse_gdatalog_program,
    tokenize,
)
from repro.logic.pretty import format_atom_set, format_interpretation, format_model_set, format_rules
from repro.logic.rules import rule
from repro.logic.terms import Constant, Variable


class TestDatabase:
    def test_from_relations(self):
        db = Database.from_relations({"edge": [(1, 2), (2, 3)], "node": [(1,), (2,), (3,)]})
        assert len(db) == 5
        assert fact("edge", 1, 2) in db

    def test_rejects_non_ground(self):
        with pytest.raises(ValidationError):
            Database([atom("p", "X")])

    def test_union_and_with_facts(self):
        db = Database([fact("p", 1)])
        merged = db | Database([fact("q", 2)])
        assert len(merged) == 2
        extended = db.with_facts([fact("p", 2)])
        assert len(extended) == 2

    def test_relation_and_tuples(self):
        db = Database.from_relations({"edge": [(1, 2), (2, 1)]})
        assert db.tuples("edge") == [(1, 2), (2, 1)]
        assert len(db.relation("edge")) == 2
        assert db.tuples("missing") == []

    def test_domain(self):
        db = Database.from_relations({"edge": [(1, 2)]})
        assert db.domain() == frozenset({Constant(1), Constant(2)})

    def test_equality_and_hash(self):
        assert Database([fact("p", 1)]) == Database([fact("p", 1)])
        assert len({Database([fact("p", 1)]), Database([fact("p", 1)])}) == 1

    def test_iteration_is_sorted(self):
        db = Database([fact("b", 1), fact("a", 1)])
        assert [str(a) for a in db] == ["a(1)", "b(1)"]


class TestTokenizer:
    def test_basic_tokens(self):
        kinds = [t.kind for t in tokenize("p(X, 1) :- q(X).")]
        assert kinds == [
            "IDENT", "LPAREN", "IDENT", "COMMA", "NUMBER", "RPAREN",
            "ARROW", "IDENT", "LPAREN", "IDENT", "RPAREN", "DOT",
        ]

    def test_comments_and_whitespace_skipped(self):
        tokens = tokenize("% a comment\np(1).  % trailing\n")
        assert [t.kind for t in tokens] == ["IDENT", "LPAREN", "NUMBER", "RPAREN", "DOT"]

    def test_line_tracking(self):
        tokens = tokenize("p(1).\nq(2).")
        assert tokens[0].line == 1
        assert tokens[-1].line == 2

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("p(1) & q(2).")


class TestParseAtomAndDatabase:
    def test_parse_atom(self):
        parsed = parse_atom("edge(1, X)")
        assert parsed == atom("edge", 1, "X")

    def test_parse_atom_strings_and_floats(self):
        parsed = parse_atom('obs("hello", 0.25)')
        assert parsed.args == (Constant("hello"), Constant(0.25))

    def test_parse_atom_trailing_input(self):
        with pytest.raises(ParseError):
            parse_atom("edge(1, 2) extra")

    def test_parse_database(self):
        db = parse_database("router(1). router(2). connected(1, 2).")
        assert len(db) == 3

    def test_parse_database_rejects_rules(self):
        with pytest.raises(ParseError):
            parse_database("p(X) :- q(X).")

    def test_parse_database_rejects_variables(self):
        with pytest.raises(ParseError):
            parse_database("p(X).")


class TestParseDatalog:
    def test_rules_constraints_facts(self):
        program = parse_datalog_program(
            """
            reach(X) :- start(X).
            reach(Y) :- reach(X), edge(X, Y).
            unreached(X) :- node(X), not reach(X).
            :- unreached(X), critical(X).
            seed(1).
            """
        )
        assert len(program) == 5
        assert len(program.constraints()) == 1
        assert not program.is_positive

    def test_negative_number_constant(self):
        program = parse_datalog_program("p(-1).")
        assert program.rules[0].head == atom("p", -1)

    def test_uppercase_predicate_rejected(self):
        with pytest.raises(ParseError):
            parse_datalog_program("Predicate(1).")

    def test_delta_term_rejected_in_plain_datalog(self):
        with pytest.raises(ParseError):
            parse_datalog_program("p(flip<0.5>) :- q(1).")

    def test_missing_dot(self):
        with pytest.raises(ParseError):
            parse_datalog_program("p(1)")


class TestParseGDatalog:
    def test_delta_term_in_head(self):
        program = parse_gdatalog_program("value(X, flip<0.3>[X]) :- item(X).")
        delta_terms = program.rules[0].delta_terms()
        assert len(delta_terms) == 1
        _, delta = delta_terms[0]
        assert isinstance(delta, DeltaTerm)
        assert delta.distribution == "flip"
        assert delta.parameters == (Constant(0.3),)
        assert delta.event_signature == (Variable("X"),)

    def test_delta_term_without_event_signature(self):
        program = parse_gdatalog_program("coin(flip<0.5>).")
        _, delta = program.rules[0].delta_terms()[0]
        assert delta.event_signature == ()

    def test_unknown_distribution_rejected(self):
        with pytest.raises(ParseError):
            parse_gdatalog_program("coin(mystery<0.5>).")

    def test_delta_term_in_body_rejected(self):
        with pytest.raises(ParseError):
            parse_gdatalog_program("p(X) :- q(flip<0.5>).")

    def test_constraint_parsing(self):
        program = parse_gdatalog_program(":- broken(X), critical(X).")
        assert program.rules[0].is_constraint

    def test_variadic_categorical(self):
        program = parse_gdatalog_program("choice(X, categorical<0.2, 0.3, 0.5>[X]) :- item(X).")
        _, delta = program.rules[0].delta_terms()[0]
        assert delta.parameter_dimension == 3


class TestPretty:
    def test_format_atom_set(self):
        rendered = format_atom_set([atom("b", 1), atom("a", 1)])
        assert rendered == "{a(1), b(1)}"
        assert format_atom_set([]) == "{}"

    def test_format_interpretation_hides_auxiliary(self):
        atoms = [atom("p", 1), atom("active_flip_1_0", 0.5), atom("result_flip_1_0", 0.5, 1)]
        rendered = format_interpretation(atoms)
        assert "active_flip" not in rendered and "p(1)" in rendered

    def test_format_rules_sorted(self):
        rendered = format_rules([rule(atom("b", 1), [atom("a", 1)]), rule(atom("a", 1), [])])
        assert rendered.splitlines()[0].startswith("a(1)")

    def test_format_model_set(self):
        rendered = format_model_set([frozenset({atom("p", 1)}), frozenset()])
        assert "{p(1)}" in rendered
        assert format_model_set([]) == "(no stable models)"
