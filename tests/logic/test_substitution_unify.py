"""Unit tests for substitutions, matching, unification and the fact index."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.logic.atoms import atom
from repro.logic.substitution import EMPTY_SUBSTITUTION, Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import FactIndex, has_homomorphism, match_atom, match_conjunction, unify_atoms

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")


class TestSubstitution:
    def test_of_and_lookup(self):
        sub = Substitution.of({X: Constant(1)})
        assert sub[X] == Constant(1)
        assert X in sub
        assert Y not in sub
        assert sub.get(Y) is None

    def test_empty(self):
        assert len(EMPTY_SUBSTITUTION) == 0
        assert EMPTY_SUBSTITUTION.apply_term(X) == X

    def test_conflicting_bindings_rejected(self):
        with pytest.raises(ValidationError):
            Substitution.of([(X, Constant(1)), (X, Constant(2))])

    def test_invalid_key_rejected(self):
        with pytest.raises(ValidationError):
            Substitution.of({Constant(1): Constant(2)})  # type: ignore[dict-item]

    def test_apply_atom(self):
        sub = Substitution.of({X: Constant(1), Y: Constant(2)})
        assert sub.apply_atom(atom("edge", "X", "Y")) == atom("edge", 1, 2)

    def test_bind_extends(self):
        sub = Substitution.of({X: Constant(1)})
        extended = sub.bind(Y, Constant(2))
        assert extended is not None
        assert extended[Y] == Constant(2)
        assert sub.get(Y) is None  # immutability

    def test_bind_conflict_returns_none(self):
        sub = Substitution.of({X: Constant(1)})
        assert sub.bind(X, Constant(2)) is None
        assert sub.bind(X, Constant(1)) == sub

    def test_merge(self):
        left = Substitution.of({X: Constant(1)})
        right = Substitution.of({Y: Constant(2)})
        merged = left.merge(right)
        assert merged is not None and merged.domain == {X, Y}
        conflicting = Substitution.of({X: Constant(3)})
        assert left.merge(conflicting) is None

    def test_compose_order(self):
        first = Substitution.of({X: Y})
        second = Substitution.of({Y: Constant(1)})
        composed = first.compose(second)
        assert composed.apply_term(X) == Constant(1)

    def test_restrict(self):
        sub = Substitution.of({X: Constant(1), Y: Constant(2)})
        assert sub.restrict([X]).domain == {X}

    def test_is_ground(self):
        assert Substitution.of({X: Constant(1)}).is_ground
        assert not Substitution.of({X: Y}).is_ground

    def test_equality_is_order_independent(self):
        assert Substitution.of({X: Constant(1), Y: Constant(2)}) == Substitution.of(
            {Y: Constant(2), X: Constant(1)}
        )


class TestMatchAtom:
    def test_basic_match(self):
        result = match_atom(atom("edge", "X", 2), atom("edge", 1, 2))
        assert result is not None
        assert result[X] == Constant(1)

    def test_constant_mismatch(self):
        assert match_atom(atom("edge", 1, 1), atom("edge", 1, 2)) is None

    def test_predicate_mismatch(self):
        assert match_atom(atom("edge", "X"), atom("node", 1)) is None

    def test_repeated_variable_must_agree(self):
        assert match_atom(atom("edge", "X", "X"), atom("edge", 1, 2)) is None
        assert match_atom(atom("edge", "X", "X"), atom("edge", 1, 1)) is not None

    def test_respects_existing_binding(self):
        binding = Substitution.of({X: Constant(9)})
        assert match_atom(atom("node", "X"), atom("node", 1), binding) is None


class TestFactIndex:
    def test_add_and_lookup(self):
        index = FactIndex([atom("edge", 1, 2)])
        assert atom("edge", 1, 2) in index
        assert len(index) == 1
        assert index.facts_for(atom("edge", 1, 2).predicate) == {atom("edge", 1, 2)}

    def test_add_duplicate(self):
        index = FactIndex()
        assert index.add(atom("p", 1)) is True
        assert index.add(atom("p", 1)) is False

    def test_add_all_counts_new(self):
        index = FactIndex([atom("p", 1)])
        assert index.add_all([atom("p", 1), atom("p", 2)]) == 1


class TestMatchConjunction:
    def setup_method(self):
        self.facts = FactIndex(
            [atom("edge", 1, 2), atom("edge", 2, 3), atom("edge", 1, 3), atom("node", 1), atom("node", 2)]
        )

    def test_single_pattern(self):
        matches = list(match_conjunction([atom("node", "X")], self.facts))
        values = {m[X] for m in matches}
        assert values == {Constant(1), Constant(2)}

    def test_join(self):
        patterns = [atom("edge", "X", "Y"), atom("edge", "Y", "Z")]
        matches = list(match_conjunction(patterns, self.facts))
        triples = {(m[X], m[Y], m[Z]) for m in matches}
        assert (Constant(1), Constant(2), Constant(3)) in triples
        assert all(m[Y] == Constant(2) or m[Y] == Constant(3) for m in matches)

    def test_empty_pattern_yields_identity(self):
        matches = list(match_conjunction([], self.facts))
        assert matches == [EMPTY_SUBSTITUTION]

    def test_no_match(self):
        assert list(match_conjunction([atom("edge", 3, "X")], self.facts)) == []

    def test_has_homomorphism(self):
        assert has_homomorphism([atom("edge", "X", "Y"), atom("node", "X")], self.facts)
        assert not has_homomorphism([atom("edge", "X", "X")], self.facts)

    def test_deterministic_enumeration(self):
        patterns = [atom("edge", "X", "Y")]
        first = [str(m) for m in match_conjunction(patterns, self.facts)]
        second = [str(m) for m in match_conjunction(patterns, self.facts)]
        assert first == second


class TestUnifyAtoms:
    def test_symmetric_unification(self):
        result = unify_atoms(atom("p", "X", 2), atom("p", 1, "Y"))
        assert result is not None
        assert result[X] == Constant(1)
        assert result[Y] == Constant(2)

    def test_variable_to_variable(self):
        result = unify_atoms(atom("p", "X"), atom("p", "Y"))
        assert result is not None
        assert result.apply_term(X) == result.apply_term(Y) or result.apply_term(Y) in (X, Y)

    def test_clash(self):
        assert unify_atoms(atom("p", 1), atom("p", 2)) is None

    def test_predicate_mismatch(self):
        assert unify_atoms(atom("p", 1), atom("q", 1)) is None
