"""Unit and regression tests for the indexed join engine (logic/join.py)."""

from __future__ import annotations

import pytest

from repro.logic.atoms import atom, fact
from repro.logic.join import (
    ArgIndex,
    RulePlan,
    clear_plan_cache,
    iter_join,
    iter_join_seminaive,
    join_stats,
    match_conjunction_indexed,
    match_conjunction_seminaive_indexed,
)
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import FactIndex, match_conjunction, match_conjunction_seminaive

X, Y, Z = Variable("X"), Variable("Y"), Variable("Z")

EDGES = [fact("edge", 1, 2), fact("edge", 2, 3), fact("edge", 3, 1), fact("edge", 2, 2)]
COLORS = [fact("colored", 1, "red"), fact("colored", 2, "blue"), fact("colored", 3, "red")]


def _sub_set(iterator):
    return {frozenset(dict(s.items() if isinstance(s, Substitution) else s.items()).items()) for s in iterator}


class TestArgIndex:
    def test_probe_matches_filtered_bucket(self):
        index = ArgIndex(EDGES)
        probed = set(index.probe(EDGES[0].predicate, 0, Constant(2)))
        assert probed == {fact("edge", 2, 3), fact("edge", 2, 2)}
        assert set(index.probe(EDGES[0].predicate, 1, Constant(2))) == {
            fact("edge", 1, 2),
            fact("edge", 2, 2),
        }
        assert set(index.probe(EDGES[0].predicate, 0, Constant(99))) == set()

    def test_lazily_built_index_is_maintained_incrementally(self):
        index = ArgIndex(EDGES)
        predicate = EDGES[0].predicate
        assert len(index.probe(predicate, 0, Constant(1))) == 1  # builds position 0
        assert index.add(fact("edge", 1, 9))
        assert set(index.probe(predicate, 0, Constant(1))) == {
            fact("edge", 1, 2),
            fact("edge", 1, 9),
        }
        # A never-probed position is built on first use and still complete.
        assert set(index.probe(predicate, 1, Constant(9))) == {fact("edge", 1, 9)}

    def test_duplicate_add_is_a_noop(self):
        index = ArgIndex(EDGES)
        predicate = EDGES[0].predicate
        index.probe(predicate, 0, Constant(1))
        assert not index.add(fact("edge", 1, 2))
        assert len(index.probe(predicate, 0, Constant(1))) == 1

    def test_copy_is_independent_in_both_directions(self):
        index = ArgIndex(EDGES)
        predicate = EDGES[0].predicate
        index.probe(predicate, 0, Constant(1))  # build before copying
        duplicate = index.copy()
        assert isinstance(duplicate, ArgIndex)

        duplicate.add(fact("edge", 1, 7))
        assert fact("edge", 1, 7) not in index
        assert set(index.probe(predicate, 0, Constant(1))) == {fact("edge", 1, 2)}

        index.add(fact("edge", 1, 8))
        assert fact("edge", 1, 8) not in duplicate
        assert set(duplicate.probe(predicate, 0, Constant(1))) == {
            fact("edge", 1, 2),
            fact("edge", 1, 7),
        }

    def test_copy_stays_consistent_with_all_set(self):
        index = ArgIndex(EDGES)
        duplicate = index.copy()
        duplicate.add(fact("edge", 9, 9))
        assert len(duplicate) == len(EDGES) + 1
        assert set(duplicate.facts_for(EDGES[0].predicate)) == duplicate.as_set()

    def test_estimated_bucket_size(self):
        index = ArgIndex(EDGES)
        predicate = EDGES[0].predicate
        # 4 facts over 3 distinct first arguments.
        assert index.estimated_bucket_size(predicate, 0) == pytest.approx(4 / 3)
        assert index.estimated_bucket_size(predicate, 1) == pytest.approx(4 / 3)
        assert index.estimated_bucket_size(fact("nope", 1).predicate, 0) == 0.0


class TestFactsForAliasing:
    def test_facts_for_returns_a_read_only_view(self):
        index = FactIndex(EDGES)
        view = index.facts_for(EDGES[0].predicate)
        with pytest.raises(AttributeError):
            view.add(fact("edge", 5, 5))  # type: ignore[attr-defined]
        with pytest.raises(AttributeError):
            view.discard(EDGES[0])  # type: ignore[attr-defined]

    def test_view_is_live_and_set_algebra_detaches(self):
        index = FactIndex(EDGES[:2])
        view = index.facts_for(EDGES[0].predicate)
        assert len(view) == 2
        index.add(fact("edge", 8, 8))
        assert len(view) == 3  # live view reflects later adds
        detached = view | {fact("edge", 9, 9)}
        assert isinstance(detached, frozenset)
        index.add(fact("edge", 10, 10))
        assert len(detached) == 4  # frozenset result is detached

    def test_empty_predicate_view_is_empty_immutable_and_live(self):
        index = FactIndex()
        view = index.facts_for(EDGES[0].predicate)
        assert len(view) == 0 and list(view) == []
        with pytest.raises(AttributeError):
            view.add(EDGES[0])  # type: ignore[attr-defined]
        index.add(EDGES[0])
        assert EDGES[0] in view and len(view) == 1  # live even from empty

    def test_index_cannot_be_desynced_through_the_view(self):
        index = FactIndex(EDGES)
        assert set(index.facts_for(EDGES[0].predicate)) == set(index.as_set())
        # The historical hazard: mutating the returned bucket desynced _all.
        # The view exposes no mutators, so the invariant is preserved.
        assert len(index) == len(EDGES)


class TestIterJoin:
    def test_matches_naive_on_bound_constant_patterns(self):
        index = ArgIndex(EDGES + COLORS)
        patterns = (atom("edge", 2, "Y"),)
        assert _sub_set(iter_join(patterns, index)) == _sub_set(match_conjunction(patterns, index))

    def test_matches_naive_on_multi_atom_join(self):
        index = ArgIndex(EDGES + COLORS)
        patterns = (atom("colored", "X", "red"), atom("edge", "X", "Y"), atom("colored", "Y", "red"))
        assert _sub_set(iter_join(patterns, index)) == _sub_set(match_conjunction(patterns, index))

    def test_repeated_variable_pattern(self):
        index = ArgIndex(EDGES)
        patterns = (atom("edge", "X", "X"),)
        expected = _sub_set(match_conjunction(patterns, index))
        assert _sub_set(iter_join(patterns, index)) == expected
        assert expected == {frozenset({(X, Constant(2))})}  # edge(2, 2) is the only self-loop

    def test_empty_conjunction_yields_the_initial_binding(self):
        index = ArgIndex(EDGES)
        assert list(iter_join((), index)) == [{}]
        binding = Substitution.of({X: Constant(1)})
        assert list(iter_join((), index, binding)) == [{X: Constant(1)}]

    def test_initial_binding_restricts_matches(self):
        index = ArgIndex(EDGES)
        patterns = (atom("edge", "X", "Y"),)
        binding = Substitution.of({X: Constant(2)})
        naive = _sub_set(match_conjunction(patterns, index, binding))
        fast = _sub_set(iter_join(patterns, index, binding))
        assert naive == fast
        assert all(dict(pairs)[X] == Constant(2) for pairs in fast)

    def test_variable_to_variable_initial_binding(self):
        index = ArgIndex(EDGES)
        patterns = (atom("edge", "X", "Z"),)
        binding = Substitution.of({X: Y})
        naive = _sub_set(match_conjunction(patterns, index, binding))
        fast = _sub_set(iter_join(patterns, index, binding))
        assert naive == fast

    def test_accepts_plain_fact_iterables(self):
        patterns = (atom("edge", "X", 2),)
        assert _sub_set(iter_join(patterns, EDGES)) == _sub_set(match_conjunction(patterns, EDGES))

    def test_deterministic_enumeration(self):
        index = ArgIndex(EDGES + COLORS)
        patterns = (atom("edge", "X", "Y"), atom("colored", "Y", "Z"))
        first = list(match_conjunction_indexed(patterns, index))
        second = list(match_conjunction_indexed(patterns, index))
        assert first == second


class TestIterJoinSeminaive:
    def test_matches_naive_seminaive_sets(self):
        facts = FactIndex(EDGES + COLORS)
        arg_facts = ArgIndex(EDGES + COLORS)
        delta = FactIndex([fact("edge", 2, 3), fact("colored", 3, "red")])
        patterns = (atom("edge", "X", "Y"), atom("colored", "Y", "C"))
        naive = _sub_set(match_conjunction_seminaive(patterns, facts, delta))
        fast = _sub_set(iter_join_seminaive(patterns, arg_facts, delta))
        assert naive == fast

    def test_each_qualifying_substitution_exactly_once(self):
        arg_facts = ArgIndex(EDGES)
        delta = FactIndex([fact("edge", 2, 3), fact("edge", 2, 2)])
        patterns = (atom("edge", "X", "Y"), atom("edge", "Y", "Z"))
        results = [frozenset(m.items()) for m in iter_join_seminaive(patterns, arg_facts, delta)]
        assert len(results) == len(set(results))  # duplicate-free decomposition

    def test_empty_delta_or_patterns_yield_nothing(self):
        arg_facts = ArgIndex(EDGES)
        assert list(iter_join_seminaive((atom("edge", "X", "Y"),), arg_facts, FactIndex())) == []
        assert list(iter_join_seminaive((), arg_facts, FactIndex(EDGES))) == []

    def test_substitution_wrapper_equivalence(self):
        facts = FactIndex(EDGES)
        arg_facts = ArgIndex(EDGES)
        delta = FactIndex([fact("edge", 3, 1)])
        patterns = (atom("edge", "X", "Y"), atom("edge", "Y", "Z"))
        naive = set(match_conjunction_seminaive(patterns, facts, delta))
        fast = set(match_conjunction_seminaive_indexed(patterns, arg_facts, delta))
        assert naive == fast


class TestRulePlanCache:
    def test_plans_are_cached_and_counted(self):
        clear_plan_cache()
        stats = join_stats()
        compiled_before, reused_before = stats.plans_compiled, stats.plans_reused
        patterns = (atom("edge", "X", "Y"), atom("edge", "Y", "Z"))
        first = RulePlan.for_patterns(patterns)
        second = RulePlan.for_patterns(patterns)
        assert first is second
        assert stats.plans_compiled == compiled_before + 1
        assert stats.plans_reused == reused_before + 1

    def test_join_order_prefers_selective_atoms(self):
        index = ArgIndex(EDGES + COLORS + [fact("start", 2)])
        patterns = (atom("edge", "X", "Y"), atom("start", "X"))
        plan = RulePlan.for_patterns(patterns)
        ordered = plan.join_order(index)
        # start/1 has one fact; the planner should pivot on it first.
        assert ordered[0].predicate.name == "start"

    def test_probe_and_scan_counters_move(self):
        stats = join_stats()
        index = ArgIndex(EDGES)
        probes_before, scans_before = stats.index_probes, stats.full_scans
        list(iter_join((atom("edge", 1, "Y"),), index))
        assert stats.index_probes > probes_before
        list(iter_join((atom("edge", "X", "Y"),), index))
        assert stats.full_scans > scans_before
