"""Unit tests of the columnar ground core: FactStore column maintenance,
copy-on-write snapshots, adaptive dispatch, batch counters, plan caching,
and the pure-Python fallback when NumPy is absent (monkeypatched import
failure, mirroring the fork-less probe test of the parallel sampler).
"""

from __future__ import annotations

import pytest

import repro.logic.columnar as columnar
from repro.logic.atoms import atom, fact
from repro.logic.columnar import ColumnarPlan, FactStore, make_fact_store
from repro.logic.join import JOIN_STATS, ArgIndex

np = pytest.importorskip("numpy", exc_type=ImportError)


@pytest.fixture
def forced(monkeypatch):
    """Columnar engine forced on regardless of extent size."""
    monkeypatch.setattr(columnar, "COLUMNAR_MIN_ROWS", 0)
    monkeypatch.setattr(columnar, "_USE_COLUMNAR", True)


def _edges(n):
    return [fact("edge", i, (i + 1) % n) for i in range(n)]


class TestFactStore:
    def test_columns_track_extent(self):
        store = FactStore(_edges(5))
        assert store._extent_size(fact("edge", 0, 1).predicate) == 5
        assert len(store) == 5

    def test_duplicate_adds_do_not_grow_columns(self):
        store = FactStore()
        f = fact("edge", 1, 2)
        assert store.add(f)
        assert not store.add(f)
        assert store._extent_size(f.predicate) == 1

    def test_unknown_predicate_has_empty_extent(self):
        store = FactStore(_edges(3))
        assert store._extent_size(fact("nope", 1).predicate) == 0

    def test_inherits_argindex_api(self):
        store = FactStore(_edges(4))
        assert isinstance(store, ArgIndex)
        assert fact("edge", 0, 1) in store
        assert len(list(store.facts_for(fact("edge", 0, 1).predicate))) == 4


class TestCopyOnWrite:
    def test_child_appends_do_not_leak_into_parent(self, forced):
        parent = FactStore(_edges(4))
        child = parent.copy()
        child.add(fact("edge", 99, 98))
        assert fact("edge", 99, 98) in child
        assert fact("edge", 99, 98) not in parent
        pattern = (atom("edge", 99, "Y"),)
        assert len(list(columnar.iter_join(pattern, child))) == 1
        assert list(columnar.iter_join(pattern, parent)) == []

    def test_parent_appends_do_not_leak_into_child(self, forced):
        parent = FactStore(_edges(4))
        child = parent.copy()
        parent.add(fact("edge", 77, 76))
        pattern = (atom("edge", 77, "Y"),)
        assert len(list(columnar.iter_join(pattern, parent))) == 1
        assert list(columnar.iter_join(pattern, child)) == []

    def test_snapshot_copy_counter_bumps_on_append_after_copy(self):
        store = FactStore(_edges(4))
        store.copy()
        before = JOIN_STATS.columnar_snapshot()[3]
        store.add(fact("edge", 55, 54))  # shared buffer → copy-on-write
        assert JOIN_STATS.columnar_snapshot()[3] == before + 1

    def test_copy_without_appends_shares_buffers(self):
        store = FactStore(_edges(4))
        child = store.copy()
        pred = fact("edge", 0, 1).predicate
        assert child._pred_columns(pred).data is store._pred_columns(pred).data


class TestAdaptiveDispatch:
    def test_small_extents_stay_on_the_indexed_path(self, monkeypatch):
        monkeypatch.setattr(columnar, "COLUMNAR_MIN_ROWS", 1_000_000)
        store = FactStore(_edges(10))
        before = JOIN_STATS.columnar_snapshot()[0]
        results = list(columnar.iter_join((atom("edge", "X", "Y"),), store))
        assert len(results) == 10
        assert JOIN_STATS.columnar_snapshot()[0] == before

    def test_large_extents_run_batches(self, forced):
        store = FactStore(_edges(10))
        before = JOIN_STATS.columnar_snapshot()[0]
        results = list(columnar.iter_join((atom("edge", "X", "Y"),), store))
        assert len(results) == 10
        assert JOIN_STATS.columnar_snapshot()[0] == before + 1

    def test_plain_argindex_always_uses_the_indexed_path(self, forced):
        index = ArgIndex(_edges(10))
        before = JOIN_STATS.columnar_snapshot()[0]
        assert len(list(columnar.iter_join((atom("edge", "X", "Y"),), index))) == 10
        assert JOIN_STATS.columnar_snapshot()[0] == before


class TestPlans:
    def test_plan_cache_reuses_compiled_plans(self):
        patterns = (atom("edge", "X", "Y"), atom("edge", "Y", "Z"))
        first = ColumnarPlan.for_patterns(patterns)
        second = ColumnarPlan.for_patterns(tuple(patterns))
        assert first is second

    def test_shapes_record_constants_and_duplicates(self):
        plan = ColumnarPlan((atom("edge", 7, "X"), atom("edge", "Y", "Y")))
        bound, dup = plan.shapes
        assert len(bound.const_terms) == 1 and bound.const_terms[0][0] == 0
        assert dup.dup_pairs == ((0, 1),)


class TestBatchStats:
    def test_batch_counters_accumulate_rows(self, forced):
        store = FactStore(_edges(8))
        before = JOIN_STATS.columnar_snapshot()
        n = len(list(columnar.iter_join((atom("edge", "X", "Y"), atom("edge", "Y", "Z")), store)))
        after = JOIN_STATS.columnar_snapshot()
        assert n == 8
        assert after[0] == before[0] + 1
        assert after[1] >= before[1] + 16  # both extents selected
        assert after[2] == before[2] + 8

    def test_columnar_stats_reports_table_sizes(self):
        FactStore(_edges(2))
        stats = columnar.columnar_stats()
        assert stats["constants"] >= 2
        assert stats["plans"] >= 0


class TestJoinArrays:
    def test_returns_id_columns(self, forced):
        store = FactStore(_edges(6))
        variables, columns, length = columnar.join_arrays(
            (atom("edge", "X", "Y"),), store
        )
        assert length == 6
        assert {str(v) for v in variables} == {"X", "Y"}
        assert all(c.dtype == np.int64 for c in columns)

    def test_rejects_plain_argindex(self):
        with pytest.raises(TypeError):
            columnar.join_arrays((atom("edge", "X", "Y"),), ArgIndex(_edges(2)))


class TestConfiguration:
    def test_flag_round_trip(self):
        try:
            columnar.set_use_columnar(False)
            assert not columnar.use_columnar()
            assert isinstance(make_fact_store(), ArgIndex)
            assert not isinstance(make_fact_store(), FactStore)
            columnar.set_use_columnar(True)
            assert columnar.use_columnar()
            assert isinstance(make_fact_store(), FactStore)
            columnar.set_use_columnar(None)  # auto: on, NumPy is importable here
            assert columnar.use_columnar()
        finally:
            columnar.set_use_columnar(None)


class TestNumpyAbsentFallback:
    """Monkeypatched import-failure probe: the whole stack must degrade to
    the PR 5 indexed path with identical results when NumPy is absent."""

    @pytest.fixture
    def no_numpy(self, monkeypatch):
        monkeypatch.setattr(columnar, "np", None)
        monkeypatch.setattr(columnar, "NUMPY_AVAILABLE", False)

    def test_use_columnar_reports_off(self, no_numpy):
        columnar.set_use_columnar(True)  # even an explicit opt-in cannot win
        try:
            assert not columnar.use_columnar()
        finally:
            columnar.set_use_columnar(None)

    def test_make_fact_store_degrades_to_argindex(self, no_numpy):
        store = make_fact_store(_edges(3))
        assert isinstance(store, ArgIndex)
        assert not isinstance(store, FactStore)

    def test_dispatchers_fall_back_even_on_columnar_stores(self, no_numpy, monkeypatch):
        monkeypatch.setattr(columnar, "COLUMNAR_MIN_ROWS", 0)
        store = FactStore.__new__(FactStore)  # a store built before the "failure"
        ArgIndex.__init__(store, ())
        store._columns = {}
        for f in _edges(5):
            ArgIndex.add(store, f)
        results = list(columnar.iter_join((atom("edge", "X", "Y"),), store))
        assert len(results) == 5

    def test_join_arrays_raises_without_numpy(self, no_numpy):
        with pytest.raises(TypeError):
            columnar.join_arrays((atom("edge", "X", "Y"),), FactStore())

    def test_grounding_is_byte_identical_across_backends(self, monkeypatch):
        from repro.stable.grounding import ground_program
        from repro.workloads import selective_join_database, selective_join_program

        program = selective_join_program()
        database = selective_join_database(30, seed=1)
        with_numpy = ground_program(program, database)
        monkeypatch.setattr(columnar, "np", None)
        monkeypatch.setattr(columnar, "NUMPY_AVAILABLE", False)
        without_numpy = ground_program(program, database)
        assert with_numpy.rules == without_numpy.rules


class TestRngFallback:
    """The pure-Python RNG substrate used when NumPy is uninstalled."""

    def test_fallback_seed_sequence_is_deterministic(self):
        from repro.rng import _FallbackSeedSequence

        a = _FallbackSeedSequence(42)
        b = _FallbackSeedSequence(42)
        assert a.generate_state(4) == b.generate_state(4)
        assert all(0 <= w < 2**64 for w in a.generate_state(4))

    def test_fallback_spawn_decorrelates_children(self):
        from repro.rng import _FallbackSeedSequence

        parent = _FallbackSeedSequence(7)
        first, second = parent.spawn(2)
        third = parent.spawn(1)[0]
        states = {
            tuple(child.generate_state(2)) for child in (first, second, third)
        }
        assert len(states) == 3  # all distinct, including across spawn calls

    def test_fallback_generator_draws(self):
        from repro.rng import _FallbackGenerator

        rng = _FallbackGenerator(123)
        assert 0.0 <= rng.random() < 1.0
        batch = rng.random(5)
        assert len(batch) == 5 and all(0.0 <= u < 1.0 for u in batch)
        assert rng.geometric(1.0) == 1
        assert rng.geometric(0.5) >= 1
        assert rng.poisson(0.0) == 0
        assert rng.poisson(3.0) >= 0
        with pytest.raises(ValueError):
            rng.geometric(0.0)
        with pytest.raises(ValueError):
            rng.poisson(-1.0)

    def test_fallback_default_rng_accepts_seed_material(self):
        from repro.rng import _fallback_default_rng, _FallbackSeedSequence

        seq = _FallbackSeedSequence(5)
        a = _fallback_default_rng(seq).random()
        b = _fallback_default_rng(_FallbackSeedSequence(5)).random()
        assert a == b
        assert _fallback_default_rng(17).random() == _fallback_default_rng(17).random()
