"""Unit tests for the parameterized distributions and the registry."""

from __future__ import annotations

import math

import pytest

from repro.rng import default_rng

from repro.distributions import (
    BinomialDistribution,
    CategoricalDistribution,
    ConstantDistribution,
    DieDistribution,
    DistributionRegistry,
    FlipDistribution,
    GeometricDistribution,
    PoissonDistribution,
    UniformIntDistribution,
    default_registry,
)
from repro.exceptions import DistributionError


class TestFlip:
    def setup_method(self):
        self.flip = FlipDistribution()

    def test_pmf(self):
        assert self.flip.pmf([0.3], 1) == pytest.approx(0.3)
        assert self.flip.pmf([0.3], 0) == pytest.approx(0.7)
        assert self.flip.pmf([0.3], 2) == 0.0

    def test_support(self):
        assert list(self.flip.support([0.3])) == [0, 1]
        assert list(self.flip.support([0.0])) == [0]
        assert list(self.flip.support([1.0])) == [1]

    def test_invalid_parameters_collapse_to_fallback(self):
        assert self.flip.pmf([1.5], 0) == 1.0
        assert list(self.flip.support([1.5])) == [0]

    def test_validate_params(self):
        with pytest.raises(DistributionError):
            self.flip.validate_params([1.5])
        with pytest.raises(DistributionError):
            self.flip.validate_params([0.2, 0.3])
        self.flip.validate_params([0.2])

    def test_sampling_frequency(self):
        rng = default_rng(0)
        samples = [self.flip.sample([0.25], rng) for _ in range(4000)]
        assert abs(sum(samples) / len(samples) - 0.25) < 0.03

    def test_finite_support(self):
        assert self.flip.has_finite_support([0.5])


class TestCategoricalAndDie:
    def test_categorical_pmf(self):
        categorical = CategoricalDistribution()
        weights = [0.2, 0.3, 0.5]
        assert categorical.pmf(weights, 1) == pytest.approx(0.2)
        assert categorical.pmf(weights, 3) == pytest.approx(0.5)
        assert categorical.pmf(weights, 4) == 0.0
        assert list(categorical.support(weights)) == [1, 2, 3]

    def test_categorical_invalid_weights(self):
        categorical = CategoricalDistribution()
        assert categorical.pmf([0.5, 0.2], 0) == 1.0
        assert list(categorical.support([0.5, 0.2])) == [0]

    def test_zero_weight_excluded_from_support(self):
        categorical = CategoricalDistribution()
        assert list(categorical.support([0.5, 0.0, 0.5])) == [1, 3]

    def test_die_matches_paper_appendix(self):
        die = DieDistribution()
        fair = [1 / 6] * 6
        assert die.pmf(fair, 3) == pytest.approx(1 / 6)
        assert die.pmf(fair, 0) == 0.0
        # Incorrect instantiation: all the mass goes to the fallback outcome 0.
        assert die.pmf([0.5] * 6, 0) == 1.0
        assert die.pmf([1 / 6] * 5, 0) == 1.0

    def test_die_support_sums_to_one(self):
        die = DieDistribution()
        fair = [1 / 6] * 6
        assert sum(die.pmf(fair, o) for o in die.support(fair)) == pytest.approx(1.0)


class TestUniformBinomial:
    def test_uniform_int(self):
        uniform = UniformIntDistribution()
        assert uniform.pmf([1, 4], 2) == pytest.approx(0.25)
        assert list(uniform.support([1, 4])) == [1, 2, 3, 4]
        assert uniform.pmf([4, 1], 2) == 0.0  # invalid: lo > hi → fallback
        assert uniform.pmf([4, 1], 0) == 1.0

    def test_binomial(self):
        binomial = BinomialDistribution()
        assert binomial.pmf([3, 0.5], 0) == pytest.approx(0.125)
        assert binomial.pmf([3, 0.5], 2) == pytest.approx(0.375)
        assert sum(binomial.pmf([5, 0.3], k) for k in binomial.support([5, 0.3])) == pytest.approx(1.0)
        assert binomial.pmf([3, 0.5], 7) == 0.0


class TestGeometricPoisson:
    def test_geometric_pmf(self):
        geometric = GeometricDistribution()
        assert geometric.pmf([0.5], 0) == pytest.approx(0.5)
        assert geometric.pmf([0.5], 2) == pytest.approx(0.125)
        assert not geometric.has_finite_support([0.5])
        assert geometric.has_finite_support([1.0])

    def test_geometric_truncated_support(self):
        geometric = GeometricDistribution()
        outcomes, mass = geometric.truncated_support([0.5], mass_tolerance=1e-3)
        assert outcomes[0] == 0
        assert mass >= 1 - 1e-3

    def test_geometric_sampling(self):
        geometric = GeometricDistribution()
        rng = default_rng(1)
        samples = [geometric.sample([0.5], rng) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - 1.0) < 0.15  # mean of Geometric(0.5) failures = 1

    def test_poisson_pmf(self):
        poisson = PoissonDistribution()
        assert poisson.pmf([2.0], 0) == pytest.approx(math.exp(-2.0))
        assert poisson.pmf([2.0], 3) == pytest.approx(math.exp(-2.0) * 8 / 6)
        assert not poisson.has_finite_support([2.0])

    def test_poisson_truncation_and_sampling(self):
        poisson = PoissonDistribution()
        outcomes, mass = poisson.truncated_support([1.0], mass_tolerance=1e-6)
        assert mass >= 1 - 1e-6
        rng = default_rng(2)
        samples = [poisson.sample([4.0], rng) for _ in range(2000)]
        assert abs(sum(samples) / len(samples) - 4.0) < 0.25


class TestConstant:
    def test_dirac(self):
        constant = ConstantDistribution()
        assert constant.pmf([7], 7) == 1.0
        assert constant.pmf([7], 6) == 0.0
        assert list(constant.support([7])) == [7]
        assert list(constant.support([2.5])) == [2.5]


class TestRegistry:
    def test_default_registry_contents(self):
        registry = default_registry()
        for name in ("flip", "categorical", "die", "uniform_int", "binomial", "geometric", "poisson", "constant"):
            assert registry.knows(name)
        assert len(registry) == 8

    def test_lookup_case_insensitive(self):
        registry = default_registry()
        assert registry.get("Flip").name == "flip"
        assert "FLIP" in registry

    def test_unknown_distribution(self):
        with pytest.raises(DistributionError):
            default_registry().get("mystery")

    def test_register_custom(self):
        class Always42(ConstantDistribution):
            name = "always42"

        registry = DistributionRegistry([Always42()])
        assert registry.knows("always42")

    def test_conflicting_registration_rejected(self):
        registry = default_registry()

        class FakeFlip(ConstantDistribution):
            name = "flip"

        with pytest.raises(DistributionError):
            registry.register(FakeFlip())

    def test_copy_is_independent(self):
        registry = default_registry()
        clone = registry.copy()

        class Extra(ConstantDistribution):
            name = "extra"

        clone.register(Extra())
        assert not registry.knows("extra")


class TestPmfNormalization:
    @pytest.mark.parametrize(
        "distribution,params",
        [
            (FlipDistribution(), [0.3]),
            (CategoricalDistribution(), [0.1, 0.2, 0.7]),
            (DieDistribution(), [1 / 6] * 6),
            (UniformIntDistribution(), [2, 5]),
            (BinomialDistribution(), [4, 0.4]),
            (ConstantDistribution(), [3]),
        ],
    )
    def test_finite_supports_sum_to_one(self, distribution, params):
        total = sum(distribution.pmf(params, o) for o in distribution.support(params))
        assert total == pytest.approx(1.0)
