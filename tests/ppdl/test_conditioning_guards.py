"""Regression tests for the conditioning fixes: fsum masses, epsilon guards,
and the reported (previously silently discarded) error-event mass."""

from __future__ import annotations

import math

import pytest

from repro.exceptions import InferenceError
from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.probability_space import OutputSpace, ZERO_MASS_EPSILON
from repro.ppdl.conditioning import condition
from repro.ppdl.constraints import ConstraintSet
from repro.workloads import independent_coins_database, independent_coins_program


@pytest.fixture(scope="module")
def coins_space():
    engine = GDatalogEngine(
        independent_coins_program(), independent_coins_database(3), chase_config=ChaseConfig()
    )
    return engine.output_space()


def _rescaled(space: OutputSpace, scale: float, error: float = 0.0) -> OutputSpace:
    """A copy of *space* with every outcome mass multiplied by *scale*."""
    outcomes = [o.with_probability(o.probability * scale) for o in space]
    return OutputSpace(outcomes, error_probability=error)


class TestEpsilonGuards:
    def test_conditional_raises_on_zero_mass(self, coins_space):
        with pytest.raises(InferenceError, match="probability zero"):
            coins_space.conditional(lambda o: False)

    def test_conditional_raises_on_denormal_mass(self, coins_space):
        # Every outcome is scaled to ~1e-17; any event mass sits far below
        # the epsilon and must be rejected, not renormalized.
        tiny = _rescaled(coins_space, 8e-17)
        assert tiny.finite_probability < ZERO_MASS_EPSILON
        with pytest.raises(InferenceError, match="probability zero"):
            tiny.conditional(lambda o: o.has_stable_model)

    def test_condition_raises_on_denormal_evidence(self, coins_space):
        tiny = _rescaled(coins_space, 8e-17)
        with pytest.raises(InferenceError, match="conditioning is undefined"):
            condition(tiny, ConstraintSet.observing("heads(1)"))

    def test_epsilon_override_allows_tiny_exact_evidence(self, coins_space):
        # The guard is a policy default, not a hard wall: callers with
        # legitimately tiny, exactly-representable evidence can lower it.
        tiny = _rescaled(coins_space, 8e-17)
        with pytest.raises(InferenceError):
            tiny.conditional(lambda o: o.has_stable_model)
        posterior = tiny.conditional(lambda o: o.has_stable_model, epsilon=0.0)
        assert posterior.finite_probability == pytest.approx(1.0)
        result = condition(
            tiny, ConstraintSet.observing("heads(1)"), epsilon=0.0
        )
        assert result.evidence_probability == pytest.approx(4e-17)

    def test_legitimate_small_evidence_still_conditions(self, coins_space):
        # 1/8 evidence is far above the epsilon; posterior must renormalize
        # to exactly one, never above.
        evidence = ConstraintSet.observing("heads(1)", "heads(2)", "heads(3)")
        result = condition(coins_space, evidence)
        assert result.evidence_probability == pytest.approx(0.125)
        posterior_mass = math.fsum(o.probability for o in result.posterior)
        assert posterior_mass == pytest.approx(1.0)
        assert all(0.0 <= o.probability <= 1.0 for o in result.posterior)


class TestDiscardedErrorMass:
    def test_error_mass_is_reported_not_dropped(self, coins_space):
        prior = _rescaled(coins_space, 0.75, error=0.25)
        result = condition(prior, ConstraintSet.observing("heads(1)"))
        assert result.discarded_error_probability == pytest.approx(0.25)
        # Evidence is relative to the finite mass (0.75), not to 1.
        assert result.evidence_probability == pytest.approx(0.375)
        assert "error mass" in str(result)

    def test_zero_error_mass_reports_zero(self, coins_space):
        result = condition(coins_space, ConstraintSet.observing("heads(1)"))
        assert result.discarded_error_probability == 0.0
        assert "error mass" not in str(result)

    def test_posterior_discards_the_error_event(self, coins_space):
        prior = _rescaled(coins_space, 0.5, error=0.5)
        result = condition(prior, ConstraintSet.observing("heads(1)"))
        assert result.posterior.error_probability == 0.0
        assert result.posterior.finite_probability == pytest.approx(1.0)


class TestFsumAccumulation:
    def test_finite_probability_uses_exact_summation(self):
        # 10 outcomes of 0.1 in float drift under naive sum; fsum does not
        # (0.1 is not dyadic, but fsum rounds the exact sum once).
        engine = GDatalogEngine(
            independent_coins_program(0.1),
            independent_coins_database(1),
            chase_config=ChaseConfig(),
        )
        space = engine.output_space()
        masses = [o.probability for o in space] * 5
        padded = OutputSpace(
            [o.with_probability(p) for o, p in zip(list(space) * 5, masses)]
        )
        assert padded.finite_probability == math.fsum(masses)
