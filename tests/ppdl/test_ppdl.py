"""Unit tests for the PPDL layer: observations, constraint sets, conditioning and queries."""

from __future__ import annotations

import pytest

from repro.exceptions import InferenceError
from repro.logic.atoms import atom
from repro.ppdl import (
    AtomQuery,
    ConditionalQuery,
    ConstraintSet,
    EventQuery,
    HasStableModelQuery,
    Observation,
    condition,
)


@pytest.fixture()
def resilience_space(resilience_engine):
    return resilience_engine.output_space()


class TestObservation:
    def test_of_accepts_strings(self):
        observation = Observation.of("infected(2, 1)")
        assert observation.atom == atom("infected", 2, 1)
        assert not observation.negated

    def test_holds_in_outcomes(self, resilience_space):
        dominated = Observation.of("infected(2, 1)", mode="brave")
        hits = [o for o in resilience_space if dominated.holds_in(o)]
        assert hits
        for outcome in hits:
            assert any(atom("infected", 2, 1) in m for m in outcome.stable_models)

    def test_negated_observation_on_inconsistent_outcome(self, coin_engine):
        space = coin_engine.output_space()
        no_model_outcome = next(o for o in space if not o.has_stable_model)
        assert Observation.of("coin(1)", negated=True).holds_in(no_model_outcome)
        assert not Observation.of("coin(1)").holds_in(no_model_outcome)

    def test_str(self):
        assert "not" in str(Observation.of("p(1)", negated=True))


class TestConstraintSet:
    def test_observing_builder(self, resilience_space):
        constraints = ConstraintSet.observing("infected(2, 1)")
        assert len(constraints) == 1
        mass = resilience_space.probability(constraints.satisfied_by)
        assert mass == pytest.approx(resilience_space.marginal(atom("infected", 2, 1), "cautious"))

    def test_requiring_stable_model(self, resilience_space):
        constraints = ConstraintSet().requiring_stable_model()
        assert resilience_space.probability(constraints.satisfied_by) == pytest.approx(0.19)

    def test_and_predicate(self, resilience_space):
        constraints = ConstraintSet().and_predicate(lambda o: len(o.atr_rules) == 2)
        mass = resilience_space.probability(constraints.satisfied_by)
        assert 0.0 < mass < 1.0

    def test_composition(self, resilience_space):
        constraints = (
            ConstraintSet.observing("infected(2, 1)")
            .and_observation(Observation.of("infected(3, 1)"))
            .requiring_stable_model()
        )
        assert len(constraints) == 3
        assert 0.0 < resilience_space.probability(constraints.satisfied_by) < 0.19

    def test_str(self):
        rendered = str(ConstraintSet.observing("p(1)").requiring_stable_model())
        assert "p(1)" in rendered and "stable model" in rendered
        assert str(ConstraintSet()) == "<no constraints>"


class TestConditioning:
    def test_posterior_is_normalized(self, resilience_space):
        result = condition(resilience_space, ConstraintSet().requiring_stable_model())
        assert result.evidence_probability == pytest.approx(0.19)
        assert result.posterior.finite_probability == pytest.approx(1.0)
        assert result.posterior_outcomes < result.prior_outcomes
        assert "0.19" in str(result)

    def test_zero_probability_evidence_raises(self, resilience_space):
        impossible = ConstraintSet.observing("infected(99, 1)")
        with pytest.raises(InferenceError):
            condition(resilience_space, impossible)

    def test_posterior_marginal_increases(self, resilience_space):
        """Conditioning on domination makes infection of router 2 more likely."""
        prior_marginal = resilience_space.marginal(atom("infected", 2, 1))
        result = condition(resilience_space, ConstraintSet().requiring_stable_model())
        posterior_marginal = result.posterior.marginal(atom("infected", 2, 1))
        assert posterior_marginal > prior_marginal


class TestQueries:
    def test_has_stable_model_query(self, resilience_space):
        assert HasStableModelQuery().evaluate(resilience_space) == pytest.approx(0.19)

    def test_atom_query_modes(self, coin_engine):
        space = coin_engine.output_space()
        brave = AtomQuery.of("aux1", mode="brave").evaluate(space)
        cautious = AtomQuery.of("aux1", mode="cautious").evaluate(space)
        # aux1 holds in one of the two stable models of the "tails" outcome.
        assert brave == pytest.approx(0.5)
        assert cautious == pytest.approx(0.0)

    def test_event_query(self, resilience_space):
        query = EventQuery(lambda o: not o.has_stable_model, name="not dominated")
        assert query.evaluate(resilience_space) == pytest.approx(0.81)
        assert "not dominated" in str(query)

    def test_conditional_query_exact(self, resilience_space):
        query = ConditionalQuery(
            AtomQuery.of("infected(2, 1)"), ConstraintSet().requiring_stable_model()
        )
        value = query.evaluate(resilience_space)
        prior = AtomQuery.of("infected(2, 1)").evaluate(resilience_space)
        assert value > prior

    def test_query_estimation(self, resilience_engine, resilience_space):
        sampler = resilience_engine.sampler(seed=5)
        estimate = HasStableModelQuery().estimate(sampler, n=600)
        assert abs(estimate.value - 0.19) < 0.06

    def test_conditional_query_estimation(self, resilience_engine, resilience_space):
        sampler = resilience_engine.sampler(seed=6)
        query = ConditionalQuery(
            AtomQuery.of("infected(2, 1)"), ConstraintSet().requiring_stable_model()
        )
        exact = query.evaluate(resilience_space)
        estimate = query.estimate(sampler, n=1500)
        assert estimate.samples > 0
        assert abs(estimate.value - exact) < 0.12
