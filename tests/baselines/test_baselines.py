"""Unit tests for the BCKOV, ProbLog-style and credal-PASP baselines."""

from __future__ import annotations

import pytest

from repro.baselines import (
    BCKOVEngine,
    CredalInterval,
    PASPProgram,
    ProbabilisticFact,
    ProbLogProgram,
)
from repro.exceptions import ValidationError
from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_datalog_program, parse_gdatalog_program
from repro.workloads import random_database, random_positive_program


class TestBCKOVEngine:
    def test_rejects_negation_and_constraints(self):
        program = parse_gdatalog_program("p(X) :- q(X), not r(X).")
        with pytest.raises(ValidationError):
            BCKOVEngine(program, Database())

    def test_single_flip(self):
        program = parse_gdatalog_program("value(X, flip<0.3>[X]) :- item(X).")
        result = BCKOVEngine(program, Database([fact("item", 1)])).run()
        assert len(result) == 2
        assert result.finite_probability == pytest.approx(1.0)
        probabilities = sorted(o.probability for o in result.outcomes)
        assert probabilities == pytest.approx([0.3, 0.7])
        # Each outcome contains the sampled value atom plus the Result atom.
        for outcome in result.outcomes:
            values = [a for a in outcome.instance if a.predicate.name == "value"]
            assert len(values) == 1
            assert len(outcome.visible_atoms()) < len(outcome.instance)

    def test_derived_chain(self):
        program = parse_gdatalog_program(
            """
            value(X, flip<0.5>[X]) :- item(X).
            good(X) :- value(X, 1).
            """
        )
        result = BCKOVEngine(program, Database([fact("item", 1)])).run()
        good_mass = sum(o.probability for o in result.outcomes if fact("good", 1) in o.instance)
        assert good_mass == pytest.approx(0.5)

    def test_shared_event_signature_shares_sample(self):
        # Two rules sampling with the same Δ-term signature must agree on the value.
        program = parse_gdatalog_program(
            """
            a(X, flip<0.5>[X]) :- item(X).
            b(X, flip<0.5>[X]) :- item(X).
            """
        )
        result = BCKOVEngine(program, Database([fact("item", 1)])).run()
        assert len(result) == 2
        for outcome in result.outcomes:
            a_value = next(a.args[-1] for a in outcome.instance if a.predicate.name == "a")
            b_value = next(a.args[-1] for a in outcome.instance if a.predicate.name == "b")
            assert a_value == b_value

    def test_matches_simple_grounder_semantics(self):
        """Theorem C.4 (spot check): identical distributions over minimal models."""
        for seed in (0, 3, 5):
            program = random_positive_program(seed=seed, rule_count=4)
            database = random_database(seed=seed)
            bckov = BCKOVEngine(program, database).run()
            engine = GDatalogEngine(program, database, grounder="simple")
            ours: dict[frozenset, float] = {}
            for outcome in engine.possible_outcomes():
                models = outcome.stable_models_modulo(hide_active=True, hide_result=False)
                assert len(models) == 1  # Lemma C.5(1)
                key = next(iter(models))
                ours[key] = ours.get(key, 0.0) + outcome.probability
            theirs = bckov.distribution_over_instances()
            assert set(ours) == set(theirs)
            for key in ours:
                assert ours[key] == pytest.approx(theirs[key])


REACH_RULES = parse_datalog_program(
    """
    reach(X) :- start(X).
    reach(Y) :- reach(X), edge(X, Y).
    blocked(X) :- node(X), not reach(X).
    """
)


class TestProbLog:
    def setup_method(self):
        self.facts = [
            ProbabilisticFact(0.5, fact("edge", 1, 2)),
            ProbabilisticFact(0.4, fact("edge", 2, 3)),
        ]
        self.db = Database.from_relations({"start": [(1,)], "node": [(1,), (2,), (3,)]})
        self.program = ProbLogProgram(self.facts, REACH_RULES, self.db)

    def test_query_probability(self):
        assert self.program.query(fact("reach", 2)) == pytest.approx(0.5)
        assert self.program.query(fact("reach", 3)) == pytest.approx(0.2)
        assert self.program.query(fact("blocked", 3)) == pytest.approx(0.8)

    def test_query_many_consistent_with_query(self):
        atoms = [fact("reach", 2), fact("reach", 3)]
        combined = self.program.query_many(atoms)
        for a in atoms:
            assert combined[a] == pytest.approx(self.program.query(a))

    def test_distribution_over_models_sums_to_one(self):
        distribution = self.program.distribution_over_models()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert len(distribution) == 4

    def test_estimate_close_to_exact(self):
        estimate = self.program.estimate_query(fact("reach", 3), n=3000, seed=0)
        assert abs(estimate - 0.2) < 0.03

    def test_probability_validation(self):
        with pytest.raises(ValidationError):
            ProbabilisticFact(1.5, fact("edge", 1, 2))
        with pytest.raises(ValidationError):
            ProbabilisticFact(0.5, atom("edge", 1, "X"))

    def test_requires_stratified_rules(self):
        unstratified = parse_datalog_program("a(X) :- n(X), not b(X). b(X) :- n(X), not a(X).")
        with pytest.raises(ValidationError):
            ProbLogProgram([], unstratified, Database())

    def test_str_rendering(self):
        assert "0.5::edge(1, 2)." in str(self.program)


class TestPASP:
    def setup_method(self):
        # World: a coin; if it lands heads we may choose one of two colours
        # (even loop → two stable models); tails forces no colour.
        self.rules = parse_datalog_program(
            """
            red :- heads, not blue.
            blue :- heads, not red.
            """
        )
        self.facts = [ProbabilisticFact(0.6, fact("heads"))]
        self.program = PASPProgram(self.facts, self.rules)

    def test_credal_interval(self):
        interval = self.program.query(fact("red"))
        assert interval.lower == pytest.approx(0.0)
        assert interval.upper == pytest.approx(0.6)
        assert interval.inconsistent_mass == pytest.approx(0.0)
        assert interval.width() == pytest.approx(0.6)

    def test_deterministic_consequence_has_tight_interval(self):
        rules = parse_datalog_program("win :- heads.")
        program = PASPProgram([ProbabilisticFact(0.3, fact("heads"))], rules)
        interval = program.query(fact("win"))
        assert interval.lower == pytest.approx(0.3)
        assert interval.upper == pytest.approx(0.3)

    def test_inconsistent_choices_reported(self):
        rules = parse_datalog_program("a :- heads, not a.")
        program = PASPProgram([ProbabilisticFact(0.25, fact("heads"))], rules)
        interval = program.query(fact("a"))
        assert interval.inconsistent_mass == pytest.approx(0.25)
        assert program.consistency_probability() == pytest.approx(0.75)

    def test_estimate_close_to_exact(self):
        estimate = self.program.estimate_query(fact("red"), n=2000, seed=1)
        assert abs(estimate.upper - 0.6) < 0.05
        assert estimate.lower == pytest.approx(0.0)

    def test_too_many_facts_rejected(self):
        many = [ProbabilisticFact(0.5, fact("f", i)) for i in range(30)]
        with pytest.raises(ValidationError):
            PASPProgram(many, parse_datalog_program("g :- f(0)."))

    def test_interval_str(self):
        rendered = str(CredalInterval(0.1, 0.5, 0.05))
        assert "0.1" in rendered and "inconsistent" in rendered
