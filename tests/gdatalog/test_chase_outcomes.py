"""Unit tests for the chase procedure, possible outcomes and the output probability space."""

from __future__ import annotations

import pytest

from repro.exceptions import ChaseLimitError, InferenceError
from repro.gdatalog.chase import ChaseConfig, ChaseEngine, TriggerStrategy
from repro.gdatalog.grounders import SimpleGrounder
from repro.gdatalog.outcomes import outcome_probability
from repro.gdatalog.probability_space import OutputSpace
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_gdatalog_program
from repro.workloads import coin_program, paper_example_database, resilience_program


@pytest.fixture()
def resilience_chase():
    translated = translate_program(resilience_program(0.1))
    grounder = SimpleGrounder(translated, paper_example_database())
    return ChaseEngine(grounder)


class TestChaseMechanics:
    def test_root_node(self, resilience_chase):
        root = resilience_chase.root()
        assert root.probability == 1.0
        assert root.depth == 0
        assert len(root.triggers(resilience_chase.grounder)) == 2

    def test_expand_branches_over_support(self, resilience_chase):
        root = resilience_chase.root()
        trigger = root.triggers(resilience_chase.grounder)[0]
        children = resilience_chase.expand(root, trigger)
        assert len(children) == 2  # flip: outcomes 0 and 1
        assert sum(c.probability for c in children) == pytest.approx(1.0)
        assert sorted(c.probability for c in children) == pytest.approx([0.1, 0.9])
        for child in children:
            assert child.depth == 1
            assert len(child.atr_rules) == 1

    def test_run_total_mass_is_one(self, resilience_chase):
        result = resilience_chase.run()
        assert result.finite_probability == pytest.approx(1.0)
        assert result.error_probability == pytest.approx(0.0, abs=1e-9)
        assert result.truncated_paths == 0
        assert len(result) > 0

    def test_atr_sets_are_terminal_and_minimal(self, resilience_chase):
        result = resilience_chase.run()
        grounder = resilience_chase.grounder
        for outcome in result.outcomes:
            assert grounder.is_terminal(outcome.atr_rules, outcome.grounding)

    def test_distinct_atr_sets(self, resilience_chase):
        result = resilience_chase.run()
        atr_sets = [outcome.atr_rules for outcome in result.outcomes]
        assert len(atr_sets) == len(set(atr_sets))

    def test_trigger_strategies_yield_same_outcomes(self):
        """Lemma 4.4: the chase result does not depend on the trigger order."""
        translated = translate_program(resilience_program(0.1))
        grounder = SimpleGrounder(translated, paper_example_database())
        reference = None
        for strategy in (TriggerStrategy.FIRST, TriggerStrategy.LAST, TriggerStrategy.RANDOM):
            config = ChaseConfig(trigger_strategy=strategy, seed=7)
            result = ChaseEngine(grounder, config).run()
            summary = {(outcome.atr_rules, round(outcome.probability, 12)) for outcome in result.outcomes}
            if reference is None:
                reference = summary
            else:
                assert summary == reference

    def test_depth_limit_moves_mass_to_error_event(self):
        translated = translate_program(resilience_program(0.5))
        grounder = SimpleGrounder(translated, paper_example_database())
        config = ChaseConfig(max_depth=1)
        result = ChaseEngine(grounder, config).run()
        assert result.error_probability > 0.0
        assert result.finite_probability + result.error_probability == pytest.approx(1.0)

    def test_depth_limit_strict_raises(self):
        translated = translate_program(resilience_program(0.5))
        grounder = SimpleGrounder(translated, paper_example_database())
        config = ChaseConfig(max_depth=1, strict=True)
        with pytest.raises(ChaseLimitError):
            ChaseEngine(grounder, config).run()

    def test_infinite_support_is_truncated(self):
        program = parse_gdatalog_program("count(X, poisson<2.0>[X]) :- item(X).")
        translated = translate_program(program)
        grounder = SimpleGrounder(translated, Database([fact("item", 1)]))
        config = ChaseConfig(mass_tolerance=1e-4)
        result = ChaseEngine(grounder, config).run()
        assert 0.0 < result.error_probability < 1e-3
        assert result.finite_probability == pytest.approx(1.0 - result.error_probability, abs=1e-9)

    def test_sample_path_reaches_leaf(self, resilience_chase):
        from repro.rng import default_rng

        outcome, depth = resilience_chase.sample_path(default_rng(0))
        assert outcome is not None
        assert depth >= 2
        assert resilience_chase.grounder.is_terminal(outcome.atr_rules, outcome.grounding)


class TestPossibleOutcome:
    def test_coin_outcomes(self):
        translated = translate_program(coin_program())
        grounder = SimpleGrounder(translated, Database())
        result = ChaseEngine(grounder).run()
        assert len(result) == 2
        by_probability = {round(o.probability, 6): o for o in result.outcomes}
        heads = by_probability[0.5]
        assert heads.probability == pytest.approx(0.5)
        models = [o.stable_models for o in result.outcomes]
        sizes = sorted(len(m) for m in models)
        assert sizes == [0, 2]

    def test_visible_stable_models_hide_auxiliary(self):
        translated = translate_program(coin_program())
        grounder = SimpleGrounder(translated, Database())
        result = ChaseEngine(grounder).run()
        tails = next(o for o in result.outcomes if o.has_stable_model)
        for model in tails.visible_stable_models():
            assert all(not a.predicate.name.startswith(("active_", "result_")) for a in model)
            assert fact("coin", 1) in model

    def test_outcome_probability_product(self):
        translated = translate_program(resilience_program(0.1))
        grounder = SimpleGrounder(translated, paper_example_database())
        result = ChaseEngine(grounder).run()
        registry = translated.program.registry
        for outcome in result.outcomes:
            assert outcome.probability == pytest.approx(outcome_probability(outcome.atr_rules, registry))

    def test_full_rules_include_atr(self):
        translated = translate_program(coin_program())
        grounder = SimpleGrounder(translated, Database())
        result = ChaseEngine(grounder).run()
        outcome = result.outcomes[0]
        assert len(outcome.full_rules) == len(outcome.grounding) + len(outcome.atr_rules)
        assert len(outcome) == len(outcome.full_rules)
        assert outcome.result_atoms() <= outcome.head_atoms()


class TestOutputSpace:
    @pytest.fixture()
    def resilience_space(self, resilience_chase):
        result = resilience_chase.run()
        return OutputSpace(result.outcomes, result.error_probability)

    def test_example_310_probability(self, resilience_space):
        """Example 3.10: the network is dominated with probability 0.19."""
        assert resilience_space.probability_has_stable_model() == pytest.approx(0.19)
        assert resilience_space.probability_no_stable_model() == pytest.approx(0.81)

    def test_events_partition_mass(self, resilience_space):
        events = resilience_space.events()
        assert sum(e.probability for e in events) == pytest.approx(1.0)
        no_model_event = next(e for e in events if not e.has_stable_model)
        assert no_model_event.probability == pytest.approx(0.81)

    def test_marginals(self, resilience_space):
        # Router 2 ends up infected iff some flip targeting it succeeds.
        p_infected_2 = resilience_space.marginal(atom("infected", 2, 1), mode="brave")
        assert 0.0 < p_infected_2 < 0.19
        assert resilience_space.marginal(atom("infected", 2, 1), mode="cautious") == pytest.approx(
            p_infected_2
        )
        with pytest.raises(InferenceError):
            resilience_space.marginal(atom("infected", 2, 1), mode="wrong")

    def test_conditioning(self, resilience_space):
        conditioned = resilience_space.conditional(lambda o: o.has_stable_model)
        assert conditioned.finite_probability == pytest.approx(1.0)
        assert conditioned.probability_has_stable_model() == pytest.approx(1.0)
        with pytest.raises(InferenceError):
            resilience_space.conditional(lambda o: False)

    def test_as_good_as_is_reflexive(self, resilience_space):
        assert resilience_space.as_good_as(resilience_space)

    def test_summary_mentions_key_figures(self, resilience_space):
        text = resilience_space.summary()
        assert "0.19" in text
        assert "possible outcomes" in text

    def test_distribution_over_model_sets(self, resilience_space):
        distribution = resilience_space.distribution_over_model_sets()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert frozenset() in distribution  # the no-stable-model event
