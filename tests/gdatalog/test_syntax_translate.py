"""Unit tests for Δ-terms, GDatalog syntax, the translation Π → Σ_Π and AtR machinery."""

from __future__ import annotations

import pytest

from repro.exceptions import GroundingError, StratificationError, ValidationError
from repro.gdatalog.atr import (
    AtRSpec,
    GroundAtRRule,
    atr_function,
    is_compatible,
    is_consistent,
    outcome_to_constant,
    pending_active_atoms,
)
from repro.gdatalog.delta_terms import DeltaTerm
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule, HeadAtom, desugar_constraints
from repro.gdatalog.translate import translate_program, translate_rule
from repro.logic.atoms import Atom, Predicate, atom
from repro.logic.parser import parse_gdatalog_program
from repro.logic.terms import Constant, Variable
from repro.distributions import default_registry

X, Y = Variable("X"), Variable("Y")


class TestDeltaTerm:
    def test_construction_and_views(self):
        delta = DeltaTerm("flip", (Constant(0.1),), (X, Y))
        assert delta.parameter_dimension == 1
        assert delta.event_arity == 2
        assert delta.variables() == {X, Y}
        assert not delta.is_ground

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValidationError):
            DeltaTerm("flip", (), ())

    def test_substitute(self):
        delta = DeltaTerm("flip", (X,), (Y,))
        grounded = delta.substitute({X: Constant(0.5), Y: Constant(2)})
        assert grounded.is_ground
        assert grounded.parameter_values() == (0.5,)

    def test_parameter_values_requires_ground(self):
        with pytest.raises(ValidationError):
            DeltaTerm("flip", (X,), ()).parameter_values()

    def test_str(self):
        assert str(DeltaTerm("flip", (Constant(0.1),), (X,))) == "flip<0.1>[X]"
        assert str(DeltaTerm("flip", (Constant(0.5),), ())) == "flip<0.5>"


class TestHeadAtomAndRule:
    def test_head_atom_views(self):
        head = HeadAtom(Predicate("v", 2), (X, DeltaTerm("flip", (Constant(0.1),), (X,))))
        assert head.has_delta
        assert head.variables() == {X}
        assert len(head.delta_terms()) == 1
        with pytest.raises(ValidationError):
            head.to_atom()

    def test_plain_head_atom(self):
        head = HeadAtom.from_atom(atom("p", "X"))
        assert not head.has_delta
        assert head.to_atom() == atom("p", "X")

    def test_rule_safety_checks(self):
        delta = DeltaTerm("flip", (Constant(0.1),), (Y,))
        with pytest.raises(ValidationError):
            GDatalogRule(HeadAtom(Predicate("v", 1), (delta,)), (atom("q", "X"),), ())
        with pytest.raises(ValidationError):
            GDatalogRule(HeadAtom.from_atom(atom("p", "X")), (atom("q", "X"),), (atom("r", "Z"),))

    def test_rule_views(self):
        program = parse_gdatalog_program("v(X, flip<0.1>[X]) :- q(X), not r(X).")
        rule_ = program.rules[0]
        assert rule_.is_generative
        assert not rule_.is_constraint
        assert not rule_.is_positive
        assert {p.name for p in rule_.predicates()} == {"v", "q", "r"}
        with pytest.raises(ValidationError):
            rule_.to_rule()

    def test_constraint_constructor(self):
        constraint_rule = GDatalogRule.constraint((atom("a", "X"),), (atom("b", "X"),))
        assert constraint_rule.is_constraint
        assert constraint_rule.to_rule().is_constraint


class TestProgramValidation:
    def test_unknown_distribution(self):
        delta = DeltaTerm("mystery", (Constant(0.1),), ())
        rule_ = GDatalogRule(HeadAtom(Predicate("v", 1), (delta,)), (), ())
        with pytest.raises(ValidationError):
            GDatalogProgram([rule_])

    def test_wrong_parameter_dimension(self):
        delta = DeltaTerm("flip", (Constant(0.1), Constant(0.2)), ())
        rule_ = GDatalogRule(HeadAtom(Predicate("v", 1), (delta,)), (), ())
        with pytest.raises(ValidationError):
            GDatalogProgram([rule_])

    def test_edb_idb_partition(self):
        program = parse_gdatalog_program("v(X, flip<0.1>[X]) :- q(X).")
        assert {p.name for p in program.intensional_predicates()} == {"v"}
        assert {p.name for p in program.extensional_predicates()} == {"q"}

    def test_stratification_detection(self):
        stratified = parse_gdatalog_program(
            "a(X) :- e(X). b(X) :- e(X), not a(X)."
        )
        assert stratified.is_stratified
        unstratified = parse_gdatalog_program(
            "a(X) :- e(X), not b(X). b(X) :- e(X), not a(X)."
        )
        assert not unstratified.is_stratified
        with pytest.raises(StratificationError):
            unstratified.stratification()

    def test_desugar_constraints(self):
        program = parse_gdatalog_program("p(X) :- q(X). :- p(X), bad(X).")
        desugared = desugar_constraints(program)
        assert not any(r.is_constraint for r in desugared.rules)
        head_names = {r.head.predicate.name for r in desugared.rules}
        assert "__fail__flag" in head_names and "__fail__aux" in head_names

    def test_desugar_noop_without_constraints(self):
        program = parse_gdatalog_program("p(X) :- q(X).")
        assert len(desugar_constraints(program)) == len(program)

    def test_restricted_to_heads(self):
        program = parse_gdatalog_program("a(X) :- e(X). b(X) :- a(X).")
        restricted = program.restricted_to_heads([Predicate("a", 1)])
        assert len(restricted) == 1


class TestTranslation:
    def test_non_generative_rule_translates_to_itself(self):
        program = parse_gdatalog_program("p(X) :- q(X), not r(X).")
        translation = translate_rule(program.rules[0])
        assert len(translation.rules) == 1
        assert translation.atr_specs == ()
        assert translation.rules[0].negative_body == (atom("r", "X"),)

    def test_generative_rule_produces_activation_and_consumption(self):
        program = parse_gdatalog_program("infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).")
        translation = translate_rule(program.rules[0])
        assert len(translation.rules) == 2
        assert len(translation.atr_specs) == 1
        spec = translation.atr_specs[0]
        assert spec.active_predicate.name == "active_flip_1_2"
        assert spec.active_predicate.arity == 3
        assert spec.result_predicate.arity == 4
        activation, consumption = translation.rules
        assert activation.head.predicate == spec.active_predicate
        assert consumption.head.predicate.name == "infected"
        # The consumption rule joins the Result atom with the original body.
        assert any(a.predicate == spec.result_predicate for a in consumption.positive_body)

    def test_negative_body_copied_to_both_rules(self):
        program = parse_gdatalog_program("v(X, flip<0.5>[X]) :- q(X), not r(X).")
        translation = translate_rule(program.rules[0])
        for produced in translation.rules:
            assert produced.negative_body == (atom("r", "X"),)

    def test_multiple_delta_terms_in_one_head(self):
        program = parse_gdatalog_program("pair(X, flip<0.5>[X], flip<0.3>[X]) :- item(X).")
        translation = translate_rule(program.rules[0])
        assert len(translation.atr_specs) == 2
        assert len(translation.rules) == 3  # two activations + one consumption

    def test_translated_program_views(self):
        program = parse_gdatalog_program(
            """
            v(X, flip<0.5>[X]) :- item(X).
            w(X) :- v(X, 1).
            """
        )
        translated = translate_program(program)
        assert len(translated.existential_free_rules) == 3
        assert len(translated.atr_specs) == 1
        assert len(translated.active_predicates) == 1
        spec = translated.atr_specs[0]
        assert translated.spec_for_active(spec.active_predicate) == spec
        with pytest.raises(GroundingError):
            translated.spec_for_active(Predicate("active_unknown_1_0", 1))

    def test_rules_for_head_predicates(self):
        program = parse_gdatalog_program(
            """
            v(X, flip<0.5>[X]) :- item(X).
            w(X) :- v(X, 1).
            """
        )
        translated = translate_program(program)
        v_rules = translated.rules_for_head_predicates([Predicate("v", 2)])
        assert len(v_rules) == 2
        w_rules = translated.rules_for_head_predicates([Predicate("w", 1)])
        assert len(w_rules) == 1

    def test_reserved_prefix_rejected(self):
        program = parse_gdatalog_program("active_thing(X) :- q(X).")
        with pytest.raises(ValidationError):
            translate_program(program)

    def test_bckov_translation_omits_activation_rules(self):
        program = parse_gdatalog_program("v(X, flip<0.5>[X]) :- item(X).")
        translated = translate_program(program, bckov=True)
        assert len(translated.existential_free_rules) == 1

    def test_strip_helpers(self):
        program = parse_gdatalog_program("v(X, flip<0.5>[X]) :- item(X).")
        translated = translate_program(program)
        spec = translated.atr_specs[0]
        active = Atom(spec.active_predicate, (Constant(0.5), Constant(1)))
        result = Atom(spec.result_predicate, (Constant(0.5), Constant(1), Constant(1)))
        visible = atom("v", 1, 1)
        assert translated.strip_active([active, result, visible]) == frozenset({result, visible})
        assert translated.strip_auxiliary([active, result, visible]) == frozenset({visible})


class TestAtR:
    def setup_method(self):
        self.spec = AtRSpec("flip", 1, 1)
        self.active = Atom(self.spec.active_predicate, (Constant(0.5), Constant(7)))

    def test_spec_predicates(self):
        assert self.spec.active_predicate.arity == 2
        assert self.spec.result_predicate.arity == 3

    def test_ground_atr_rule(self):
        rule_ = GroundAtRRule.of(self.spec, self.active, 1)
        assert rule_.outcome == Constant(1)
        assert rule_.parameters() == (0.5,)
        assert rule_.probability(default_registry()) == pytest.approx(0.5)
        plain = rule_.as_rule()
        assert plain.positive_body == (self.active,)

    def test_mismatched_atoms_rejected(self):
        wrong_result = Atom(self.spec.result_predicate, (Constant(0.9), Constant(7), Constant(1)))
        with pytest.raises(ValidationError):
            GroundAtRRule(self.spec, self.active, wrong_result)

    def test_consistency(self):
        first = GroundAtRRule.of(self.spec, self.active, 1)
        second = GroundAtRRule.of(self.spec, self.active, 0)
        assert is_consistent([first])
        assert not is_consistent([first, second])
        with pytest.raises(GroundingError):
            atr_function([first, second])

    def test_atr_function_and_compatibility(self):
        rule_ = GroundAtRRule.of(self.spec, self.active, 1)
        mapping = atr_function([rule_])
        assert mapping[self.active] == rule_.result_atom
        actives = {self.spec.active_predicate}
        assert is_compatible([rule_], [self.active], actives)
        other_active = Atom(self.spec.active_predicate, (Constant(0.5), Constant(8)))
        assert not is_compatible([rule_], [self.active, other_active], actives)
        assert pending_active_atoms([rule_], [self.active, other_active], actives) == [other_active]

    def test_outcome_to_constant(self):
        assert outcome_to_constant(True) == Constant(1)
        assert outcome_to_constant(2.0) == Constant(2)
        assert outcome_to_constant(2.5) == Constant(2.5)
