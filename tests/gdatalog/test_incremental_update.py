"""Unit tests for streaming fact deltas and incremental view maintenance.

Covers the three layers under the service: the :class:`DbDelta` value type
(:mod:`repro.logic.deltas`), the DRed-style root-state delta of the simple
grounder (:meth:`SimpleGrounder.delta_root_state`), and the three
maintenance modes of :func:`repro.gdatalog.incremental.maintain_engine` —
always against the gold standard of a from-scratch engine over the
post-delta database, compared **bit-identically** (``==`` on groundings,
AtR sets and float probabilities; no tolerance).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.grounders import Grounder, SimpleGrounder
from repro.gdatalog.incremental import maintain_engine, patch_eligible
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import fact
from repro.logic.database import Database
from repro.logic.deltas import DbDelta
from repro.logic.parser import parse_database, parse_gdatalog_program
from repro.workloads import (
    telemetry_database,
    telemetry_program,
    wide_database,
    wide_program,
)

TELEMETRY = telemetry_program(sectors=2)
TELEMETRY_DB = telemetry_database(drivers=3, laps=2, sectors=2)


def _space_fingerprint(space):
    """Everything that makes two flat spaces bit-identical."""
    return (
        [(o.atr_rules, o.grounding, o.probability) for o in space.outcomes],
        space.error_probability,
    )


def _assert_bit_identical(maintained_engine, program, database):
    fresh = GDatalogEngine(program, database, chase_config=maintained_engine.chase_config)
    assert _space_fingerprint(maintained_engine.output_space()) == _space_fingerprint(
        fresh.output_space()
    )


class TestDbDelta:
    def test_of_parses_sorts_and_dedupes(self):
        delta = DbDelta.of(inserts=["b(2)", "a(1)", "b(2)"], retracts=[fact("c", 3)])
        assert [str(a) for a in delta.inserts] == ["a(1)", "b(2)"]
        assert [str(a) for a in delta.retracts] == ["c(3)"]
        assert not delta.is_empty

    def test_from_spec_accepts_aliases(self):
        spec = {"add": ["a(1)"], "remove": ["b(2)"], "retracts": ["c(3)"]}
        delta = DbDelta.from_spec(spec)
        assert [str(a) for a in delta.inserts] == ["a(1)"]
        assert {str(a) for a in delta.retracts} == {"b(2)", "c(3)"}

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValidationError, match="unknown delta spec keys"):
            DbDelta.from_spec({"insert": ["a(1)"], "isnert": ["b(2)"]})

    def test_rejects_non_ground_atoms(self):
        with pytest.raises(ValidationError, match="must be ground"):
            DbDelta.of(inserts=["p(X)"])

    def test_rejects_insert_retract_overlap(self):
        with pytest.raises(ValidationError, match="overlap"):
            DbDelta.of(inserts=["p(1)"], retracts=["p(1)"])

    def test_spec_round_trips_and_log_hash_is_canonical(self):
        delta = DbDelta.of(inserts=["b(2)", "a(1)"], retracts=["c(3)"])
        assert DbDelta.from_spec(delta.spec()) == delta
        # A textually different spec of the same change hashes identically.
        other = DbDelta.from_spec({"add": ["a(1)", "b(2)", "b(2)"], "delete": ["c(3)"]})
        assert other.log_hash() == delta.log_hash()

    def test_effective_drops_noop_sides(self):
        database = parse_database("p(1). q(2).")
        delta = DbDelta.of(inserts=["p(1)", "r(3)"], retracts=["q(2)", "s(4)"])
        effective = delta.effective(database)
        assert [str(a) for a in effective.inserts] == ["r(3)"]
        assert [str(a) for a in effective.retracts] == ["q(2)"]

    def test_apply(self):
        database = parse_database("p(1). q(2).")
        updated = DbDelta.of(inserts=["r(3)"], retracts=["q(2)"]).apply(database)
        assert updated == parse_database("p(1). r(3).")


class TestDeltaRootState:
    """``delta_root_state`` must equal a from-scratch root saturation."""

    def _roots(self, program_text, database_text, delta):
        program = parse_gdatalog_program(program_text)
        translated = translate_program(program)
        old = SimpleGrounder(translated, parse_database(database_text)).initial_state()
        new_database = delta.apply(parse_database(database_text))
        fresh = SimpleGrounder(translated, new_database).initial_state()
        derived = SimpleGrounder(translated, new_database).delta_root_state(
            old, delta.inserts, delta.retracts
        )
        return derived, fresh

    def test_insert_matches_fresh_root(self):
        derived, fresh = self._roots(
            "p(X) :- e(X).\nq(X) :- p(X), r(X).", "e(1). r(1).", DbDelta.of(inserts=["e(2)"])
        )
        assert derived.grounding() == fresh.grounding()
        assert set(derived.rules) == set(fresh.rules)

    def test_retract_matches_fresh_root(self):
        derived, fresh = self._roots(
            "p(X) :- e(X).\nq(X) :- p(X), r(X).",
            "e(1). e(2). r(1).",
            DbDelta.of(retracts=["r(1)"]),
        )
        assert derived.grounding() == fresh.grounding()

    def test_cyclic_self_support_dies_on_retract(self):
        # p and q support each other; only e keeps the cycle alive.  A
        # support-counting deleter would leave the cycle standing.
        derived, fresh = self._roots(
            "p(X) :- q(X).\nq(X) :- p(X).\np(X) :- e(X).",
            "e(1). e(2).",
            DbDelta.of(retracts=["e(1)"]),
        )
        assert derived.grounding() == fresh.grounding()
        heads = {str(a) for a in derived.heads()} if callable(
            getattr(derived, "heads", None)
        ) else {str(r.head) for r in derived.rules}
        assert "p(1)" not in heads and "q(1)" not in heads
        assert "p(2)" in heads

    def test_mixed_insert_and_retract(self):
        derived, fresh = self._roots(
            "p(X) :- e(X), not r(X).",
            "e(1). e(2). r(2).",
            DbDelta.of(inserts=["e(3)"], retracts=["e(1)"]),
        )
        assert derived.grounding() == fresh.grounding()

    def test_constraints_follow_the_delta(self):
        derived, fresh = self._roots(
            "p(X) :- e(X).\n:- p(X), bad(X).",
            "e(1). bad(1).",
            DbDelta.of(retracts=["bad(1)"], inserts=["e(2)", "bad(2)"]),
        )
        assert derived.grounding() == fresh.grounding()


class TestPatchEligibility:
    def test_disjoint_cones_are_eligible(self):
        delta = DbDelta.of(inserts=["lap(1, 3)"])
        assert patch_eligible(TELEMETRY, delta.predicates())

    def test_choice_cone_delta_is_not_eligible(self):
        # driver feeds the flip: the affected cone meets the choice cone.
        delta = DbDelta.of(inserts=["driver(9)"])
        assert not patch_eligible(TELEMETRY, delta.predicates())

    def test_choice_free_program_is_always_eligible(self):
        program = parse_gdatalog_program("p(X) :- e(X).")
        assert patch_eligible(program, DbDelta.of(inserts=["e(1)"]).predicates())

    def test_constraint_joining_both_cones_blocks_patching(self):
        program = parse_gdatalog_program(
            "coin(X, flip<0.5>[X]) :- src(X).\n"
            "hit(X) :- coin(X, 1).\n"
            "seen(X) :- obs(X).\n"
            ":- hit(X), seen(X)."
        )
        assert not patch_eligible(program, DbDelta.of(inserts=["obs(1)"]).predicates())


class TestMaintainEngine:
    def test_patch_insert_is_bit_identical(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB)
        engine.output_space()
        delta = DbDelta.of(inserts=["lap(1, 3)", "gate1(3)", "gate2(3)"])
        updated = engine.updated(delta)
        assert updated.last_update_report.mode == "patch"
        assert updated.last_update_report.reused_subtrees == len(engine.output_space())
        _assert_bit_identical(updated, TELEMETRY, delta.apply(TELEMETRY_DB))

    def test_patch_retract_is_bit_identical(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB)
        engine.output_space()
        delta = DbDelta.of(retracts=["gate2(2)"])
        updated = engine.updated(delta)
        assert updated.last_update_report.mode == "patch"
        _assert_bit_identical(updated, TELEMETRY, delta.apply(TELEMETRY_DB))
        assert updated.marginal("completed(1, 2)") == 0.0

    def test_choice_cone_delta_rebuilds_and_stays_identical(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB)
        engine.output_space()
        delta = DbDelta.of(inserts=["driver(4)"])
        updated = engine.updated(delta)
        assert updated.last_update_report.mode == "rebuild"
        assert updated.last_update_report.reused_subtrees == 0
        _assert_bit_identical(updated, TELEMETRY, delta.apply(TELEMETRY_DB))

    def test_noop_delta_returns_the_same_engine(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB)
        same, space, report = maintain_engine(engine, DbDelta.of(inserts=["driver(1)"]))
        assert same is engine and report.mode == "noop"

    def test_component_mode_reuses_untouched_columns(self):
        columns = 4
        program = wide_program(columns, depth=1)
        database = wide_database(columns)
        config = ChaseConfig(factorize=True)
        engine = GDatalogEngine(program, database, chase_config=config)
        old_space = engine.output_space()
        delta = DbDelta.of(inserts=["src2(2)"])
        new_engine, new_space, report = maintain_engine(engine, delta, old_space)
        assert report.mode == "component"
        # The flips are keyed per (column, row), so the new row is its own
        # component: every previously-chased component is kept verbatim.
        assert report.invalidated_subtrees == 1
        assert report.reused_subtrees == columns
        fresh = GDatalogEngine(program, delta.apply(database), chase_config=config)
        queries = [f"hit{c}_1(1)" for c in range(1, columns + 1)]
        assert [new_engine.marginal(q) for q in queries] == [
            fresh.marginal(q) for q in queries
        ]

    def test_component_retract_is_exact(self):
        program = wide_program(3, depth=1)
        database = wide_database(3, rows=2)
        config = ChaseConfig(factorize=True)
        engine = GDatalogEngine(program, database, chase_config=config)
        delta = DbDelta.of(retracts=["src3(2)"])
        new_engine, _, report = maintain_engine(engine, delta, engine.output_space())
        assert report.mode == "component"
        fresh = GDatalogEngine(program, delta.apply(database), chase_config=config)
        assert new_engine.marginal("hit3_1(2)") == fresh.marginal("hit3_1(2)") == 0.0
        assert new_engine.marginal("hit3_1(1)") == fresh.marginal("hit3_1(1)") == 0.5

    def test_sliced_engines_are_rejected(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB).sliced(["strong(1)"])
        with pytest.raises(ValidationError, match="query-sliced"):
            maintain_engine(engine, DbDelta.of(inserts=["lap(1, 3)"]))

    def test_custom_grounder_instances_are_rejected(self):
        class _WrapperGrounder(Grounder):
            def __init__(self, translated, database):
                super().__init__(translated, database)
                self._inner = SimpleGrounder(translated, database)

            def ground(self, *args, **kwargs):
                return self._inner.ground(*args, **kwargs)

        program = parse_gdatalog_program("p(X) :- e(X).")
        database = parse_database("e(1).")
        translated = translate_program(program)
        engine = GDatalogEngine(
            program, database, grounder=_WrapperGrounder(translated, database)
        )
        with pytest.raises(ValidationError, match="custom grounder"):
            maintain_engine(engine, DbDelta.of(inserts=["e(2)"]))

    def test_updated_chain_applies_many_deltas(self):
        engine = GDatalogEngine(TELEMETRY, TELEMETRY_DB)
        engine.output_space()
        database = TELEMETRY_DB
        for delta in (
            DbDelta.of(inserts=["lap(2, 3)", "gate1(3)"]),
            DbDelta.of(inserts=["gate2(3)"]),
            DbDelta.of(retracts=["lap(2, 3)"]),
        ):
            engine = engine.updated(delta)
            database = delta.apply(database)
            assert engine.last_update_report.mode == "patch"
            _assert_bit_identical(engine, TELEMETRY, database)
