"""Edge-case tests for chase limits, output spaces and sampler reporting."""

from __future__ import annotations

import pytest

from repro.exceptions import ChaseLimitError
from repro.gdatalog.chase import ChaseConfig, ChaseEngine
from repro.gdatalog.grounders import SimpleGrounder, heads_of
from repro.gdatalog.probability_space import OutputSpace
from repro.gdatalog.sampler import Estimate
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import fact
from repro.logic.database import Database
from repro.logic.parser import parse_gdatalog_program
from repro.logic.rules import constraint, fact_rule
from repro.workloads import paper_example_database, resilience_program


class TestChaseLimits:
    def _grounder(self):
        translated = translate_program(resilience_program(0.5))
        return SimpleGrounder(translated, paper_example_database())

    def test_max_outcomes_truncation(self):
        config = ChaseConfig(max_outcomes=3)
        result = ChaseEngine(self._grounder(), config).run()
        assert len(result.outcomes) == 3
        assert result.truncated_paths > 0
        assert result.error_probability > 0.0
        assert result.finite_probability + result.error_probability == pytest.approx(1.0)

    def test_max_outcomes_strict_raises(self):
        config = ChaseConfig(max_outcomes=3, strict=True)
        with pytest.raises(ChaseLimitError):
            ChaseEngine(self._grounder(), config).run()

    def test_max_support_caps_branching(self):
        program = parse_gdatalog_program("count(X, poisson<3.0>[X]) :- item(X).")
        translated = translate_program(program)
        grounder = SimpleGrounder(translated, Database([fact("item", 1)]))
        config = ChaseConfig(mass_tolerance=0.0, max_support=4)
        result = ChaseEngine(grounder, config).run()
        assert len(result.outcomes) == 4
        assert result.error_probability > 0.0

    def test_deterministic_program_single_empty_outcome(self):
        program = parse_gdatalog_program("p(X) :- q(X).")
        translated = translate_program(program)
        grounder = SimpleGrounder(translated, Database([fact("q", 1)]))
        result = ChaseEngine(grounder).run()
        assert len(result.outcomes) == 1
        only = result.outcomes[0]
        assert only.probability == pytest.approx(1.0)
        assert only.atr_rules == frozenset()
        assert fact("p", 1) in heads_of(only.grounding)


class TestOutputSpaceEdgeCases:
    def test_empty_space(self):
        space = OutputSpace([], error_probability=1.0)
        assert len(space) == 0
        assert space.finite_probability == 0.0
        assert space.total_probability() == pytest.approx(1.0)
        assert space.events() == []
        assert space.probability_has_stable_model() == 0.0

    def test_visible_only_flag_changes_event_grouping(self, resilience_engine):
        outcomes = resilience_engine.possible_outcomes()
        visible_space = OutputSpace(outcomes, visible_only=True)
        raw_space = OutputSpace(outcomes, visible_only=False)
        # Grouping by raw stable models (which include Result atoms) is at
        # least as fine as grouping by visible stable models.
        assert len(raw_space.events()) >= len(visible_space.events())
        assert raw_space.finite_probability == pytest.approx(visible_space.finite_probability)

    def test_conditional_preserves_translated_reference(self, resilience_engine):
        space = resilience_engine.output_space()
        posterior = space.conditional(lambda o: o.has_stable_model)
        for outcome in posterior:
            assert outcome.translated is resilience_engine.translated


class TestEstimateAndStats:
    def test_estimate_rendering_and_interval(self):
        estimate = Estimate(0.25, 0.01, 400)
        rendered = str(estimate)
        assert "0.25" in rendered and "n=400" in rendered
        low, high = estimate.confidence_interval(z=2.0)
        assert low == pytest.approx(0.23)
        assert high == pytest.approx(0.27)

    def test_constraint_only_outcomes(self):
        """A program whose only generative choice feeds a constraint."""
        source = """
        coin(flip<0.5>).
        :- coin(1).
        """
        from repro.gdatalog.engine import GDatalogEngine

        engine = GDatalogEngine.from_source(source)
        space = engine.output_space()
        assert len(space) == 2
        assert space.probability_has_stable_model() == pytest.approx(0.5)
        assert space.probability_no_stable_model() == pytest.approx(0.5)


class TestGrounderHelpers:
    def test_heads_of_skips_constraints(self):
        rules = [fact_rule(fact("a", 1)), constraint([fact("a", 1)])]
        assert heads_of(rules) == frozenset({fact("a", 1)})
