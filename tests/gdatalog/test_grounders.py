"""Unit tests for the simple and perfect grounders (Definitions 3.4 and 5.1)."""

from __future__ import annotations

import pytest

from repro.exceptions import GroundingError, StratificationError
from repro.gdatalog.atr import GroundAtRRule
from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder, heads_of, make_grounder
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import Atom, atom, fact
from repro.logic.database import Database
from repro.logic.parser import parse_gdatalog_program
from repro.logic.terms import Constant
from repro.workloads import (
    dime_quarter_database,
    dime_quarter_program,
    paper_example_database,
    resilience_program,
)


@pytest.fixture()
def resilience_setup():
    program = resilience_program(0.1)
    database = paper_example_database()
    translated = translate_program(program)
    return translated, database


@pytest.fixture()
def dime_quarter_setup():
    program = dime_quarter_program()
    database = dime_quarter_database(dimes=2, quarters=1)
    translated = translate_program(program)
    return translated, database


class TestSimpleGrounder:
    def test_empty_atr_set_grounds_initial_activations(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        grounding = grounder.ground(frozenset())
        heads = heads_of(grounding)
        spec = translated.atr_specs[0]
        # Router 1 is infected and connected to routers 2 and 3: two activations.
        active_12 = Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(2)))
        active_13 = Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(3)))
        assert active_12 in heads and active_13 in heads
        # Example 3.6: the uninfected rules for all three routers are present.
        assert fact("uninfected", 2) in heads or any(
            r.head == fact("uninfected", 2) for r in grounding
        )

    def test_triggers_reported(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        grounding = grounder.ground(frozenset())
        triggers = grounder.pending_triggers(frozenset(), grounding)
        assert len(triggers) == 2
        assert not grounder.is_terminal(frozenset(), grounding)

    def test_extension_with_atr_rules_adds_consumption(self, resilience_setup):
        """Mirrors Example 3.6: both flips fail, routers 2 and 3 stay uninfected."""
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        spec = translated.atr_specs[0]
        atr = frozenset(
            GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(i))), 0)
            for i in (2, 3)
        )
        grounding = grounder.ground(atr)
        heads = heads_of(grounding)
        assert fact("infected", 2, 0) in heads
        assert fact("infected", 3, 0) in heads
        assert grounder.is_terminal(atr, grounding)

    def test_monotonicity(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        spec = translated.atr_specs[0]
        small = frozenset(
            [GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(2))), 0)]
        )
        large = small | {
            GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(3))), 1)
        }
        assert grounder.ground(small) <= grounder.ground(large)

    def test_seeding_does_not_change_result(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        spec = translated.atr_specs[0]
        base = grounder.ground(frozenset())
        atr = frozenset(
            [GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(2))), 1)]
        )
        assert grounder.ground(atr) == grounder.ground(atr, seed=base)

    def test_inconsistent_atr_set_rejected(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        spec = translated.atr_specs[0]
        active = Atom(spec.active_predicate, (Constant(0.1), Constant(1), Constant(2)))
        inconsistent = frozenset(
            [GroundAtRRule.of(spec, active, 0), GroundAtRRule.of(spec, active, 1)]
        )
        with pytest.raises(GroundingError):
            grounder.ground(inconsistent)

    def test_constraints_are_instantiated(self, resilience_setup):
        translated, database = resilience_setup
        grounder = SimpleGrounder(translated, database)
        grounding = grounder.ground(frozenset())
        constraint_instances = [r for r in grounding if r.is_constraint]
        assert constraint_instances  # uninfected pairs among routers 1..3
        assert all(r.is_ground for r in constraint_instances)


class TestPerfectGrounder:
    def test_requires_stratified_program(self):
        unstratified = parse_gdatalog_program(
            "a(X) :- e(X), not b(X). b(X) :- e(X), not a(X)."
        )
        with pytest.raises(StratificationError):
            PerfectGrounder(translate_program(unstratified), Database([fact("e", 1)]))

    def test_initial_grounding_stops_at_uncovered_stratum(self, dime_quarter_setup):
        translated, database = dime_quarter_setup
        grounder = PerfectGrounder(translated, database)
        grounding = grounder.ground(frozenset())
        heads = heads_of(grounding)
        spec = translated.atr_specs[0]
        # Dime activations present, quarter activation absent (its stratum is
        # blocked by the uncovered dime Active atoms).
        assert Atom(spec.active_predicate, (Constant(0.5), Constant(1))) in heads
        assert Atom(spec.active_predicate, (Constant(0.5), Constant(2))) in heads
        assert Atom(spec.active_predicate, (Constant(0.5), Constant(3))) not in heads

    def test_appendix_example_some_dime_tail(self, dime_quarter_setup):
        """First worked example of Appendix E: dime 1 tails, dime 2 heads."""
        translated, database = dime_quarter_setup
        grounder = PerfectGrounder(translated, database)
        spec = translated.atr_specs[0]
        atr = frozenset(
            [
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(1))), 1),
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(2))), 0),
            ]
        )
        grounding = grounder.ground(atr)
        heads = heads_of(grounding)
        assert fact("dimetail", 1, 1) in heads
        assert fact("somedimetail") in heads
        # The quarter is never activated: SomeDimeTail blocks the rule.
        assert Atom(spec.active_predicate, (Constant(0.5), Constant(3))) not in heads
        assert grounder.is_terminal(atr, grounding)

    def test_appendix_example_no_dime_tail(self, dime_quarter_setup):
        """Second worked example of Appendix E: both dimes show heads."""
        translated, database = dime_quarter_setup
        grounder = PerfectGrounder(translated, database)
        spec = translated.atr_specs[0]
        atr = frozenset(
            [
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(1))), 0),
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(2))), 0),
            ]
        )
        grounding = grounder.ground(atr)
        heads = heads_of(grounding)
        assert fact("somedimetail") not in heads
        # Now the quarter activation appears, so this AtR set is not terminal.
        assert Atom(spec.active_predicate, (Constant(0.5), Constant(3))) in heads
        assert not grounder.is_terminal(atr, grounding)

    def test_perfect_prunes_superfluous_rules_compared_to_simple(self, dime_quarter_setup):
        translated, database = dime_quarter_setup
        simple = SimpleGrounder(translated, database)
        perfect = PerfectGrounder(translated, database)
        spec = translated.atr_specs[0]
        atr = frozenset(
            [
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(1))), 1),
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(2))), 0),
            ]
        )
        simple_grounding = simple.ground(atr)
        perfect_grounding = perfect.ground(atr)
        assert perfect_grounding < simple_grounding
        # The simple grounder keeps the (superfluous) quarter activation.
        quarter_active = Atom(spec.active_predicate, (Constant(0.5), Constant(3)))
        assert quarter_active in heads_of(simple_grounding)
        assert quarter_active not in heads_of(perfect_grounding)

    def test_stable_models_agree_between_grounders_on_terminals(self, dime_quarter_setup):
        from repro.stable.solver import StableModelSolver

        translated, database = dime_quarter_setup
        simple = SimpleGrounder(translated, database)
        perfect = PerfectGrounder(translated, database)
        spec = translated.atr_specs[0]
        # Terminal for the perfect grounder (dime 1 shows tail).
        atr = frozenset(
            [
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(1))), 1),
                GroundAtRRule.of(spec, Atom(spec.active_predicate, (Constant(0.5), Constant(2))), 1),
            ]
        )
        solver = StableModelSolver()

        def models(grounder):
            rules = tuple(grounder.ground(atr)) + tuple(r.as_rule() for r in atr)
            projected = set()
            for model in solver.enumerate(rules):
                projected.add(
                    frozenset(a for a in model if not a.predicate.name.startswith(("active_", "result_")))
                )
            return projected

        assert models(simple) == models(perfect)


class TestMakeGrounder:
    def test_resolve_by_name(self, dime_quarter_setup):
        translated, database = dime_quarter_setup
        assert isinstance(make_grounder("simple", translated, database), SimpleGrounder)
        assert isinstance(make_grounder("perfect", translated, database), PerfectGrounder)

    def test_pass_through_instance(self, dime_quarter_setup):
        translated, database = dime_quarter_setup
        instance = SimpleGrounder(translated, database)
        assert make_grounder(instance, translated, database) is instance

    def test_unknown_name(self, dime_quarter_setup):
        translated, database = dime_quarter_setup
        with pytest.raises(GroundingError):
            make_grounder("clever", translated, database)
