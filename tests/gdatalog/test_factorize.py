"""Unit tests for the independent-component decomposition and the product space."""

from __future__ import annotations

import pytest

from repro.exceptions import InferenceError
from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.dependency import ground_atom_components
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.factorize import ProductSpace, decompose, factorized_space
from repro.gdatalog.probability_space import OutputSpace
from repro.logic.atoms import fact
from repro.logic.parser import parse_atom, parse_datalog_program
from repro.workloads import (
    coin_program,
    dime_quarter_database,
    dime_quarter_program,
    independent_coins_database,
    independent_coins_program,
)

CONFIG = ChaseConfig()


def _rule(text: str):
    return parse_datalog_program(text).rules[0]


def coins_engine(n: int, factorize: bool = True, **config_overrides) -> GDatalogEngine:
    config = ChaseConfig(factorize=factorize, **config_overrides)
    return GDatalogEngine(
        independent_coins_program(), independent_coins_database(n), chase_config=config
    )


class TestGroundAtomComponents:
    def test_rule_cooccurrence_connects_atoms(self):
        rules = [_rule("b(1) :- a(1)."), _rule("c(2) :- b(2).")]
        components = ground_atom_components(rules)
        assert len(components) == 2
        assert frozenset({parse_atom("a(1)"), parse_atom("b(1)")}) in components

    def test_constraint_bottom_head_does_not_glue_components(self):
        # Both constraints share the ⊥ head; their bodies must stay separate.
        rules = [_rule(":- a(1)."), _rule(":- b(2).")]
        components = ground_atom_components(rules)
        assert len(components) == 2

    def test_links_and_extra_atoms(self):
        components = ground_atom_components(
            [],
            links=[(parse_atom("a(1)"), parse_atom("b(1)"))],
            extra_atoms=[fact("orphan", 7)],
        )
        assert len(components) == 2
        assert frozenset({fact("orphan", 7)}) in components


class TestDecompose:
    def test_independent_coins_split_per_coin(self):
        engine = coins_engine(5)
        decomposition = decompose(engine.translated, engine.database, CONFIG)
        assert decomposition is not None
        assert decomposition.generative_count == 5
        for component in decomposition.components:
            assert len(component.facts) == 1

    def test_connected_program_returns_none(self):
        # somedimetail couples every dime with every quarter: one component.
        engine = GDatalogEngine(dime_quarter_program(), dime_quarter_database(2, 1))
        assert decompose(engine.translated, engine.database, CONFIG) is None

    def test_empty_body_rules_fall_back(self):
        # Π_coin's flip has an empty body: its head would re-fire in every
        # component's sub-chase, so factorization must decline.
        engine = GDatalogEngine(coin_program())
        assert decompose(engine.translated, engine.database, CONFIG) is None

    def test_unmatched_facts_collect_into_one_deterministic_base(self):
        program = independent_coins_program()
        database = independent_coins_database(2).with_facts([fact("spare", 1), fact("spare", 2)])
        engine = GDatalogEngine(program, database)
        decomposition = decompose(engine.translated, engine.database, CONFIG)
        assert decomposition is not None
        assert decomposition.generative_count == 2
        base = [c for c in decomposition.components if not c.generative]
        assert len(base) == 1 and len(base[0].facts) == 2


class TestProductSpace:
    def test_lazy_iteration_matches_materialized_space(self):
        engine = coins_engine(3)
        space = engine.output_space()
        assert isinstance(space, ProductSpace)
        flat = space.materialize()
        assert isinstance(flat, OutputSpace)
        assert len(flat) == len(space) == 8
        assert flat.finite_probability == pytest.approx(1.0)

    def test_marginal_routes_to_one_component(self):
        space = coins_engine(6).output_space()
        assert space.marginal(parse_atom("heads(3)")) == 0.5
        assert space.marginal(parse_atom("lucky(3)"), mode="cautious") == 0.5
        assert space.marginal(parse_atom("heads(99)")) == 0.0  # derivable nowhere

    def test_marginal_rejects_bad_mode(self):
        with pytest.raises(InferenceError):
            coins_engine(2).output_space().marginal(parse_atom("heads(1)"), mode="maybe")

    def test_events_combine_component_events(self):
        engine = coins_engine(2)
        product = engine.output_space()
        sequential = coins_engine(2, factorize=False).output_space()
        mine = product.distribution_over_model_sets()
        theirs = sequential.distribution_over_model_sets()
        assert set(mine) == set(theirs)
        for model_set, mass in theirs.items():
            assert mine[model_set] == pytest.approx(mass, abs=1e-12)

    def test_merge_concatenates_disjoint_components(self):
        space = coins_engine(4).output_space()
        left = ProductSpace(space.components[:2], space.translated)
        right = ProductSpace(space.components[2:], space.translated)
        merged = ProductSpace.merge([left, right])
        assert len(merged.components) == 4
        assert merged.probability_has_stable_model() == space.probability_has_stable_model()
        assert merged.marginal(parse_atom("heads(4)")) == space.marginal(parse_atom("heads(4)"))

    def test_conditional_on_generic_predicate_materializes(self):
        space = coins_engine(3).output_space()
        heads_1 = parse_atom("heads(1)")
        posterior = space.conditional(
            lambda o: any(heads_1 in model for model in o.stable_models)
        )
        assert isinstance(posterior, OutputSpace)
        assert posterior.finite_probability == pytest.approx(1.0)
        assert posterior.marginal(heads_1) == pytest.approx(1.0)

    def test_factorized_space_falls_back_to_none_when_connected(self):
        engine = GDatalogEngine(dime_quarter_program(), dime_quarter_database(2, 1))
        assert factorized_space(engine.grounder, CONFIG) is None
        # And the engine transparently serves the flat space instead.
        engine = GDatalogEngine(
            dime_quarter_program(),
            dime_quarter_database(2, 1),
            chase_config=ChaseConfig(factorize=True),
        )
        assert isinstance(engine.output_space(), OutputSpace)

    def test_error_probability_is_zero_without_truncation(self):
        space = coins_engine(4).output_space()
        assert space.error_probability == 0.0
        assert space.total_probability() == pytest.approx(1.0)

    def test_profile_summary_never_runs_the_flat_chase(self):
        engine = coins_engine(12)
        summary = engine.profile_summary()
        assert "factorized" in summary
        assert "independent components:   12" in summary
        # The flat 2^12-outcome chase must not have been triggered.
        assert "chase_result" not in engine.__dict__

    def test_possible_outcomes_enumerates_the_product(self):
        engine = coins_engine(3)
        outcomes = engine.possible_outcomes()
        assert len(outcomes) == 8
        assert "chase_result" not in engine.__dict__
