"""Unit tests for query-relevant slicing (:mod:`repro.gdatalog.relevance`)."""

from __future__ import annotations

import pytest

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.relevance import (
    atoms_for_queries,
    compute_slice,
    forward_reachable,
    permanent_seeds,
    relevant_predicates,
)
from repro.logic.atoms import Predicate
from repro.logic.parser import parse_database, parse_gdatalog_program
from repro.ppdl.queries import AtomQuery, EventQuery, HasStableModelQuery
from repro.workloads import coin_program

TWO_COLUMNS = """
coin_a(X, flip<0.5>[a, X]) :- src_a(X).
hit_a(X) :- coin_a(X, 1).
coin_b(X, flip<0.5>[b, X]) :- src_b(X).
hit_b(X) :- coin_b(X, 1).
miss_b(X) :- src_b(X), not hit_b(X).
"""

TWO_COLUMNS_DB = "src_a(1). src_a(2). src_b(1). src_b(2)."


def _parsed():
    return parse_gdatalog_program(TWO_COLUMNS), parse_database(TWO_COLUMNS_DB)


class TestBackwardReachability:
    def test_closure_follows_positive_and_negative_bodies(self):
        program, _ = _parsed()
        closure = relevant_predicates(program, [Predicate("miss_b", 1)])
        names = {p.name for p in closure}
        # miss_b negates hit_b, which needs coin_b, which needs src_b.
        assert names == {"miss_b", "src_b", "hit_b", "coin_b"}

    def test_unrelated_column_is_not_reached(self):
        program, _ = _parsed()
        closure = relevant_predicates(program, [Predicate("hit_a", 1)])
        assert {p.name for p in closure} == {"hit_a", "coin_a", "src_a"}


class TestSliceConstruction:
    def test_slice_drops_the_other_column(self):
        program, database = _parsed()
        slice_ = compute_slice(program, database, ["hit_a(1)"])
        assert not slice_.is_full and not slice_.is_empty
        assert len(slice_.program) == 2
        assert len(slice_.database) == 2
        assert slice_.dropped_rules == 3 and slice_.dropped_facts == 2

    def test_unreachable_query_yields_the_empty_slice(self):
        program, database = _parsed()
        slice_ = compute_slice(program, database, ["nosuch(1)"])
        assert slice_.is_empty
        assert len(slice_.program) == 0 and len(slice_.database) == 0

    def test_constraints_are_permanent_seeds(self):
        program = parse_gdatalog_program(TWO_COLUMNS + "\n:- miss_b(X), hit_a(X).\n")
        _, database = _parsed()
        slice_ = compute_slice(program, database, ["hit_a(1)"])
        # The constraint couples both columns: nothing can be cut.
        assert slice_.is_full

    def test_negative_cycles_are_permanent_seeds(self):
        # The coin program's aux1/aux2 even loop and its constraint keep
        # everything relevant no matter the query.
        program = coin_program()
        seeds = {p.name for p in permanent_seeds(program)}
        assert {"aux1", "aux2", "coin"} <= seeds
        slice_ = compute_slice(program, parse_database(""), ["unrelated(1)"])
        assert slice_.dropped_rules == 0

    def test_inexact_choice_is_kept_but_its_consumers_can_drop(self):
        source = """
        coin_a(X, flip<0.5>[a, X]) :- src_a(X).
        hit_a(X) :- coin_a(X, 1).
        coin_b(X, flip<0.3>[b, X]) :- src_b(X).
        hit_b(X) :- coin_b(X, 1).
        """
        program = parse_gdatalog_program(source)
        database = parse_database(TWO_COLUMNS_DB)
        slice_ = compute_slice(program, database, ["hit_a(1)"])
        kept = {str(r.head.predicate.name) for r in slice_.program.rules}
        # flip<0.3> branch masses are not dyadic: dropping the choice would
        # not contribute a factor of exactly 1, so it stays chased...
        assert "coin_b" in kept
        # ...but its deterministic consumer is still cut.
        assert "hit_b" not in kept

    def test_empty_seed_batch_slices_to_the_model_killing_core(self):
        program, database = _parsed()
        slice_ = compute_slice(program, database, [])
        # No constraints, no negative cycles, dyadic flips: nothing can
        # kill a stable model, so the core is empty.
        assert slice_.is_empty


class TestQueryBatchSeeds:
    def test_atom_and_stable_model_queries_are_sliceable(self):
        atoms = atoms_for_queries([AtomQuery.of("hit_a(1)"), HasStableModelQuery()])
        assert atoms is not None and [str(a) for a in atoms] == ["hit_a(1)"]

    def test_generic_queries_force_the_full_fallback(self):
        assert atoms_for_queries([EventQuery(lambda o: True)]) is None


class TestEngineWiring:
    @pytest.fixture()
    def engine(self):
        program, database = _parsed()
        return GDatalogEngine(program, database)

    def test_sliced_engine_answers_bit_identically(self, engine):
        sliced = engine.sliced(["hit_a(1)"])
        assert sliced is not engine
        assert sliced.marginal("hit_a(1)") == engine.marginal("hit_a(1)")
        assert engine.marginal("hit_a(1)", slice=True) == engine.marginal("hit_a(1)")
        assert engine.probability_has_stable_model(slice=True) == (
            engine.probability_has_stable_model()
        )

    def test_sliced_outcome_count_shrinks(self, engine):
        assert len(engine.output_space()) == 16
        assert len(engine.sliced(["hit_a(1)"]).output_space()) == 4

    def test_full_slice_returns_self(self, engine):
        # Querying both columns makes every rule and fact relevant, so the
        # engine (and its cached chase) is reused as-is...
        assert engine.sliced(["hit_a(1)", "miss_b(1)"]) is engine
        # ...and a generic query always falls back to self too.
        assert engine.sliced([EventQuery(lambda o: True)]) is engine

    def test_chase_config_entry_point(self):
        program, database = _parsed()
        engine = GDatalogEngine(
            program, database, chase_config=ChaseConfig(slice_for_query=("hit_b(2)",))
        )
        assert engine.query_slice is not None and not engine.query_slice.is_full
        reference = GDatalogEngine(program, database)
        assert engine.marginal("hit_b(2)") == reference.marginal("hit_b(2)")

    def test_evaluate_queries_union_slice(self, engine):
        queries = ["hit_a(1)", "hit_a(2)", {"type": "has_stable_model"}]
        assert engine.evaluate_queries(queries, slice=True) == engine.evaluate_queries(queries)

    def test_sliced_sampler_estimates(self, engine):
        sliced = engine.estimate_marginal("hit_a(1)", n=400, seed=3, slice=True)
        assert sliced.samples == 400
        assert abs(sliced.value - 0.5) < 0.15
        estimate = engine.estimate_has_stable_model(n=50, seed=3, slice=True)
        assert estimate.value == 1.0

    def test_sliced_engine_keeps_the_grounder_family(self):
        program, database = _parsed()
        engine = GDatalogEngine(program, database, grounder="perfect")
        sliced = engine.sliced(["hit_a(1)"])
        assert type(sliced.grounder).__name__ == "PerfectGrounder"

    def test_sliced_engines_are_memoized_per_relevant_predicate_set(self, engine):
        first = engine.sliced(["hit_a(1)"])
        # A different atom with the same backward cone reuses the engine
        # (and its cached chase) instead of re-slicing and re-chasing.
        assert engine.sliced(["hit_a(2)"]) is first
        assert engine.sliced(["hit_b(1)"]) is not first

    def test_custom_grounder_family_falls_back_to_self(self):
        from repro.gdatalog.grounders import SimpleGrounder, grounder_name
        from repro.gdatalog.translate import translate_program
        from repro.exceptions import GroundingError

        program, database = _parsed()

        class InstrumentedGrounder(SimpleGrounder):
            pass

        # A SimpleGrounder subclass still resolves to its family...
        sliced = GDatalogEngine(
            program, database, grounder=InstrumentedGrounder(translate_program(program), database)
        ).sliced(["hit_a(1)"])
        assert not sliced.query_slice.is_full

        # ...but a grounder outside both families cannot be rebuilt over the
        # sliced program: grounder_name refuses, and the engine returns self
        # instead of silently switching implementations.
        class AlienGrounder(SimpleGrounder.__mro__[1]):  # the abstract Grounder
            def ground(self, atr_rules, seed=None):  # pragma: no cover - never chased
                return frozenset()

        alien = AlienGrounder(translate_program(program), database)
        with pytest.raises(GroundingError):
            grounder_name(alien)
        engine = GDatalogEngine(program, database, grounder=alien)
        assert engine.sliced(["hit_a(1)"]) is engine


class TestForwardReachability:
    """The affected-cone dual of backward relevance (streaming updates)."""

    def test_closure_follows_bodies_to_heads(self):
        program, _ = _parsed()
        cone = forward_reachable(program, [Predicate("src_b", 1)])
        # src_b feeds the coin, the coin feeds hit_b, and miss_b negates
        # hit_b — negation counts forward exactly as it counts backward.
        assert {p.name for p in cone} == {"src_b", "coin_b", "hit_b", "miss_b"}

    def test_negative_bodies_count(self):
        program, _ = _parsed()
        cone = forward_reachable(program, [Predicate("hit_b", 1)])
        assert {p.name for p in cone} == {"hit_b", "miss_b"}

    def test_unrelated_column_is_not_reached(self):
        program, _ = _parsed()
        cone = forward_reachable(program, [Predicate("src_a", 1)])
        assert {p.name for p in cone} == {"src_a", "coin_a", "hit_a"}

    def test_seeds_are_included_even_when_underivable(self):
        program, _ = _parsed()
        assert forward_reachable(program, [Predicate("nowhere", 1)]) == frozenset(
            [Predicate("nowhere", 1)]
        )

    def test_constraints_contribute_no_edges(self):
        program = parse_gdatalog_program(
            "p(X) :- e(X).\n:- p(X), q(X)."
        )
        cone = forward_reachable(program, [Predicate("e", 1)])
        assert {p.name for p in cone} == {"e", "p"}

    def test_cycles_terminate(self):
        program = parse_gdatalog_program("p(X) :- q(X).\nq(X) :- p(X).\np(X) :- e(X).")
        cone = forward_reachable(program, [Predicate("e", 1)])
        assert {p.name for p in cone} == {"e", "p", "q"}
