"""Unit tests for the high-level engine, the Monte-Carlo sampler and dependency exports."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.dependency import format_dependency_graph, format_stratification, to_dot, to_networkx
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder
from repro.gdatalog.sampler import MonteCarloSampler
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.workloads import (
    DIME_QUARTER_PROGRAM_SOURCE,
    dime_quarter_database,
    dime_quarter_program,
    paper_example_database,
    resilience_program,
)
from tests.conftest import RESILIENCE_DATABASE, RESILIENCE_SOURCE


class TestEngineConstruction:
    def test_from_source_and_objects_agree(self, resilience_engine):
        object_engine = GDatalogEngine(resilience_program(0.1), paper_example_database())
        assert object_engine.probability_has_stable_model() == pytest.approx(
            resilience_engine.probability_has_stable_model()
        )

    def test_grounder_selection(self):
        program = dime_quarter_program()
        database = dime_quarter_database()
        simple_engine = GDatalogEngine(program, database, grounder="simple")
        perfect_engine = GDatalogEngine(program, database, grounder="perfect")
        assert isinstance(simple_engine.grounder, SimpleGrounder)
        assert isinstance(perfect_engine.grounder, PerfectGrounder)

    def test_custom_grounder_instance(self):
        program = dime_quarter_program()
        database = dime_quarter_database()
        translated = translate_program(program)
        grounder = SimpleGrounder(translated, database)
        engine = GDatalogEngine(program, database, grounder=grounder)
        assert engine.grounder is grounder

    def test_invalid_constraint_mode(self):
        with pytest.raises(ValidationError):
            GDatalogEngine(resilience_program(0.1), paper_example_database(), constraint_mode="weird")

    def test_strict_edb_validation(self):
        with pytest.raises(ValidationError):
            GDatalogEngine(
                resilience_program(0.1), paper_example_database(), require_edb_database=True
            )
        # Without the intensional infected(1, 1) fact the strict mode is fine.
        pruned = Database([a for a in paper_example_database() if a.predicate.name != "infected"])
        GDatalogEngine(resilience_program(0.1), pruned, require_edb_database=True)

    def test_empty_database_from_source(self):
        engine = GDatalogEngine.from_source("coin(flip<0.5>).", "")
        assert len(engine.database) == 0
        assert len(engine.possible_outcomes()) == 2


class TestEngineQueries:
    def test_example_310(self, resilience_engine):
        assert resilience_engine.probability_has_stable_model() == pytest.approx(0.19)

    def test_marginal_string_and_atom(self, resilience_engine):
        by_string = resilience_engine.marginal("infected(2, 1)")
        by_atom = resilience_engine.marginal(atom("infected", 2, 1))
        assert by_string == pytest.approx(by_atom)

    def test_probability_of_custom_event(self, resilience_engine):
        p = resilience_engine.probability(lambda o: len(o.atr_rules) >= 2)
        assert p == pytest.approx(1.0)

    def test_report_renders(self, resilience_engine):
        text = resilience_engine.report()
        assert "grounder" in text and "possible outcomes" in text

    def test_chase_result_cached(self, resilience_engine):
        assert resilience_engine.chase_result is resilience_engine.chase_result

    def test_constraint_modes_agree(self):
        native = GDatalogEngine.from_source(RESILIENCE_SOURCE, RESILIENCE_DATABASE, constraint_mode="native")
        desugared = GDatalogEngine.from_source(
            RESILIENCE_SOURCE, RESILIENCE_DATABASE, constraint_mode="desugar"
        )
        assert native.probability_has_stable_model() == pytest.approx(
            desugared.probability_has_stable_model()
        )


class TestSampler:
    def test_estimates_match_exact_value(self, resilience_engine):
        estimate = resilience_engine.estimate_has_stable_model(n=800, seed=42)
        assert abs(estimate.value - 0.19) < 0.05
        assert estimate.samples == 800
        low, high = estimate.confidence_interval()
        assert low <= estimate.value <= high

    def test_marginal_estimate(self, resilience_engine):
        exact = resilience_engine.marginal("infected(2, 1)")
        estimate = resilience_engine.estimate_marginal("infected(2, 1)", n=800, seed=7)
        assert abs(estimate.value - exact) < 0.06

    def test_sampler_reproducible_with_seed(self, resilience_engine):
        first = resilience_engine.estimate_has_stable_model(n=200, seed=3)
        second = resilience_engine.estimate_has_stable_model(n=200, seed=3)
        assert first.value == pytest.approx(second.value)

    def test_sampler_stats(self, resilience_engine):
        stats = resilience_engine.sampler(seed=0).run_stats(n=200)
        assert stats.samples == 200
        assert stats.error_samples == 0
        assert 0 <= stats.has_stable_model <= 200
        assert stats.mean_depth >= 2.0
        assert stats.error_rate == 0.0

    def test_error_event_sampling_with_depth_limit(self):
        engine = GDatalogEngine(
            resilience_program(0.9),
            paper_example_database(),
            chase_config=ChaseConfig(max_depth=1),
        )
        sampler = engine.sampler(seed=0)
        stats = sampler.run_stats(n=50)
        assert stats.error_samples > 0

    def test_direct_sampler_outcomes(self, resilience_engine):
        sampler = MonteCarloSampler(resilience_engine.grounder, seed=11)
        outcomes = sampler.sample_outcomes(5)
        assert len(outcomes) == 5
        assert all(o is not None for o in outcomes)


class TestDependencyExports:
    def test_networkx_export(self):
        graph = to_networkx(dime_quarter_program())
        assert set(graph.nodes()) >= {"dime", "dimetail", "somedimetail", "quarter", "quartertail"}
        negative_edges = [
            (u, v) for u, v, data in graph.edges(data=True) if data.get("negative")
        ]
        assert ("somedimetail", "quartertail") in negative_edges

    def test_dot_export_dashes_negative_edges(self):
        dot = to_dot(dime_quarter_program())
        assert '"somedimetail" -> "quartertail" [style=dashed];' in dot
        assert dot.startswith("digraph")

    def test_ascii_rendering(self):
        text = format_dependency_graph(dime_quarter_program())
        assert "somedimetail -> quartertail [neg]" in text
        assert "dime -> dimetail" in text

    def test_stratification_rendering_matches_figure_1(self):
        text = format_stratification(dime_quarter_program())
        lines = text.splitlines()
        assert len(lines) == 5
        # DimeTail must come before SomeDimeTail, which must come before QuarterTail.
        order = {line.split(": ")[1]: i for i, line in enumerate(lines)}
        assert order["{dimetail}"] < order["{somedimetail}"] < order["{quartertail}"]
