"""Shared fixtures: the paper's example programs and databases."""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (e.g. straight from
# a source checkout); the editable install takes precedence when present.
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro import GDatalogEngine  # noqa: E402
from repro.logic import Database, parse_database, parse_gdatalog_program  # noqa: E402
from repro.workloads import (  # noqa: E402
    coin_program,
    dime_quarter_database,
    dime_quarter_program,
    paper_example_database,
    resilience_program,
)

#: The network-resilience program of Example 3.1 (propagation probability 0.1).
RESILIENCE_SOURCE = """
infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
uninfected(X) :- router(X), not infected(X, 1).
:- uninfected(X), uninfected(Y), connected(X, Y).
"""

#: The database of Example 3.6: 3 fully connected routers, router 1 infected.
RESILIENCE_DATABASE = """
router(1). router(2). router(3).
infected(1, 1).
connected(1, 2). connected(2, 1). connected(1, 3).
connected(3, 1). connected(2, 3). connected(3, 2).
"""


@pytest.fixture(scope="session")
def resilience_engine() -> GDatalogEngine:
    """The Example 3.6/3.10 engine with the simple grounder (session-cached)."""
    return GDatalogEngine.from_source(RESILIENCE_SOURCE, RESILIENCE_DATABASE, grounder="simple")


@pytest.fixture(scope="session")
def coin_engine() -> GDatalogEngine:
    """The Section-3 fair-coin program."""
    return GDatalogEngine(coin_program(), Database(), grounder="simple")


@pytest.fixture(scope="session")
def dime_quarter_engines() -> dict[str, GDatalogEngine]:
    """The Appendix-E dime/quarter program under both grounders."""
    program = dime_quarter_program()
    database = dime_quarter_database(dimes=2, quarters=1)
    return {
        "simple": GDatalogEngine(program, database, grounder="simple"),
        "perfect": GDatalogEngine(program, database, grounder="perfect"),
    }


@pytest.fixture()
def resilience_program_obj():
    return resilience_program(0.1)


@pytest.fixture()
def resilience_database_obj() -> Database:
    return paper_example_database()
