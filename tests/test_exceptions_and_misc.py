"""Tests for the exception hierarchy, the package surface and assorted edge cases."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions
from repro.distributions.base import ParameterizedDistribution
from repro.distributions.discrete import FlipDistribution
from repro.exceptions import (
    ChaseLimitError,
    DistributionError,
    GroundingError,
    InferenceError,
    ParseError,
    ReproError,
    SolverError,
    SolverLimitError,
    StratificationError,
    ValidationError,
)


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exception_type",
        [
            ParseError,
            ValidationError,
            StratificationError,
            GroundingError,
            SolverError,
            SolverLimitError,
            ChaseLimitError,
            InferenceError,
            DistributionError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception_type):
        assert issubclass(exception_type, ReproError)

    def test_solver_limit_is_a_solver_error(self):
        assert issubclass(SolverLimitError, SolverError)

    def test_parse_error_carries_position(self):
        error = ParseError("boom", line=3, column=7)
        assert error.line == 3 and error.column == 7
        assert "line 3" in str(error) and "column 7" in str(error)

    def test_parse_error_without_position(self):
        assert str(ParseError("boom")) == "boom"

    def test_catching_the_base_class(self):
        with pytest.raises(ReproError):
            raise DistributionError("bad parameters")


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__ == "1.0.0"

    def test_public_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_engine_importable_from_top_level(self):
        assert repro.GDatalogEngine is not None
        assert repro.SimpleGrounder is not None
        assert repro.PerfectGrounder is not None


class TestDistributionBaseHelpers:
    def test_truncated_support_finite(self):
        flip = FlipDistribution()
        outcomes, mass = flip.truncated_support([0.3])
        assert outcomes == [0, 1]
        assert mass == pytest.approx(1.0)

    def test_truncated_support_respects_max_outcomes(self):
        from repro.distributions.discrete import GeometricDistribution

        geometric = GeometricDistribution()
        outcomes, mass = geometric.truncated_support([0.5], mass_tolerance=0.0, max_outcomes=3)
        assert len(outcomes) == 3
        assert mass == pytest.approx(0.875)

    def test_default_sampling_via_inverse_cdf(self):
        from repro.rng import default_rng

        class TwoPoint(ParameterizedDistribution):
            name = "two_point"
            parameter_dimension = 0

            def pmf(self, params, outcome):
                return {10: 0.25, 20: 0.75}.get(outcome, 0.0)

            def support(self, params):
                return [10, 20]

            def has_finite_support(self, params):
                return True

        distribution = TwoPoint()
        rng = default_rng(0)
        samples = [distribution.sample([], rng) for _ in range(2000)]
        assert set(samples) == {10, 20}
        assert abs(samples.count(20) / len(samples) - 0.75) < 0.04

    def test_empty_support_sampling_raises(self):
        from repro.rng import default_rng

        class Broken(ParameterizedDistribution):
            name = "broken"

            def pmf(self, params, outcome):
                return 0.0

            def support(self, params):
                return []

            def has_finite_support(self, params):
                return True

        with pytest.raises(DistributionError):
            Broken().sample([], default_rng(0))
