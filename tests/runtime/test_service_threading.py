"""Concurrency and slicing behaviour of :class:`~repro.runtime.service.InferenceService`.

The service's LRU caches are plain ``OrderedDict`` objects; before the lock
was added, concurrent use (e.g. a threaded wrapper around ``serve``) could
corrupt eviction order or double-insert entries.  These tests hammer one
service instance from many threads and assert the caches stay consistent,
and pin the slice-aware cache-key contract: different queries that cut the
program to the same slice share one sliced space.
"""

from __future__ import annotations

import threading

import pytest

from repro.runtime.service import InferenceService

COLUMN_TEMPLATE = """
coin{c}(X, flip<0.5>[{c}, X]) :- src{c}(X).
hit{c}(X) :- coin{c}(X, 1).
"""


def _program(columns: int) -> str:
    return "\n".join(COLUMN_TEMPLATE.format(c=c) for c in range(1, columns + 1))


def _database(columns: int) -> str:
    return " ".join(f"src{c}(1)." for c in range(1, columns + 1))


class TestThreadSafety:
    def test_concurrent_evaluate_keeps_the_caches_consistent(self):
        service = InferenceService(cache_size=3)
        requests = [(_program(c), _database(c)) for c in range(1, 7)]
        errors: list[BaseException] = []
        results: dict[int, list[float]] = {}

        def worker(index: int) -> None:
            try:
                for round_ in range(8):
                    program, database = requests[(index + round_) % len(requests)]
                    answer = service.evaluate(program, database, ["hit1(1)"])
                    assert answer == [0.5]
                results[index] = answer
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert not errors
        assert len(results) == 8
        # The LRU invariant survived: never more entries than the capacity,
        # and every request was accounted as a hit or a miss.
        assert len(service) <= service.cache_size
        assert service.stats.hits + service.stats.misses == 8 * 8

    def test_concurrent_sliced_requests(self):
        service = InferenceService(cache_size=8, slice=True)
        program, database = _program(4), _database(4)
        errors: list[BaseException] = []

        def worker(column: int) -> None:
            try:
                for _ in range(5):
                    answer = service.evaluate(program, database, [f"hit{column}(1)"])
                    assert answer == [0.5]
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=worker, args=(1 + i % 4,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.stats.slice_hits + service.stats.slice_misses == 8 * 5
        # Four distinct slices: one miss each, the rest shared.
        assert service.stats.slice_misses == 4


class TestSlicedService:
    def test_sliced_results_match_unsliced(self):
        program, database = _program(5), _database(5)
        plain = InferenceService()
        sliced = InferenceService(slice=True)
        queries = ["hit2(1)", "hit4(1)", {"type": "has_stable_model"}]
        assert sliced.evaluate(program, database, queries) == (
            plain.evaluate(program, database, queries)
        )

    def test_queries_with_the_same_slice_share_one_space(self):
        program, database = _program(3), _database(3)
        service = InferenceService(slice=True)
        service.evaluate(program, database, ["hit2(1)"])
        assert (service.stats.slice_misses, service.stats.slice_hits) == (1, 0)
        # A different atom over the same relevant predicate set: cache hit.
        service.evaluate(program, database, ["hit2(99)"])
        assert (service.stats.slice_misses, service.stats.slice_hits) == (1, 1)
        # A different column: different slice, new miss.
        service.evaluate(program, database, ["hit3(1)"])
        assert (service.stats.slice_misses, service.stats.slice_hits) == (2, 1)

    def test_per_request_override(self):
        program, database = _program(3), _database(3)
        service = InferenceService(slice=False)
        assert service.evaluate(program, database, ["hit1(1)"], slice=True) == [0.5]
        assert service.stats.slice_misses == 1
        assert service.evaluate(program, database, ["hit1(1)"], slice=False) == [0.5]
        assert service.stats.slice_misses == 1

    def test_generic_query_falls_back_to_the_full_space(self):
        program, database = _program(2), _database(2)
        service = InferenceService(slice=True)
        answer = service.evaluate(
            program, database, ["hit1(1)", {"type": "has_stable_model"}]
        )
        assert answer == [0.5, 1.0]

    def test_sliced_service_composes_with_factorization(self):
        program, database = _program(4), _database(4)
        factorized = InferenceService(slice=True, factorize=True)
        plain = InferenceService()
        queries = ["hit3(1)", {"type": "has_stable_model"}]
        assert factorized.evaluate(program, database, queries) == (
            plain.evaluate(program, database, queries)
        )

    def test_slice_cache_respects_capacity(self):
        program, database = _program(6), _database(6)
        service = InferenceService(cache_size=2, slice=True)
        for column in range(1, 7):
            service.evaluate(program, database, [f"hit{column}(1)"])
        assert len(service) <= 2
        assert service.stats.evictions > 0
