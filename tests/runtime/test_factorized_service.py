"""Service and CLI integration for factorized inference: component caching,
--factorize flags, and routed serve requests."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.gdatalog.factorize import ProductSpace
from repro.runtime.service import InferenceService
from repro.workloads import INDEPENDENT_COINS_PROGRAM_SOURCE

COINS_DB = "\n".join(f"coin_id({i})." for i in range(1, 5))
OVERLAPPING_DB = "\n".join(f"coin_id({i})." for i in range(1, 4))


class TestFactorizedService:
    def test_space_is_a_product_and_queries_route(self):
        service = InferenceService(factorize=True)
        space = service.space(INDEPENDENT_COINS_PROGRAM_SOURCE, COINS_DB)
        assert isinstance(space, ProductSpace)
        results = service.evaluate(
            INDEPENDENT_COINS_PROGRAM_SOURCE,
            COINS_DB,
            ["heads(1)", {"type": "has_stable_model"}],
        )
        assert results == [0.5, 1.0]

    def test_components_are_cached_across_requests(self):
        service = InferenceService(factorize=True)
        service.space(INDEPENDENT_COINS_PROGRAM_SOURCE, COINS_DB)
        assert service.stats.component_misses == 4
        assert service.stats.component_hits == 0
        # A different database sharing three components: only coin 4 is
        # missing from the component cache, and nothing is re-chased for
        # coins 1..3 even though the request-level cache misses.
        service.space(INDEPENDENT_COINS_PROGRAM_SOURCE, OVERLAPPING_DB)
        assert service.stats.component_hits == 3
        assert service.stats.component_misses == 4

    def test_connected_request_falls_back(self):
        from repro.workloads import DIME_QUARTER_PROGRAM_SOURCE

        service = InferenceService(factorize=True)
        space = service.space(DIME_QUARTER_PROGRAM_SOURCE, "dime(1). dime(2). quarter(3).")
        assert not isinstance(space, ProductSpace)

    def test_clear_drops_component_cache(self):
        service = InferenceService(factorize=True)
        service.space(INDEPENDENT_COINS_PROGRAM_SOURCE, COINS_DB)
        service.clear()
        service.space(INDEPENDENT_COINS_PROGRAM_SOURCE, COINS_DB)
        assert service.stats.component_misses == 8


class TestFactorizedCLI:
    @pytest.fixture()
    def program_file(self, tmp_path):
        path = tmp_path / "coins.dl"
        path.write_text(INDEPENDENT_COINS_PROGRAM_SOURCE, encoding="utf-8")
        database = tmp_path / "coins.facts"
        database.write_text(COINS_DB, encoding="utf-8")
        return str(path), str(database)

    def test_query_with_factorize_flag(self, program_file, capsys):
        program, database = program_file
        code = main(["query", program, "-d", database, "--factorize", "--atom", "heads(2)"])
        out = capsys.readouterr().out
        assert code == 0
        assert "0.5" in out

    def test_batch_factorized_matches_plain(self, program_file, capsys):
        program, database = program_file
        assert main(["batch", program, "-d", database, "--atom", "heads(1)", "--json"]) == 0
        plain = json.loads(capsys.readouterr().out)
        assert (
            main(["batch", program, "-d", database, "--factorize", "--atom", "heads(1)", "--json"])
            == 0
        )
        factorized = json.loads(capsys.readouterr().out)
        assert factorized == plain

    def test_run_reports_component_summary(self, program_file, capsys):
        program, database = program_file
        assert main(["run", program, "-d", database, "--factorize"]) == 0
        out = capsys.readouterr().out
        assert "independent components:     4" in out

    def test_serve_factorized(self, program_file, capsys, monkeypatch):
        import io

        program, database = program_file
        request = json.dumps(
            {
                "id": 1,
                "program_path": program,
                "database_path": database,
                "queries": ["heads(1)", {"type": "has_stable_model"}],
            }
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(request + "\n"))
        assert main(["serve", "--factorize", "--max-requests", "1"]) == 0
        response = json.loads(capsys.readouterr().out.strip().splitlines()[0])
        assert response["ok"] is True
        assert response["results"] == [0.5, 1.0]

    def test_sample_with_workers(self, program_file, capsys):
        program, database = program_file
        code = main(
            ["sample", program, "-d", database, "-n", "200", "--seed", "3", "--workers", "2"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 workers" in out
