"""Worker RNG correctness: SeedSequence-spawned streams, no duplicated paths.

Fork-based workers inherit the parent's memory; sampling with an inherited
RNG generator would replay one stream in every worker.  These
tests pin the fixed contract:

* per-worker streams come from ``SeedSequence.spawn`` — deterministic in the
  seed, pairwise distinct;
* multi-worker estimates are reproducible and match the exact probability;
* the seeded single-worker path stays byte-for-byte identical to the
  sequential :class:`~repro.gdatalog.sampler.MonteCarloSampler`;
* the serial fallback draws the same streams as the forked pool, so results
  never depend on whether ``fork`` was available.
"""

from __future__ import annotations

import pytest

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.grounders import SimpleGrounder
from repro.gdatalog.sampler import MonteCarloSampler
from repro.gdatalog.translate import translate_program
from repro.ppdl.queries import AtomQuery
from repro.rng import default_rng
from repro.runtime.pool import ParallelSampler, spawn_seed_sequences
from repro.workloads import independent_coins_database, independent_coins_program


@pytest.fixture(scope="module")
def coins_grounder():
    return SimpleGrounder(
        translate_program(independent_coins_program()), independent_coins_database(3)
    )


class TestSpawnedStreams:
    def test_streams_are_deterministic_in_the_seed(self):
        first = spawn_seed_sequences(42, 4)
        second = spawn_seed_sequences(42, 4)
        for mine, theirs in zip(first, second):
            assert list(default_rng(mine).random(8)) == (
                list(default_rng(theirs).random(8))
            )

    def test_streams_are_pairwise_distinct(self):
        sequences = spawn_seed_sequences(7, 8)
        draws = [tuple(default_rng(s).random(16)) for s in sequences]
        assert len(set(draws)) == len(draws)

    def test_children_differ_from_the_parent_stream(self):
        # The bug being prevented: workers replaying the parent's generator.
        parent = list(default_rng(7).random(16))
        for child in spawn_seed_sequences(7, 4):
            assert list(default_rng(child).random(16)) != parent


class TestParallelSampler:
    def test_single_worker_is_byte_identical_to_sequential_sampler(self, coins_grounder):
        sequential = MonteCarloSampler(coins_grounder, ChaseConfig(), seed=11).estimate(
            lambda o: o.has_stable_model, n=300
        )
        parallel = ParallelSampler(coins_grounder, ChaseConfig(), workers=1, seed=11).estimate(
            lambda o: o.has_stable_model, n=300
        )
        assert parallel == sequential  # dataclass equality: value, SE, n

    def test_multi_worker_estimates_are_deterministic(self, coins_grounder):
        def run():
            sampler = ParallelSampler(coins_grounder, ChaseConfig(), workers=3, seed=5)
            return sampler.estimate_query(AtomQuery.of("heads(1)"), n=600)

        assert run() == run()

    def test_forked_and_serial_backends_agree(self, coins_grounder):
        import multiprocessing

        serial = ParallelSampler(
            coins_grounder, ChaseConfig(), workers=3, seed=9, backend="serial"
        ).estimate_query(AtomQuery.of("heads(2)"), n=450)
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")
        forked = ParallelSampler(
            coins_grounder, ChaseConfig(), workers=3, seed=9, backend="auto"
        ).estimate_query(AtomQuery.of("heads(2)"), n=450)
        assert forked == serial

    def test_workers_do_not_duplicate_sample_paths(self, coins_grounder):
        # With w duplicated streams the w worker counts would be identical,
        # and the merged estimate would only take values k*w/n.  Spawned
        # streams make per-worker counts (run separately here) differ.
        sequences = spawn_seed_sequences(13, 3)
        from repro.gdatalog.chase import ChaseEngine

        predicate = AtomQuery.of("heads(1)").outcome_predicate
        counts = []
        for sequence in sequences:
            engine = ChaseEngine(coins_grounder, ChaseConfig())
            rng = default_rng(sequence)
            successes = 0
            for _ in range(200):
                outcome, _depth = engine.sample_path(rng)
                if outcome is not None and predicate(outcome):
                    successes += 1
            counts.append(successes)
        # Duplicated streams would make every worker count identical; the
        # spawned streams produce distinct Binomial(200, 0.5) draws (fixed
        # seed keeps this deterministic).
        assert len(set(counts)) > 1

    def test_estimate_converges_to_exact_probability(self, coins_grounder):
        sampler = ParallelSampler(coins_grounder, ChaseConfig(), workers=4, seed=3)
        estimate = sampler.estimate_query(AtomQuery.of("heads(1)"), n=4000)
        assert estimate.samples == 4000
        assert estimate.value == pytest.approx(0.5, abs=4 * estimate.standard_error)


class TestForklessDegradation:
    """``sample --workers N`` on platforms without ``fork`` (satellite fix).

    A multi-worker request must degrade to the seeded single-worker path
    with a warning — never raise — when the ``fork`` start method is
    unavailable (e.g. Windows, macOS spawn-only configurations).
    """

    def test_degrades_to_single_worker_with_a_warning(self, coins_grounder, monkeypatch):
        import repro.runtime.pool as pool_module

        monkeypatch.setattr(
            pool_module.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        sampler = ParallelSampler(coins_grounder, ChaseConfig(), workers=4, seed=11)
        with pytest.warns(RuntimeWarning, match="fork start method unavailable"):
            estimate = sampler.estimate_query(AtomQuery.of("heads(1)"), n=300)
        # Byte-identical to the sequential sampler with the seed untouched.
        reference = MonteCarloSampler(coins_grounder, ChaseConfig(), seed=11).estimate(
            AtomQuery.of("heads(1)").outcome_predicate, n=300
        )
        assert estimate == reference

    def test_explicit_serial_backend_keeps_stream_parity(self, coins_grounder, monkeypatch):
        # backend="serial" deliberately draws the per-worker streams inline
        # (determinism parity with forked runs) and must not warn.
        import warnings

        import repro.runtime.pool as pool_module

        monkeypatch.setattr(
            pool_module.multiprocessing, "get_all_start_methods", lambda: ["spawn"]
        )
        sampler = ParallelSampler(
            coins_grounder, ChaseConfig(), workers=3, seed=9, backend="serial"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            estimate = sampler.estimate_query(AtomQuery.of("heads(2)"), n=150)
        assert estimate.samples == 150
