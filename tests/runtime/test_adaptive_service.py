"""Unit tests for the adaptive sampler, Wilson intervals and the inference service."""

from __future__ import annotations

import pytest

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.grounders import SimpleGrounder
from repro.gdatalog.sampler import Estimate
from repro.gdatalog.translate import translate_program
from repro.ppdl.queries import HasStableModelQuery, query_from_spec
from repro.runtime.adaptive import AdaptiveSampler
from repro.runtime.service import InferenceService
from repro.workloads import (
    coin_program,
    network_database,
    resilience_program,
    topology_graph,
)
from repro.logic.database import Database

COIN = """
coin(flip<0.5>).
aux2 :- coin(1), not aux1.
aux1 :- coin(1), not aux2.
:- coin(0).
"""

RESILIENCE = """
infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
uninfected(X) :- router(X), not infected(X, 1).
:- uninfected(X), uninfected(Y), connected(X, Y).
"""

RESILIENCE_DB = """
router(1). router(2). router(3).
infected(1, 1).
connected(1, 2). connected(2, 1). connected(1, 3).
connected(3, 1). connected(2, 3). connected(3, 2).
"""


class TestWilsonInterval:
    def test_degenerate_at_zero_has_positive_width(self):
        estimate = Estimate(0.0, 0.0, 100)
        low, high = estimate.confidence_interval(method="wilson")
        assert (low, high) != (0.0, 0.0)
        assert low == 0.0 and 0.0 < high < 0.1
        # The Wald interval would collapse to a point here; the normal
        # method now falls back to Wilson in the degenerate case.
        assert estimate.confidence_interval(method="normal") == estimate.wilson_interval()

    def test_degenerate_at_one_has_positive_width(self):
        estimate = Estimate(1.0, 0.0, 100)
        low, high = estimate.wilson_interval()
        assert 0.9 < low < 1.0
        assert high == pytest.approx(1.0)
        assert estimate.confidence_interval(method="normal") == (low, high)

    def test_normal_interval_unchanged_away_from_the_endpoints(self):
        estimate = Estimate(0.25, 0.01, 400)
        assert estimate.confidence_interval(method="normal") == (
            0.25 - 1.96 * 0.01,
            0.25 + 1.96 * 0.01,
        )

    def test_wilson_contains_estimate_and_stays_in_unit_interval(self):
        for p_hat, n in ((0.5, 10), (0.01, 50), (0.99, 50), (0.3, 1000)):
            low, high = Estimate(p_hat, 0.0, n).wilson_interval()
            assert 0.0 <= low < high <= 1.0
            assert low <= p_hat <= high

    def test_width_shrinks_with_samples(self):
        widths = [Estimate(0.2, 0.0, n).half_width(method="wilson") for n in (10, 100, 1000)]
        assert widths[0] > widths[1] > widths[2]

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            Estimate(0.5, 0.05, 100).confidence_interval(method="bogus")

    def test_zero_samples_is_vacuous(self):
        assert Estimate(0.0, 0.0, 0).wilson_interval() == (0.0, 1.0)


def _coin_grounder():
    return SimpleGrounder(translate_program(coin_program()), Database())


def _resilience_grounder(n: int = 4):
    database = network_database(topology_graph("chain", n), infected_seeds=[0])
    return SimpleGrounder(translate_program(resilience_program(0.3)), database)


class TestAdaptiveSampler:
    @pytest.mark.parametrize("stratify", [False, True])
    def test_stops_within_target_half_width_on_coin(self, stratify):
        driver = AdaptiveSampler(
            _coin_grounder(), target_half_width=0.05, stratify=stratify, seed=5
        )
        result = driver.estimate(HasStableModelQuery())
        assert result.converged
        assert result.half_width <= 0.05
        assert abs(result.value - 0.5) <= 3 * result.half_width
        assert result.stratified is stratify

    @pytest.mark.parametrize("stratify", [False, True])
    def test_stops_within_target_half_width_on_resilience(self, stratify):
        grounder = _resilience_grounder()
        driver = AdaptiveSampler(
            grounder, target_half_width=0.05, stratify=stratify, seed=5
        )
        result = driver.estimate(HasStableModelQuery())
        from repro.gdatalog.chase import ChaseEngine
        from repro.gdatalog.probability_space import OutputSpace

        chase = ChaseEngine(_resilience_grounder(), ChaseConfig()).run()
        exact = OutputSpace(chase.outcomes).probability_has_stable_model()
        assert result.converged
        assert result.half_width <= 0.05
        assert abs(result.value - exact) <= 3 * result.half_width

    def test_easy_queries_need_few_samples(self):
        # P ≈ 0 ⇒ Wilson converges quickly instead of looping to max_samples,
        # and (unlike the normal interval) never stops after one chunk of
        # unanimous samples with a zero-width interval at the wrong budget.
        driver = AdaptiveSampler(
            _resilience_grounder(5), target_half_width=0.05, chunk_size=64, seed=1
        )
        result = driver.estimate(HasStableModelQuery())
        assert result.converged
        assert result.samples <= 512

    def test_budget_exhaustion_is_reported(self):
        driver = AdaptiveSampler(
            _coin_grounder(), target_half_width=0.001, chunk_size=64, max_samples=256, seed=2
        )
        result = driver.estimate(HasStableModelQuery())
        assert not result.converged
        assert result.samples == 256
        assert result.half_width > 0.001

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveSampler(_coin_grounder(), target_half_width=0.0)
        with pytest.raises(ValueError):
            AdaptiveSampler(_coin_grounder(), chunk_size=0)

    def test_as_estimate_view(self):
        driver = AdaptiveSampler(_coin_grounder(), target_half_width=0.1, seed=3)
        result = driver.estimate(HasStableModelQuery())
        view = result.as_estimate()
        assert view.samples == result.samples
        assert view.value == result.value


class TestQueryFromSpec:
    def test_atom_shorthand(self):
        query = query_from_spec("coin(1)")
        assert str(query) == "P[brave](coin(1))"

    def test_mapping_forms(self):
        assert str(query_from_spec({"type": "has_stable_model"})) == "P(has stable model)"
        query = query_from_spec({"type": "atom", "atom": "coin(1)", "mode": "cautious"})
        assert str(query) == "P[cautious](coin(1))"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            query_from_spec({"type": "atom"})
        with pytest.raises(ValueError):
            query_from_spec({"type": "mystery"})
        with pytest.raises(ValueError):
            query_from_spec({"type": "atom", "atom": "a", "mode": "timid"})
        with pytest.raises(ValueError):
            query_from_spec(42)


class TestInferenceService:
    def test_repeated_requests_hit_the_cache(self):
        service = InferenceService(cache_size=4)
        first = service.evaluate(COIN, "", [{"type": "has_stable_model"}])
        second = service.evaluate(COIN, "", ["coin(1)"])
        assert first == [pytest.approx(0.5)]
        assert second == [pytest.approx(0.5)]
        assert service.stats.misses == 1
        assert service.stats.hits == 1
        assert len(service) == 1

    def test_canonical_key_ignores_rule_order_and_whitespace(self):
        service = InferenceService(cache_size=4)
        reordered = """
        aux1   :- coin(1), not aux2.
        aux2 :- coin(1), not aux1.
        :- coin(0).
        coin(flip<0.5>).
        """
        assert service.cache_key(COIN) == service.cache_key(reordered)
        service.evaluate(COIN, "", ["coin(1)"])
        service.evaluate(reordered, "", ["coin(1)"])
        assert service.stats.hits == 1 and service.stats.misses == 1

    def test_different_databases_get_different_entries(self):
        service = InferenceService(cache_size=4)
        key_a = service.cache_key(RESILIENCE, RESILIENCE_DB)
        key_b = service.cache_key(RESILIENCE, "")
        assert key_a != key_b

    def test_lru_eviction(self):
        service = InferenceService(cache_size=1)
        service.evaluate(COIN, "", ["coin(1)"])
        service.evaluate(RESILIENCE, RESILIENCE_DB, [{"type": "has_stable_model"}])
        assert service.stats.evictions == 1
        # The coin entry was evicted; asking again is a miss.
        service.evaluate(COIN, "", ["coin(1)"])
        assert service.stats.misses == 3

    def test_exact_matches_engine(self):
        service = InferenceService(cache_size=2)
        [probability] = service.evaluate(RESILIENCE, RESILIENCE_DB, [{"type": "has_stable_model"}])
        assert probability == pytest.approx(0.19)

    def test_parallel_service_space_matches(self):
        serial = InferenceService(cache_size=2)
        parallel = InferenceService(cache_size=2, workers=2)
        mine = serial.evaluate(RESILIENCE, RESILIENCE_DB, ["infected(2, 1)"])
        theirs = parallel.evaluate(RESILIENCE, RESILIENCE_DB, ["infected(2, 1)"])
        assert mine == theirs

    def test_adaptive_estimate_through_service(self):
        service = InferenceService(cache_size=2)
        result = service.estimate(
            COIN, "", {"type": "has_stable_model"}, target_half_width=0.05, seed=9
        )
        assert result.converged
        assert abs(result.value - 0.5) <= 3 * result.half_width

    def test_cache_size_validated(self):
        with pytest.raises(ValueError):
            InferenceService(cache_size=0)
