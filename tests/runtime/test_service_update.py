"""Streaming updates through :meth:`InferenceService.update`.

The load-bearing contracts:

* **No cache-key drift** — the key an update derives for the post-delta
  state is exactly the key :meth:`cache_key` computes for a fresh request
  over the canonical post-delta database text, so an updated entry and a
  later from-scratch request share one slot (never a double entry);
* post-update answers are bit-identical to a cold service's answers;
* the ``updates_applied`` / ``subtrees_invalidated`` / ``subtrees_reused``
  counters advance with the maintenance reports;
* concurrent updates and queries on the same stream keep the caches
  consistent.
"""

from __future__ import annotations

import threading

import pytest

from repro.exceptions import ValidationError
from repro.logic.deltas import DbDelta
from repro.runtime.service import InferenceService

PROGRAM = """
coin(X, flip<0.5>[X]) :- src(X).
hit(X) :- coin(X, 1).
base(X) :- src(X), aux(X).
"""
DATABASE = "src(1). src(2). aux(1)."
QUERIES = ["base(1)", "base(2)", "hit(1)"]


class TestDerivedCacheKeys:
    def test_update_key_equals_fresh_key_for_post_delta_database(self):
        service = InferenceService()
        result = service.update(PROGRAM, DATABASE, {"insert": ["aux(2)"]})
        assert result.key == service.cache_key(PROGRAM, result.database_source)
        # The canonical text itself is stable under re-parsing.
        noop = service.update(PROGRAM, result.database_source, {"insert": ["aux(2)"]})
        assert noop.key == result.key and noop.report.mode == "noop"

    def test_no_double_entry_for_the_same_post_delta_state(self):
        service = InferenceService()
        service.evaluate(PROGRAM, DATABASE, QUERIES)
        before = len(service)
        result = service.update(PROGRAM, DATABASE, {"insert": ["aux(2)"]})
        assert len(service) == before + 1  # pre-delta entry + post-delta entry
        # A fresh request over the same post-delta state reuses the slot.
        service.evaluate(PROGRAM, result.database_source, QUERIES)
        assert len(service) == before + 1

    def test_textually_different_same_database_converges(self):
        service = InferenceService()
        shuffled = "aux(2). src(2). aux(1). src(1)."
        result = service.update(PROGRAM, DATABASE, {"insert": ["aux(2)"]})
        assert service.cache_key(PROGRAM, shuffled) == result.key


class TestUpdateAnswers:
    def test_post_update_answers_match_a_cold_service(self):
        service = InferenceService()
        service.evaluate(PROGRAM, DATABASE, QUERIES)
        result = service.update(
            PROGRAM, DATABASE, DbDelta.of(inserts=["aux(2)"], retracts=["aux(1)"])
        )
        maintained = service.evaluate(PROGRAM, result.database_source, QUERIES)
        cold = InferenceService().evaluate(PROGRAM, result.database_source, QUERIES)
        assert maintained == cold == [0.0, 1.0, 0.5]

    def test_update_report_modes(self):
        service = InferenceService()
        service.evaluate(PROGRAM, DATABASE, QUERIES)  # chase the base entry
        patched = service.update(PROGRAM, DATABASE, {"insert": ["aux(2)"]})
        assert patched.report.mode == "patch"
        assert patched.report.reused_subtrees > 0
        rebuilt = service.update(PROGRAM, DATABASE, {"insert": ["src(3)"]})
        assert rebuilt.report.mode == "rebuild"

    def test_chained_updates_walk_the_database(self):
        service = InferenceService()
        source = DATABASE
        for delta, expected in (
            ({"insert": ["aux(2)"]}, [1.0, 1.0, 0.5]),
            ({"retract": ["aux(1)"]}, [0.0, 1.0, 0.5]),
        ):
            result = service.update(PROGRAM, source, delta)
            source = result.database_source
            assert service.evaluate(PROGRAM, source, QUERIES) == expected

    def test_invalid_delta_spec_is_rejected(self):
        service = InferenceService()
        with pytest.raises(ValidationError):
            service.update(PROGRAM, DATABASE, {"isnert": ["aux(2)"]})


class TestUpdateCounters:
    def test_counters_follow_the_reports(self):
        service = InferenceService()
        service.evaluate(PROGRAM, DATABASE, QUERIES)
        result = service.update(PROGRAM, DATABASE, {"insert": ["aux(2)"]})
        snapshot = service.stats.snapshot()
        assert snapshot["updates_applied"] == 1
        assert snapshot["subtrees_invalidated"] == result.report.invalidated_subtrees
        assert snapshot["subtrees_reused"] == result.report.reused_subtrees
        service.update(PROGRAM, DATABASE, {"retract": ["aux(1)"]})
        assert service.stats.snapshot()["updates_applied"] == 2


class TestConcurrentUpdates:
    def test_parallel_updates_and_queries_stay_consistent(self):
        service = InferenceService(cache_size=8)
        service.evaluate(PROGRAM, DATABASE, QUERIES)
        errors: list[BaseException] = []

        def update_worker(i: int) -> None:
            try:
                result = service.update(PROGRAM, DATABASE, {"insert": [f"aux({i + 10})"]})
                assert result.key == service.cache_key(PROGRAM, result.database_source)
                answers = service.evaluate(
                    PROGRAM, result.database_source, [f"base({i + 10})"]
                )
                assert answers == [0.0]  # src(i+10) is absent: aux alone derives nothing
            except BaseException as error:  # noqa: BLE001 - collected for the main thread
                errors.append(error)

        def query_worker() -> None:
            try:
                assert service.evaluate(PROGRAM, DATABASE, QUERIES) == [1.0, 0.0, 0.5]
            except BaseException as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=update_worker, args=(i,)) for i in range(6)]
        threads += [threading.Thread(target=query_worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert service.stats.snapshot()["updates_applied"] == 6
