"""Integration tests reproducing every worked example of the paper.

* Example 1.1 / 3.1 / 3.6 / 3.10 — network resilience, P(dominated) = 0.19.
* Section 3 "coin" program — heads ↦ no stable model, tails ↦ two stable models.
* Appendix B — the biased die with its fallback outcome.
* Appendix E — the dime/quarter program under the perfect grounder (Figure 1).
"""

from __future__ import annotations

import pytest

from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import atom, fact
from repro.logic.database import Database
from repro.workloads import (
    biased_die_program,
    coin_program,
    dime_quarter_database,
    dime_quarter_program,
)


class TestNetworkResilienceExample:
    """Examples 3.1, 3.6 and 3.10."""

    def test_domination_probability_is_019(self, resilience_engine):
        assert resilience_engine.probability_has_stable_model() == pytest.approx(0.19)

    def test_example_36_outcome_has_probability_081(self, resilience_engine):
        """The possible outcome where both initial flips fail has Pr = 0.9²."""
        space = resilience_engine.output_space()
        no_model_mass = space.probability_no_stable_model()
        assert no_model_mass == pytest.approx(0.81)
        # That event is realized by exactly one possible outcome: both flips 0.
        failing = [o for o in space if not o.has_stable_model]
        assert len(failing) == 1
        assert failing[0].probability == pytest.approx(0.81)
        assert len(failing[0].atr_rules) == 2
        assert all(r.outcome_value == 0 for r in failing[0].atr_rules)

    def test_total_probability_mass(self, resilience_engine):
        space = resilience_engine.output_space()
        assert space.finite_probability == pytest.approx(1.0)
        assert space.error_probability == pytest.approx(0.0, abs=1e-9)

    def test_domination_under_both_grounders(self, resilience_engine):
        from repro.workloads import paper_example_database, resilience_program

        perfect = GDatalogEngine(resilience_program(0.1), paper_example_database(), grounder="perfect")
        assert perfect.probability_has_stable_model() == pytest.approx(0.19)

    def test_higher_infection_rate_increases_domination(self):
        from repro.workloads import paper_example_database, resilience_program

        low = GDatalogEngine(resilience_program(0.1), paper_example_database())
        high = GDatalogEngine(resilience_program(0.5), paper_example_database())
        assert high.probability_has_stable_model() > low.probability_has_stable_model()

    def test_uninfected_marginal(self, resilience_engine):
        """Router 2 is uninfected exactly when no flip targeting it succeeds."""
        # P(uninfected(2)) among outcomes WITH stable models: only when 3 was
        # infected but failed to pass the malware on to 2.
        p = resilience_engine.marginal(atom("uninfected", 2), mode="cautious")
        assert 0.0 < p < 0.19


class TestCoinExample:
    """The Π_coin program of Section 3."""

    def test_two_possible_outcomes(self, coin_engine):
        space = coin_engine.output_space()
        assert len(space) == 2
        assert space.finite_probability == pytest.approx(1.0)

    def test_heads_has_no_stable_model(self, coin_engine):
        space = coin_engine.output_space()
        heads = next(o for o in space if not o.has_stable_model)
        assert heads.probability == pytest.approx(0.5)
        assert any(r.outcome_value == 0 for r in heads.atr_rules)

    def test_tails_has_two_stable_models(self, coin_engine):
        space = coin_engine.output_space()
        tails = next(o for o in space if o.has_stable_model)
        assert tails.probability == pytest.approx(0.5)
        visible = tails.visible_stable_models()
        assert len(visible) == 2
        expected = {
            frozenset({fact("coin", 1), fact("aux1")}),
            frozenset({fact("coin", 1), fact("aux2")}),
        }
        assert visible == expected

    def test_adding_constraint_on_tails_merges_events(self):
        """Adding ``:- coin(1).`` makes both outcomes induce the empty model set."""
        source = """
        coin(flip<0.5>).
        aux2 :- coin(1), not aux1.
        aux1 :- coin(1), not aux2.
        :- coin(0).
        :- coin(1).
        """
        engine = GDatalogEngine.from_source(source)
        space = engine.output_space()
        assert len(space) == 2
        events = space.events()
        assert len(events) == 1
        assert events[0].probability == pytest.approx(1.0)
        assert not events[0].has_stable_model


class TestBiasedDieExample:
    """Appendix B: the parameterized Die distribution."""

    def test_valid_die(self):
        program = biased_die_program((0.1, 0.1, 0.1, 0.1, 0.1, 0.5))
        engine = GDatalogEngine(program, Database([fact("player", 1)]))
        space = engine.output_space()
        assert len(space) == 6
        assert space.marginal(fact("roll", 1, 6)) == pytest.approx(0.5)
        assert space.marginal(fact("roll", 1, 0)) == pytest.approx(0.0)

    def test_invalid_die_collapses_to_outcome_zero(self):
        program = biased_die_program((0.5, 0.5, 0.5, 0.5, 0.5, 0.5))
        engine = GDatalogEngine(program, Database([fact("player", 1)]))
        space = engine.output_space()
        assert len(space) == 1
        assert space.marginal(fact("roll", 1, 0)) == pytest.approx(1.0)


class TestDimeQuarterExample:
    """Appendix E (Figure 1): stratified negation and the perfect grounder."""

    def test_possible_outcome_counts(self, dime_quarter_engines):
        simple_space = dime_quarter_engines["simple"].output_space()
        perfect_space = dime_quarter_engines["perfect"].output_space()
        # Simple grounder: the quarter flip is always activated -> 2*2*2 outcomes.
        assert len(simple_space) == 8
        # Perfect grounder: the quarter is only flipped when no dime shows tail.
        assert len(perfect_space) == 5

    def test_marginals_agree_between_grounders(self, dime_quarter_engines):
        simple_space = dime_quarter_engines["simple"].output_space()
        perfect_space = dime_quarter_engines["perfect"].output_space()
        for query in (fact("somedimetail"), fact("quartertail", 3, 1), fact("dimetail", 1, 1)):
            assert simple_space.marginal(query) == pytest.approx(perfect_space.marginal(query))

    def test_expected_probabilities(self, dime_quarter_engines):
        space = dime_quarter_engines["perfect"].output_space()
        assert space.marginal(fact("somedimetail")) == pytest.approx(0.75)
        assert space.marginal(fact("quartertail", 3, 1)) == pytest.approx(0.125)
        assert space.finite_probability == pytest.approx(1.0)

    def test_every_outcome_has_exactly_one_stable_model(self, dime_quarter_engines):
        """Lemma E.1: perfect-grounder outcomes have heads(Σ★) as the unique stable model."""
        for outcome in dime_quarter_engines["perfect"].possible_outcomes():
            assert len(outcome.stable_models) == 1
            only_model = next(iter(outcome.stable_models))
            assert only_model == outcome.head_atoms()

    def test_figure_1_dependency_graph(self):
        program = dime_quarter_program()
        graph = program.dependency_graph()
        names = {(s.name, t.name) for (s, t) in graph.positive_edges}
        assert ("dime", "dimetail") in names
        assert ("dimetail", "somedimetail") in names
        assert ("quarter", "quartertail") in names
        negative = {(s.name, t.name) for (s, t) in graph.negative_edges}
        assert negative == {("somedimetail", "quartertail")}
        assert not graph.has_negative_cycle()
