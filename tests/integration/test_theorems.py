"""Integration tests that turn the paper's theorems and lemmas into executable checks.

* Theorem 3.9 — the output is a probability space (mass accounting).
* Theorem 3.12 / 5.3 — "as good as" ordering between grounders.
* Lemma 4.3 / 4.4 — chase-node consistency and order independence.
* Lemma 4.5 / Theorem 4.6 — bijection between finite chase paths and outcomes.
* Lemma C.5 / C.6 / Theorem C.4 — positive programs: equivalence with BCKOV.
* Lemma E.1 — perfect-grounder outcomes have a unique stable model = heads.
"""

from __future__ import annotations

import pytest

from repro.baselines import BCKOVEngine
from repro.gdatalog.atr import is_consistent
from repro.gdatalog.chase import ChaseConfig, ChaseEngine, TriggerStrategy
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder
from repro.gdatalog.probability_space import OutputSpace
from repro.gdatalog.translate import translate_program
from repro.workloads import (
    dime_quarter_database,
    dime_quarter_program,
    paper_example_database,
    random_database,
    random_positive_program,
    random_stratified_program,
    resilience_program,
)


class TestTheorem39ProbabilitySpace:
    """The output of a program on a database is a probability space."""

    @pytest.mark.parametrize("seed", range(4))
    def test_random_stratified_mass_accounting(self, seed):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed, domain_size=2)
        engine = GDatalogEngine(program, database, grounder="simple")
        space = engine.output_space()
        assert space.total_probability() == pytest.approx(1.0, abs=1e-6)
        assert all(o.probability > 0.0 for o in space)
        events = space.events()
        assert sum(e.probability for e in events) == pytest.approx(space.finite_probability)

    def test_events_are_disjoint(self, resilience_engine):
        space = resilience_engine.output_space()
        seen = set()
        for event in space.events():
            for outcome in event.outcomes:
                assert outcome.atr_rules not in seen
                seen.add(outcome.atr_rules)


class TestLemmas43And44Chase:
    def test_chase_nodes_are_functionally_consistent(self):
        translated = translate_program(resilience_program(0.1))
        grounder = SimpleGrounder(translated, paper_example_database())
        engine = ChaseEngine(grounder)
        node = engine.root()
        frontier = [node]
        visited = 0
        while frontier and visited < 50:
            current = frontier.pop()
            visited += 1
            assert is_consistent(current.atr_rules)  # Lemma 4.3(1)
            triggers = current.triggers(grounder)
            if triggers:
                frontier.extend(engine.expand(current, engine.select_trigger(triggers)))

    @pytest.mark.parametrize("grounder_name", ["simple", "perfect"])
    def test_order_independence(self, grounder_name):
        """Lemma 4.4: different trigger orders produce the same finite outcomes."""
        program = dime_quarter_program()
        database = dime_quarter_database(dimes=2, quarters=2)
        translated = translate_program(program)
        grounder_cls = SimpleGrounder if grounder_name == "simple" else PerfectGrounder
        grounder = grounder_cls(translated, database)
        results = []
        for strategy in (TriggerStrategy.FIRST, TriggerStrategy.LAST, TriggerStrategy.RANDOM):
            result = ChaseEngine(grounder, ChaseConfig(trigger_strategy=strategy, seed=13)).run()
            results.append({(o.atr_rules, round(o.probability, 12)) for o in result.outcomes})
        assert results[0] == results[1] == results[2]

    def test_chase_paths_in_bijection_with_outcomes(self):
        """Lemma 4.5: distinct finite paths yield distinct possible outcomes."""
        translated = translate_program(resilience_program(0.1))
        grounder = SimpleGrounder(translated, paper_example_database())
        result = ChaseEngine(grounder).run()
        atr_sets = [o.atr_rules for o in result.outcomes]
        assert len(atr_sets) == len(set(atr_sets))


class TestTheorem46FixpointSemantics:
    def test_chase_space_equals_output_space(self, resilience_engine):
        """The chase-based space mimics Π_G(D): same event masses."""
        # Rebuild the space from a fresh chase with a different trigger order
        # and compare the induced distributions over sets of stable models.
        translated = translate_program(resilience_program(0.1))
        grounder = SimpleGrounder(translated, paper_example_database())
        other = ChaseEngine(grounder, ChaseConfig(trigger_strategy=TriggerStrategy.LAST)).run()
        other_space = OutputSpace(other.outcomes, other.error_probability)
        reference = resilience_engine.output_space().distribution_over_model_sets()
        alternative = other_space.distribution_over_model_sets()
        assert set(reference) == set(alternative)
        for key in reference:
            assert reference[key] == pytest.approx(alternative[key])


class TestTheoremC4PositivePrograms:
    @pytest.mark.parametrize("seed", range(6))
    def test_equivalence_with_bckov(self, seed):
        program = random_positive_program(seed=seed, rule_count=4)
        database = random_database(seed=seed, domain_size=3)
        engine = GDatalogEngine(program, database, grounder="simple")
        ours: dict[frozenset, float] = {}
        for outcome in engine.possible_outcomes():
            models = outcome.stable_models_modulo(hide_active=True, hide_result=False)
            # Lemma C.5(1): positive outcomes have exactly one stable model.
            assert len(models) == 1
            key = next(iter(models))
            ours[key] = ours.get(key, 0.0) + outcome.probability
        bckov = BCKOVEngine(program, database).run()
        theirs = bckov.distribution_over_instances()
        # Lemma C.6 + Theorem C.4: same support, same probabilities.
        assert set(ours) == set(theirs)
        for key in ours:
            assert ours[key] == pytest.approx(theirs[key])

    @pytest.mark.parametrize("seed", range(3))
    def test_outcome_counts_match(self, seed):
        """Lemma C.5(2): distinct outcomes have distinct models, so counts agree."""
        program = random_positive_program(seed=seed, rule_count=4)
        database = random_database(seed=seed, domain_size=3)
        engine = GDatalogEngine(program, database, grounder="simple")
        bckov = BCKOVEngine(program, database).run()
        assert len(engine.possible_outcomes()) == len(bckov.outcomes)


class TestTheorems312And53AsGoodAs:
    def test_simple_vs_perfect_on_positive_program(self):
        """Theorem 3.12: for positive programs the two grounders induce the same semantics."""
        program = random_positive_program(seed=2, rule_count=4)
        database = random_database(seed=2)
        simple_space = GDatalogEngine(program, database, grounder="simple").output_space()
        perfect_space = GDatalogEngine(program, database, grounder="perfect").output_space()
        assert simple_space.as_good_as(perfect_space)
        assert perfect_space.as_good_as(simple_space)

    @pytest.mark.parametrize("seed", range(5))
    def test_perfect_as_good_as_simple_on_stratified_programs(self, seed):
        """Theorem 5.3: Π_GPerfect(D) is as good as Π_GSimple(D)."""
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed, domain_size=2)
        simple_space = GDatalogEngine(program, database, grounder="simple").output_space()
        perfect_space = GDatalogEngine(program, database, grounder="perfect").output_space()
        assert perfect_space.as_good_as(simple_space)

    def test_perfect_strictly_better_with_superfluous_infinite_support(self):
        """A stratified program where the simple grounder wastes mass on an
        infinite-support Δ-term that the perfect grounder never activates."""
        source = """
        dimetail(X, flip<0.5>[X]) :- dime(X).
        somedimetail :- dimetail(X, 1).
        bonus(X, poisson<1.0>[X]) :- quarter(X), not somedimetail.
        """
        database = dime_quarter_database(dimes=1, quarters=1)
        config = ChaseConfig(mass_tolerance=1e-3, max_support=16)
        simple_space = GDatalogEngine.from_source(
            source, "", grounder="simple", chase_config=config
        )
        # rebuild with the actual database objects
        from repro.logic.parser import parse_gdatalog_program

        program = parse_gdatalog_program(source)
        simple_space = GDatalogEngine(program, database, grounder="simple", chase_config=config).output_space()
        perfect_space = GDatalogEngine(program, database, grounder="perfect", chase_config=config).output_space()
        assert perfect_space.as_good_as(simple_space)
        # The perfect grounder avoids the truncated Poisson branch on the
        # "dime shows tail" path, so it loses strictly less mass.
        assert perfect_space.error_probability < simple_space.error_probability
        assert perfect_space.finite_probability > simple_space.finite_probability


class TestLemmaE1PerfectOutcomes:
    @pytest.mark.parametrize("seed", range(4))
    def test_unique_stable_model_equals_heads(self, seed):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed, domain_size=2)
        engine = GDatalogEngine(program, database, grounder="perfect")
        for outcome in engine.possible_outcomes():
            assert len(outcome.stable_models) == 1
            assert next(iter(outcome.stable_models)) == outcome.head_atoms()
