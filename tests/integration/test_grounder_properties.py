"""Executable evidence for Propositions 3.5 and 5.2: GSimple and GPerfect are grounders.

A function ``G`` is a grounder of ``Π[D]`` (Definition 3.3) when it is
monotone and, for every consistent AtR set ``Σ`` compatible with its
grounding, ``sms(G(Σ) ∪ Σ)`` equals ``sms(Σ∄_{Π[D]} ∪ Σ')`` for every
totalizer ``Σ'``.  These tests check both properties on all the AtR sets
visited by a chase of the paper's example programs and of random programs.
"""

from __future__ import annotations

import pytest

from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder
from repro.gdatalog.translate import translate_program
from repro.gdatalog.verification import (
    check_monotonicity,
    check_semantic_adequacy,
    collect_chase_atr_sets,
    totalizers_of,
)
from repro.logic.database import Database
from repro.workloads import (
    coin_program,
    dime_quarter_database,
    dime_quarter_program,
    paper_example_database,
    random_database,
    random_stratified_program,
    resilience_program,
)


def _simple(program, database) -> SimpleGrounder:
    return SimpleGrounder(translate_program(program), database)


def _perfect(program, database) -> PerfectGrounder:
    return PerfectGrounder(translate_program(program), database)


class TestProposition35SimpleGrounder:
    @pytest.mark.parametrize(
        "program,database",
        [
            (coin_program(), Database()),
            (dime_quarter_program(), dime_quarter_database(dimes=2, quarters=1)),
            (resilience_program(0.1), paper_example_database()),
        ],
        ids=["coin", "dime_quarter", "resilience"],
    )
    def test_semantic_adequacy(self, program, database):
        grounder = _simple(program, database)
        atr_sets = collect_chase_atr_sets(grounder)
        report = check_semantic_adequacy(grounder, atr_sets)
        assert report.checked_sets > 0
        assert report.ok, report.failures

    @pytest.mark.parametrize(
        "program,database",
        [
            (dime_quarter_program(), dime_quarter_database(dimes=2, quarters=1)),
            (resilience_program(0.1), paper_example_database()),
        ],
        ids=["dime_quarter", "resilience"],
    )
    def test_monotonicity(self, program, database):
        grounder = _simple(program, database)
        atr_sets = collect_chase_atr_sets(grounder)
        report = check_monotonicity(grounder, atr_sets)
        assert report.checked_sets > 0
        assert report.ok, report.failures


class TestProposition52PerfectGrounder:
    @pytest.mark.parametrize("seed", range(3))
    def test_semantic_adequacy_on_random_stratified_programs(self, seed):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed, domain_size=2)
        grounder = _perfect(program, database)
        atr_sets = collect_chase_atr_sets(grounder)
        report = check_semantic_adequacy(grounder, atr_sets)
        assert report.ok, report.failures

    def test_semantic_adequacy_on_dime_quarter(self):
        grounder = _perfect(dime_quarter_program(), dime_quarter_database(dimes=2, quarters=1))
        atr_sets = collect_chase_atr_sets(grounder)
        report = check_semantic_adequacy(grounder, atr_sets)
        assert report.checked_sets > 0
        assert report.ok, report.failures

    def test_monotonicity_on_dime_quarter(self):
        grounder = _perfect(dime_quarter_program(), dime_quarter_database(dimes=2, quarters=1))
        atr_sets = collect_chase_atr_sets(grounder)
        report = check_monotonicity(grounder, atr_sets)
        assert report.checked_sets > 0
        assert report.ok, report.failures

    @pytest.mark.parametrize("seed", range(3))
    def test_monotonicity_on_random_stratified_programs(self, seed):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed, domain_size=2)
        grounder = _perfect(program, database)
        report = check_monotonicity(grounder, collect_chase_atr_sets(grounder))
        assert report.ok, report.failures


class TestVerificationHelpers:
    def test_totalizers_cover_pending_atoms(self):
        grounder = _simple(dime_quarter_program(), dime_quarter_database(dimes=1, quarters=1))
        empty = frozenset()
        totalizers = list(totalizers_of(grounder, empty))
        # One pending dime flip and one pending quarter flip, two outcomes each.
        assert len(totalizers) == 4
        for totalizer in totalizers:
            assert len(totalizer) == 2

    def test_report_rendering(self):
        grounder = _simple(coin_program(), Database())
        report = check_semantic_adequacy(grounder, collect_chase_atr_sets(grounder))
        assert "OK" in str(report)
        assert report.ok
