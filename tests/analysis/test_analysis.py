"""Unit tests for metrics, text tables and timing helpers."""

from __future__ import annotations

import math
import time

import pytest

from repro.analysis import (
    TextTable,
    Timer,
    absolute_error,
    distributions_close,
    format_probability,
    kl_divergence,
    normalize_distribution,
    relative_error,
    time_call,
    total_variation_distance,
)


class TestMetrics:
    def test_total_variation(self):
        left = {"a": 0.5, "b": 0.5}
        right = {"a": 0.25, "b": 0.75}
        assert total_variation_distance(left, right) == pytest.approx(0.25)
        assert total_variation_distance(left, left) == 0.0

    def test_total_variation_disjoint_supports(self):
        assert total_variation_distance({"a": 1.0}, {"b": 1.0}) == pytest.approx(1.0)

    def test_kl_divergence(self):
        p = {"a": 0.5, "b": 0.5}
        q = {"a": 0.9, "b": 0.1}
        assert kl_divergence(p, p) == pytest.approx(0.0)
        assert kl_divergence(p, q) > 0.0
        assert math.isinf(kl_divergence({"a": 1.0}, {"b": 1.0}))

    def test_normalize(self):
        assert normalize_distribution({"a": 2.0, "b": 2.0}) == {"a": 0.5, "b": 0.5}
        with pytest.raises(ValueError):
            normalize_distribution({"a": 0.0})

    def test_errors(self):
        assert absolute_error(0.2, 0.25) == pytest.approx(0.05)
        assert relative_error(0.2, 0.25) == pytest.approx(0.2)
        assert relative_error(0.0, 0.0) == 0.0
        assert math.isinf(relative_error(0.1, 0.0))

    def test_distributions_close(self):
        assert distributions_close({"a": 0.5}, {"a": 0.5 + 1e-12})
        assert not distributions_close({"a": 0.5}, {"a": 0.6})


class TestTextTable:
    def test_render_alignment(self):
        table = TextTable(["name", "p"], title="demo")
        table.add_row("clique", 0.19)
        table.add_row("chain", 0.5)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "p" in lines[1]
        assert "0.190000" in rendered

    def test_wrong_column_count(self):
        with pytest.raises(ValueError):
            TextTable(["a", "b"]).add_row(1)

    def test_add_rows_and_rows_copy(self):
        table = TextTable(["a"]).add_rows([[1], [2]])
        rows = table.rows
        rows[0][0] = "mutated"
        assert table.rows[0][0] == "1"

    def test_format_probability(self):
        assert format_probability(0.1234567) == "0.123457"
        assert format_probability(0.5, digits=2) == "0.50"


class TestTiming:
    def test_timer_context(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005
        assert timer.milliseconds >= 5.0

    def test_time_call(self):
        result, elapsed = time_call(lambda: 21 * 2)
        assert result == 42
        assert elapsed >= 0.0
