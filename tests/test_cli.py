"""Unit tests for the ``gdatalog`` command-line interface."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent
RESILIENCE_PROGRAM = REPO_ROOT / "examples" / "programs" / "resilience.dl"
RESILIENCE_FACTS = REPO_ROOT / "examples" / "programs" / "resilience.facts"
DIME_QUARTER_PROGRAM = REPO_ROOT / "examples" / "programs" / "dime_quarter.dl"
DIME_QUARTER_FACTS = REPO_ROOT / "examples" / "programs" / "dime_quarter.facts"
COIN_PROGRAM = REPO_ROOT / "examples" / "programs" / "coin.dl"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "program.dl"])
        assert args.command == "run"
        assert args.grounder == "simple"
        assert args.database is None

    def test_query_collects_atoms(self):
        args = build_parser().parse_args(
            ["query", "p.dl", "--atom", "a(1)", "--atom", "b(2)", "--mode", "cautious"]
        )
        assert args.atom == ["a(1)", "b(2)"]
        assert args.mode == "cautious"

    def test_invalid_grounder_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "p.dl", "--grounder", "clever"])


class TestCommands:
    def test_run_prints_space_summary(self, capsys):
        exit_code = main(["run", str(RESILIENCE_PROGRAM), "-d", str(RESILIENCE_FACTS)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "P(has stable model):        0.190000" in captured.out

    def test_run_show_outcomes(self, capsys):
        exit_code = main(["run", str(COIN_PROGRAM), "--show-outcomes"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "PossibleOutcome" in captured.out

    def test_query_marginals(self, capsys):
        exit_code = main(
            [
                "query",
                str(RESILIENCE_PROGRAM),
                "-d",
                str(RESILIENCE_FACTS),
                "--atom",
                "infected(2, 1)",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "has stable model" in captured.out
        assert "infected(2, 1)" in captured.out

    def test_sample_estimates(self, capsys):
        exit_code = main(
            [
                "sample",
                str(RESILIENCE_PROGRAM),
                "-d",
                str(RESILIENCE_FACTS),
                "-n",
                "200",
                "--seed",
                "1",
                "--atom",
                "infected(2, 1)",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Monte-Carlo (200 samples)" in captured.out

    def test_ground_lists_translation(self, capsys):
        exit_code = main(["ground", str(DIME_QUARTER_PROGRAM), "-d", str(DIME_QUARTER_FACTS)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "active_flip_1_1" in captured.out
        assert "G(∅)" in captured.out

    def test_graph_ascii_and_dot(self, capsys):
        assert main(["graph", str(DIME_QUARTER_PROGRAM)]) == 0
        ascii_output = capsys.readouterr().out
        assert "somedimetail -> quartertail [neg]" in ascii_output
        assert "stratification:" in ascii_output

        assert main(["graph", str(DIME_QUARTER_PROGRAM), "--dot"]) == 0
        dot_output = capsys.readouterr().out
        assert dot_output.startswith("digraph")

    def test_graph_reports_unstratified_program(self, tmp_path, capsys):
        program = tmp_path / "unstratified.dl"
        program.write_text("a(X) :- e(X), not b(X).\nb(X) :- e(X), not a(X).\n")
        assert main(["graph", str(program)]) == 0
        assert "NOT stratified" in capsys.readouterr().out

    def test_missing_file_is_reported(self, capsys):
        exit_code = main(["run", "does-not-exist.dl"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err == "error: program file not found: does-not-exist.dl\n"
        assert "Traceback" not in captured.err

    def test_missing_database_file_is_reported(self, capsys):
        exit_code = main(["run", str(COIN_PROGRAM), "-d", "no-such.facts"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert captured.err == "error: database file not found: no-such.facts\n"

    def test_directory_instead_of_file_is_reported(self, tmp_path, capsys):
        exit_code = main(["run", str(tmp_path)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "is a directory" in captured.err
        assert "Traceback" not in captured.err

    def test_parse_error_is_reported(self, tmp_path, capsys):
        broken = tmp_path / "broken.dl"
        broken.write_text("p(X) :- q(X)")  # missing final dot
        exit_code = main(["run", str(broken)])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "error:" in captured.err
        assert "Traceback" not in captured.err

    def test_batch_single_pass_queries(self, capsys):
        exit_code = main(
            [
                "batch",
                str(RESILIENCE_PROGRAM),
                "-d",
                str(RESILIENCE_FACTS),
                "--atom",
                "infected(2, 1)",
                "--atom",
                "infected(3, 1)",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "has stable model" in captured.out
        assert "infected(2, 1)" in captured.out

    def test_batch_json_output_matches_query_command(self, capsys):
        import json

        exit_code = main(
            ["batch", str(RESILIENCE_PROGRAM), "-d", str(RESILIENCE_FACTS), "--json"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(captured.out)
        assert payload["has stable model"] == pytest.approx(0.19)

    def test_batch_with_workers(self, capsys):
        exit_code = main(
            [
                "batch",
                str(RESILIENCE_PROGRAM),
                "-d",
                str(RESILIENCE_FACTS),
                "--workers",
                "2",
                "--json",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        import json

        assert json.loads(captured.out)["has stable model"] == pytest.approx(0.19)

    def test_sample_adaptive(self, capsys):
        exit_code = main(
            [
                "sample",
                str(COIN_PROGRAM),
                "--adaptive",
                "--half-width",
                "0.05",
                "--seed",
                "3",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "adaptive Monte-Carlo" in captured.out
        assert "has stable model" in captured.out

    def test_serve_json_lines(self, capsys, monkeypatch):
        import io
        import json

        requests = [
            json.dumps(
                {
                    "id": 1,
                    "program_path": str(RESILIENCE_PROGRAM),
                    "database_path": str(RESILIENCE_FACTS),
                    "queries": [{"type": "has_stable_model"}, "infected(2, 1)"],
                }
            ),
            json.dumps({"id": 2, "program_path": str(RESILIENCE_PROGRAM), "database_path": str(RESILIENCE_FACTS)}),
            "this is not json",
            json.dumps({"id": 4}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        exit_code = main(["serve"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [json.loads(line) for line in captured.out.strip().splitlines() if line.startswith("{")]
        assert len(lines) == 4
        first, second, bad_json, missing_program = lines
        assert first["ok"] and first["id"] == 1
        assert first["results"][0] == pytest.approx(0.19)
        # Request 2 reuses the cached engine for the same program/database.
        assert second["ok"] and second["cache"]["hits"] >= 1
        assert not bad_json["ok"] and "invalid JSON" in bad_json["error"]
        assert not missing_program["ok"] and "program" in missing_program["error"]

    def test_serve_survives_malformed_field_types(self, capsys, monkeypatch):
        import io
        import json

        requests = [
            json.dumps(
                {
                    "id": 1,
                    "program_path": str(COIN_PROGRAM),
                    "adaptive": True,
                    "half_width": "0.1",  # wrong type: string instead of number
                }
            ),
            json.dumps({"id": 2, "program_path": str(COIN_PROGRAM), "queries": 42}),
            json.dumps({"id": 3, "program_path": str(COIN_PROGRAM), "queries": ["coin(1)"]}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        exit_code = main(["serve"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = [json.loads(line) for line in captured.out.strip().splitlines() if line.startswith("{")]
        assert len(lines) == 3  # the bad requests answered with errors, loop survived
        assert not lines[0]["ok"] and not lines[1]["ok"]
        assert lines[2]["ok"] and lines[2]["results"] == [pytest.approx(0.5)]

    def test_serve_max_requests(self, capsys, monkeypatch):
        import io
        import json

        request = json.dumps({"program_path": str(COIN_PROGRAM), "queries": ["coin(1)"]})
        monkeypatch.setattr("sys.stdin", io.StringIO((request + "\n") * 5))
        exit_code = main(["serve", "--max-requests", "2"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert captured.out.count('"ok": true') == 2
        # stdout stays pure JSON-lines for protocol clients; summary on stderr.
        assert all(line.startswith("{") for line in captured.out.strip().splitlines())
        assert "served 2 request(s)" in captured.err

    def test_module_invocation(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-m", "repro", "graph", str(DIME_QUARTER_PROGRAM)],
            capture_output=True,
            text=True,
            cwd=str(REPO_ROOT),
        )
        assert result.returncode == 0
        assert "dependency graph" in result.stdout


class TestSliceFlag:
    """The ``--slice/--no-slice`` flags on ``query``, ``batch`` and ``serve``."""

    WIDE_PROGRAM = (
        "coin1(X, flip<0.5>[1, X]) :- src1(X).\n"
        "hit1(X) :- coin1(X, 1).\n"
        "coin2(X, flip<0.5>[2, X]) :- src2(X).\n"
        "hit2(X) :- coin2(X, 1).\n"
    )
    WIDE_FACTS = "src1(1). src2(1)."

    @pytest.fixture()
    def wide_paths(self, tmp_path):
        program = tmp_path / "wide.dl"
        program.write_text(self.WIDE_PROGRAM, encoding="utf-8")
        facts = tmp_path / "wide.facts"
        facts.write_text(self.WIDE_FACTS, encoding="utf-8")
        return str(program), str(facts)

    def test_parser_accepts_both_spellings(self):
        assert build_parser().parse_args(["query", "p.dl", "--slice"]).slice is True
        assert build_parser().parse_args(["query", "p.dl", "--no-slice"]).slice is False
        assert build_parser().parse_args(["batch", "p.dl"]).slice is False
        assert build_parser().parse_args(["serve", "--slice"]).slice is True

    def test_query_slice_matches_full(self, capsys, wide_paths):
        program, facts = wide_paths

        def run(*extra):
            assert main(["query", program, "-d", facts, "--atom", "hit1(1)", *extra]) == 0
            return capsys.readouterr().out

        sliced = run("--slice")
        full = run("--no-slice")
        assert "0.5" in sliced
        assert "slice: 2/4 rules" in sliced
        # Identical probability table (the slice summary line aside).
        assert [l for l in sliced.splitlines() if "hit1" in l] == [
            l for l in full.splitlines() if "hit1" in l
        ]

    def test_batch_slice_json_matches_full(self, capsys, wide_paths):
        import json

        program, facts = wide_paths

        def run(*extra):
            code = main(
                ["batch", program, "-d", facts, "--atom", "hit2(1)", "--json", *extra]
            )
            assert code == 0
            return json.loads(capsys.readouterr().out)

        assert run("--slice") == run()

    def test_serve_slice_flag_and_override(self, capsys, monkeypatch, wide_paths):
        import io
        import json

        program, facts = wide_paths
        requests = [
            json.dumps({"id": 1, "program_path": program, "database_path": facts, "queries": ["hit1(1)"]}),
            json.dumps(
                {
                    "id": 2,
                    "program_path": program,
                    "database_path": facts,
                    "queries": ["hit1(1)"],
                    "slice": False,
                }
            ),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        assert main(["serve", "--slice"]) == 0
        captured = capsys.readouterr()
        lines = [json.loads(line) for line in captured.out.strip().splitlines()]
        assert [line["ok"] for line in lines] == [True, True]
        assert lines[0]["results"] == lines[1]["results"] == [pytest.approx(0.5)]


class TestUpdateCommand:
    """The streaming-update loop always ends with a flushed JSON summary."""

    @pytest.fixture
    def stream_program(self, tmp_path):
        program = tmp_path / "stream.dl"
        program.write_text("coin(X, flip<0.5>[X]) :- src(X).\nhit(X) :- coin(X, 1).\n")
        facts = tmp_path / "stream.facts"
        facts.write_text("src(1).\n")
        return str(program), str(facts)

    def _summary(self, captured_out):
        import json

        lines = [json.loads(line) for line in captured_out.strip().splitlines()]
        assert lines, "update printed no output"
        summary = lines[-1]
        assert summary.get("done") is True
        return lines[:-1], summary

    def test_clean_eof_emits_summary_and_exits_zero(self, capsys, monkeypatch, stream_program):
        import io
        import json

        program, facts = stream_program
        feed = [
            json.dumps({"insert": ["src(2)"]}),
            "this is not json",
            json.dumps({"insert": ["src(3)"]}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(feed) + "\n"))
        exit_code = main(["update", program, "-d", facts, "--atom", "hit(2)"])
        captured = capsys.readouterr()
        assert exit_code == 0
        responses, summary = self._summary(captured.out)
        assert [r["ok"] for r in responses] == [True, False, True]
        assert summary == {
            "ok": True, "done": True, "applied": 2, "errors": 1, "interrupted": False,
        }

    def test_sigint_mid_stream_still_flushes_summary(self, capsys, monkeypatch, stream_program):
        import json

        program, facts = stream_program

        class InterruptedFeed:
            """One good delta, then Ctrl-C lands mid-read."""

            def __iter__(self):
                yield json.dumps({"insert": ["src(2)"]})
                raise KeyboardInterrupt

        monkeypatch.setattr("sys.stdin", InterruptedFeed())
        exit_code = main(["update", program, "-d", facts])
        captured = capsys.readouterr()
        assert exit_code == 0  # a Ctrl-C'd follow session is a clean exit
        responses, summary = self._summary(captured.out)
        assert [r["ok"] for r in responses] == [True]
        assert summary == {
            "ok": True, "done": True, "applied": 1, "errors": 0, "interrupted": True,
        }

    def test_closed_stdin_is_treated_as_eof(self, capsys, monkeypatch, stream_program):
        import json

        program, facts = stream_program

        class ClosingFeed:
            """The upstream pipe closes stdin under us (tail -f killed)."""

            def __iter__(self):
                yield json.dumps({"insert": ["src(2)"]})
                raise ValueError("I/O operation on closed file")

        monkeypatch.setattr("sys.stdin", ClosingFeed())
        exit_code = main(["update", program, "-d", facts])
        captured = capsys.readouterr()
        assert exit_code == 0
        _, summary = self._summary(captured.out)
        assert summary["interrupted"] is True and summary["applied"] == 1
