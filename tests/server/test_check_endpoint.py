"""The ``check`` op and the validation gate's 400 contract, both transports.

Protocol level: ``op: "check"`` returns structured diagnostics without
evaluating anything, and a validating service turns bad programs into
``ok: false`` responses that carry the diagnostics list.  HTTP level:
``POST /v1/check`` answers 200 with the findings; ``POST /v1/query`` with
a program that fails the static checks answers 400 with the same
structured payload.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.runtime.service import InferenceService
from repro.server.client import http_json
from repro.server.http import InferenceServer, ServerConfig
from repro.server.protocol import answer

CLEAN_PROGRAM = """
coin1(X, flip<0.5>[1, X]) :- src1(X).
hit1(X) :- coin1(X, 1).
"""
CLEAN_DATABASE = "src1(1)."
UNSAFE_PROGRAM = "h(X, Y) :- b(X).\nc(flipp<0.5>).\n"
COIN_PROGRAM = (
    "coin(flip<0.5>).\naux2 :- coin(1), not aux1.\n"
    "aux1 :- coin(1), not aux2.\n:- coin(0)."
)


@pytest.fixture()
def service() -> InferenceService:
    return InferenceService(cache_size=4, validate=True)


class TestCheckOp:
    def test_clean_program_reports_clean(self, service):
        response = answer(
            service,
            {"id": 1, "op": "check", "program": CLEAN_PROGRAM, "database": CLEAN_DATABASE},
        )
        assert response["ok"] and response["clean"]
        assert response["errors"] == 0
        assert response["id"] == 1
        assert response["program_digest"]
        assert "stratified" in response["strategy"]

    def test_check_reports_findings_as_data_not_failure(self, service):
        response = answer(service, {"op": "check", "program": UNSAFE_PROGRAM})
        assert response["ok"] is True  # the check itself ran
        assert response["clean"] is False
        assert response["errors"] >= 2
        codes = {d["code"] for d in response["diagnostics"]}
        assert codes >= {"GDL001", "GDL003"}
        spans = [d["span"] for d in response["diagnostics"] if "span" in d]
        assert spans and all("line" in span for span in spans)

    def test_check_carries_warnings_for_evaluable_programs(self, service):
        response = answer(service, {"op": "check", "program": COIN_PROGRAM})
        assert response["ok"] and response["clean"]
        assert response["warnings"] >= 1
        assert any(d["code"] == "GDL010" for d in response["diagnostics"])
        assert response["strategy"]["stratified"] is False

    def test_check_works_without_validation_enabled(self):
        response = answer(
            InferenceService(cache_size=4), {"op": "check", "program": UNSAFE_PROGRAM}
        )
        assert response["ok"] and not response["clean"]

    def test_check_does_not_populate_the_engine_cache(self, service):
        answer(service, {"op": "check", "program": CLEAN_PROGRAM, "database": CLEAN_DATABASE})
        counters = service.stats.snapshot()
        assert counters["hits"] == 0 and counters["misses"] == 0


class TestValidationGateResponses:
    def test_query_on_bad_program_returns_diagnostics(self, service):
        response = answer(
            service,
            {"id": "q1", "program": UNSAFE_PROGRAM, "queries": ["h(1, 1)"]},
        )
        assert response["ok"] is False and response["id"] == "q1"
        assert "DiagnosticsError" in response["error"]
        codes = {d["code"] for d in response["diagnostics"]}
        assert "GDL001" in codes

    def test_update_on_bad_program_returns_diagnostics(self, service):
        response = answer(
            service,
            {
                "program": UNSAFE_PROGRAM,
                "database": "b(1).",
                "delta": {"insert": ["b(2)"]},
            },
        )
        assert response["ok"] is False
        assert any(d["code"] == "GDL001" for d in response.get("diagnostics", []))

    def test_clean_queries_still_answer(self, service):
        response = answer(
            service,
            {"program": CLEAN_PROGRAM, "database": CLEAN_DATABASE, "queries": ["hit1(1)"]},
        )
        assert response["ok"] and response["results"] == [0.5]

    def test_without_validation_no_diagnostics_payload(self):
        response = answer(
            InferenceService(cache_size=4),
            {"program": UNSAFE_PROGRAM, "queries": ["h(1, 1)"]},
        )
        assert response["ok"] is False
        assert "diagnostics" not in response


class TestHttpCheckEndpoint:
    def _run_with_server(self, scenario):
        async def runner():
            server = InferenceServer(
                ServerConfig(port=0, shards=1, batch_window=0.0, validate=True)
            )
            await server.start()
            try:
                await server.wait_ready(timeout=20.0)
                return await scenario(server.port)
            finally:
                await server.stop(drain=False)

        return asyncio.run(runner())

    def test_check_route_and_400_on_invalid_query(self):
        async def scenario(port: int):
            check_clean = await http_json(
                "127.0.0.1", port, "POST", "/v1/check",
                {"id": "c1", "program": CLEAN_PROGRAM, "database": CLEAN_DATABASE},
            )
            check_bad = await http_json(
                "127.0.0.1", port, "POST", "/v1/check",
                {"id": "c2", "program": UNSAFE_PROGRAM},
            )
            query_bad = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"id": "q1", "program": UNSAFE_PROGRAM, "queries": ["h(1, 1)"]},
            )
            query_clean = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {
                    "id": "q2",
                    "program": CLEAN_PROGRAM,
                    "database": CLEAN_DATABASE,
                    "queries": ["hit1(1)"],
                },
            )
            return check_clean, check_bad, query_bad, query_clean

        check_clean, check_bad, query_bad, query_clean = self._run_with_server(scenario)

        status, payload = check_clean
        assert status == 200 and payload["ok"] and payload["clean"]

        # A check that *finds* problems still succeeds as a request.
        status, payload = check_bad
        assert status == 200 and payload["ok"] and not payload["clean"]
        assert any(d["code"] == "GDL001" for d in payload["diagnostics"])

        # The validation gate rejects the same program on the query route.
        status, payload = query_bad
        assert status == 400 and not payload["ok"] and payload["id"] == "q1"
        assert any(d["code"] == "GDL001" for d in payload["diagnostics"])

        status, payload = query_clean
        assert status == 200 and payload["ok"] and payload["results"] == [0.5]
