"""Admission control: token buckets, bounded shard queues, drain semantics."""

from __future__ import annotations

import pytest

from repro.server.admission import AdmissionController, Rejection, Ticket, TokenBucket


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=3.0, now=clock())
        assert [bucket.try_take(clock()) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(clock())
        assert wait == pytest.approx(0.5)  # one token at 2 tokens/second
        clock.advance(0.5)
        assert bucket.try_take(clock()) == 0.0

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, capacity=1.0, now=clock())
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == float("inf")
        clock.advance(3600)
        assert bucket.try_take(clock()) == float("inf")

    def test_tokens_cap_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=2.0, now=clock())
        clock.advance(60)
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) > 0.0


class TestAdmissionController:
    def controller(self, **kwargs) -> tuple[AdmissionController, FakeClock]:
        clock = FakeClock()
        defaults = dict(shards=2, max_queue=2, client_rate=1.0, client_burst=2.0, clock=clock)
        defaults.update(kwargs)
        return AdmissionController(**defaults), clock

    def test_client_budget_yields_429_with_retry_after(self):
        controller, clock = self.controller()
        first = controller.try_admit("alice", 0)
        second = controller.try_admit("alice", 0)
        assert isinstance(first, Ticket) and isinstance(second, Ticket)
        rejected = controller.try_admit("alice", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 429 and rejected.reason == "client_budget"
        assert rejected.retry_after == pytest.approx(1.0)
        # An unrelated client is unaffected (shard 1: alice's two live
        # tickets legitimately fill shard 0's max_queue=2 bound).
        assert isinstance(controller.try_admit("bob", 1), Ticket)
        # After the bucket refills, alice is admitted again.
        first.release()
        second.release()
        clock.advance(1.0)
        assert isinstance(controller.try_admit("alice", 0), Ticket)

    def test_shard_queue_bound_yields_503(self):
        controller, _ = self.controller(client_rate=1000.0, client_burst=1000.0)
        tickets = [controller.try_admit(f"c{i}", 0) for i in range(2)]
        assert all(isinstance(t, Ticket) for t in tickets)
        rejected = controller.try_admit("c9", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 503 and rejected.reason == "queue_full"
        # The *other* shard still has room.
        assert isinstance(controller.try_admit("c9", 1), Ticket)
        # Releasing frees a slot.
        tickets[0].release()
        assert isinstance(controller.try_admit("c10", 0), Ticket)

    def test_release_is_idempotent(self):
        controller, _ = self.controller()
        ticket = controller.try_admit("alice", 1)
        assert isinstance(ticket, Ticket)
        ticket.release()
        ticket.release()
        assert controller.inflight(1) == 0

    def test_ticket_is_a_context_manager(self):
        controller, _ = self.controller()
        with controller.try_admit("alice", 0) as ticket:
            assert ticket.shard == 0
            assert controller.inflight(0) == 1
        assert controller.inflight(0) == 0

    def test_draining_rejects_everything_with_503(self):
        controller, _ = self.controller()
        controller.begin_drain()
        rejected = controller.try_admit("alice", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 503 and rejected.reason == "draining"

    def test_client_bucket_lru_is_bounded(self):
        controller, _ = self.controller(client_rate=1000.0, client_burst=1000.0, max_queue=10_000)
        for index in range(AdmissionController.MAX_CLIENTS + 50):
            admitted = controller.try_admit(f"client-{index}", 0)
            assert isinstance(admitted, Ticket)
            admitted.release()
        assert len(controller._buckets) <= AdmissionController.MAX_CLIENTS
