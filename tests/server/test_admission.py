"""Admission control: token buckets, bounded shard queues, drain semantics."""

from __future__ import annotations

import pytest

from repro.server.admission import AdmissionController, Rejection, Ticket, TokenBucket


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, capacity=3.0, now=clock())
        assert [bucket.try_take(clock()) for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_take(clock())
        assert wait == pytest.approx(0.5)  # one token at 2 tokens/second
        clock.advance(0.5)
        assert bucket.try_take(clock()) == 0.0

    def test_zero_rate_never_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=0.0, capacity=1.0, now=clock())
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == float("inf")
        clock.advance(3600)
        assert bucket.try_take(clock()) == float("inf")

    def test_tokens_cap_at_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=100.0, capacity=2.0, now=clock())
        clock.advance(60)
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) > 0.0

    def test_no_refill_drift_under_sustained_load(self):
        """Millions of tiny refill steps must not leak or lose budget.

        The old implementation accumulated ``elapsed * rate`` per call; the
        representation error compounded with every request.  The epoch
        formulation computes refill from a fixed reference, so after any
        number of exactly-paced takes the bucket balance is still exact.
        """
        clock = FakeClock()
        rate = 3.0  # deliberately not a power of two: 1/3 never rounds exactly
        bucket = TokenBucket(rate=rate, capacity=5.0, now=clock())
        for _ in range(5):
            assert bucket.try_take(clock()) == 0.0
        # One token's worth of time per take, a million times.  The clock
        # itself accumulates float error, so an occasional take may miss by
        # a representation epsilon — but the miss must stay at machine
        # precision forever instead of compounding into real waits.
        step = 1.0 / rate
        rejections = 0
        for _ in range(1_000_000):
            clock.advance(step)
            wait = bucket.try_take(clock())
            if wait:
                assert wait < 1e-9, f"drifted: paced take reported {wait}s"
                rejections += 1
        assert rejections < 1000  # epsilon misses, not systematic leakage
        # No leaked budget either: every token still available now was
        # banked by one of those epsilon misses, never invented by drift.
        extra = 0
        while bucket.try_take(clock()) == 0.0:
            extra += 1
            assert extra <= rejections + 1, "bucket leaked budget it never earned"

    def test_epoch_rebases_when_idle_restores_capacity(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, capacity=2.0, now=clock())
        for _ in range(2):
            assert bucket.try_take(clock()) == 0.0
        clock.advance(1e9)  # a long idle must not bank 1e9 tokens
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == 0.0
        assert bucket.try_take(clock()) == pytest.approx(1.0)


class TestAdmissionController:
    def controller(self, **kwargs) -> tuple[AdmissionController, FakeClock]:
        clock = FakeClock()
        defaults = dict(shards=2, max_queue=2, client_rate=1.0, client_burst=2.0, clock=clock)
        defaults.update(kwargs)
        return AdmissionController(**defaults), clock

    def test_client_budget_yields_429_with_retry_after(self):
        controller, clock = self.controller()
        first = controller.try_admit("alice", 0)
        second = controller.try_admit("alice", 0)
        assert isinstance(first, Ticket) and isinstance(second, Ticket)
        rejected = controller.try_admit("alice", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 429 and rejected.reason == "client_budget"
        assert rejected.retry_after == pytest.approx(1.0)
        # An unrelated client is unaffected (shard 1: alice's two live
        # tickets legitimately fill shard 0's max_queue=2 bound).
        assert isinstance(controller.try_admit("bob", 1), Ticket)
        # After the bucket refills, alice is admitted again.
        first.release()
        second.release()
        clock.advance(1.0)
        assert isinstance(controller.try_admit("alice", 0), Ticket)

    def test_shard_queue_bound_yields_503(self):
        controller, _ = self.controller(client_rate=1000.0, client_burst=1000.0)
        tickets = [controller.try_admit(f"c{i}", 0) for i in range(2)]
        assert all(isinstance(t, Ticket) for t in tickets)
        rejected = controller.try_admit("c9", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 503 and rejected.reason == "queue_full"
        # The *other* shard still has room.
        assert isinstance(controller.try_admit("c9", 1), Ticket)
        # Releasing frees a slot.
        tickets[0].release()
        assert isinstance(controller.try_admit("c10", 0), Ticket)

    def test_release_is_idempotent(self):
        controller, _ = self.controller()
        ticket = controller.try_admit("alice", 1)
        assert isinstance(ticket, Ticket)
        ticket.release()
        ticket.release()
        assert controller.inflight(1) == 0

    def test_ticket_is_a_context_manager(self):
        controller, _ = self.controller()
        with controller.try_admit("alice", 0) as ticket:
            assert ticket.shard == 0
            assert controller.inflight(0) == 1
        assert controller.inflight(0) == 0

    def test_draining_rejects_everything_with_503(self):
        controller, _ = self.controller()
        controller.begin_drain()
        rejected = controller.try_admit("alice", 0)
        assert isinstance(rejected, Rejection)
        assert rejected.status == 503 and rejected.reason == "draining"

    def test_client_bucket_lru_is_bounded(self):
        controller, _ = self.controller(client_rate=1000.0, client_burst=1000.0, max_queue=10_000)
        for index in range(AdmissionController.MAX_CLIENTS + 50):
            admitted = controller.try_admit(f"client-{index}", 0)
            assert isinstance(admitted, Ticket)
            admitted.release()
        assert len(controller._buckets) <= AdmissionController.MAX_CLIENTS

    def test_retry_after_hint_is_jittered_but_body_value_is_exact(self):
        """The JSON body reports the exact wait; only the emitted header hint
        spreads, so a rejected burst does not retry in lock-step."""
        controller, _ = self.controller(
            client_rate=1.0, client_burst=1.0, retry_jitter=0.25, jitter_seed=7
        )
        hints = []
        for index in range(16):
            admitted = controller.try_admit("alice", 0)
            if isinstance(admitted, Rejection):
                assert admitted.retry_after == pytest.approx(1.0)  # exact
                assert 1.0 <= admitted.retry_after_hint <= 1.25
                hints.append(admitted.retry_after_hint)
        assert len(set(hints)) > 1  # the herd is actually spread

    def test_jitter_is_seeded_and_disablable(self):
        def hints(seed):
            controller, _ = self.controller(
                client_rate=1.0, client_burst=1.0, retry_jitter=0.25, jitter_seed=seed
            )
            controller.try_admit("alice", 0)
            return [controller.try_admit("alice", 0).retry_after_hint for _ in range(8)]

        assert hints(3) == hints(3)  # deterministic under a seed
        controller, _ = self.controller(client_rate=1.0, client_burst=1.0, retry_jitter=0.0)
        controller.try_admit("alice", 0)
        rejected = controller.try_admit("alice", 0)
        assert rejected.retry_after_hint == rejected.retry_after
