"""End-to-end HTTP/WebSocket serving under concurrency.

The load-bearing assertions of the serving subsystem:

* ≥ 32 simultaneous clients (a shared hot program plus distinct cold
  programs) receive answers **bit-identical** to direct
  :meth:`InferenceService.evaluate` calls;
* shard routing is deterministic, so the hot program's cache traffic all
  lands on one worker;
* overload produces ``429``/``503`` with ``Retry-After`` — never a crash,
  a hang, or unbounded queue growth;
* a killed shard worker is respawned transparently;
* draining finishes in-flight requests before the server stops, and the
  CLI process exits cleanly on SIGTERM.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.runtime.service import InferenceService
from repro.server.client import (
    HttpConnection,
    WebSocketConnection,
    http_json,
    wait_until_healthy,
)
from repro.server.http import InferenceServer, ServerConfig

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

COLUMN_TEMPLATE = """
coin{c}(X, flip<0.5>[{c}, X]) :- src{c}(X).
hit{c}(X) :- coin{c}(X, 1).
"""


def _program(columns: int, salt: str = "") -> str:
    body = "\n".join(COLUMN_TEMPLATE.format(c=c) for c in range(1, columns + 1))
    if salt:
        body += f"\nmarker_{salt}(X) :- src1(X).\n"
    return body


def _database(columns: int) -> str:
    return " ".join(f"src{c}(1)." for c in range(1, columns + 1))


HOT_PROGRAM = _program(4)
HOT_DATABASE = _database(4)
HOT_QUERIES = ["hit1(1)", "hit2(1)", {"type": "has_stable_model"}]


def _run(coro):
    return asyncio.run(coro)


async def _with_server(config: ServerConfig, scenario):
    server = InferenceServer(config)
    await server.start()
    try:
        await server.wait_ready(timeout=20.0)
        return await scenario(server)
    finally:
        await server.stop(drain=False)


class TestConcurrentServing:
    def test_32_clients_get_bit_identical_answers(self):
        """The acceptance-criteria core: heavy concurrency, exact answers."""
        cold_programs = [(_program(3, salt=f"c{i}"), _database(3)) for i in range(8)]

        async def scenario(server: InferenceServer):
            port = server.port

            async def hot_client(index: int):
                responses = []
                connection = await HttpConnection.open("127.0.0.1", port)
                try:
                    for round_ in range(3):
                        status, payload = await connection.post_json(
                            "/v1/query",
                            {
                                "id": f"hot-{index}-{round_}",
                                "program": HOT_PROGRAM,
                                "database": HOT_DATABASE,
                                "queries": HOT_QUERIES,
                            },
                            headers={"X-Client-Id": f"hot-{index}"},
                        )
                        responses.append((status, payload))
                finally:
                    await connection.close()
                return responses

            async def cold_client(index: int):
                program, database = cold_programs[index % len(cold_programs)]
                status, payload = await http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": f"cold-{index}",
                        "program": program,
                        "database": database,
                        "queries": ["hit1(1)", "hit3(1)"],
                    },
                    headers={"X-Client-Id": f"cold-{index}"},
                )
                return status, payload

            hot = [hot_client(i) for i in range(24)]
            cold = [cold_client(i) for i in range(8)]
            return await asyncio.gather(*hot, *cold)

        results = _run(
            _with_server(
                ServerConfig(port=0, shards=2, batch_window=0.002, max_queue=256), scenario
            )
        )
        hot_results, cold_results = results[:24], results[24:]

        direct = InferenceService()
        hot_expected = direct.evaluate(HOT_PROGRAM, HOT_DATABASE, HOT_QUERIES)
        for responses in hot_results:
            assert len(responses) == 3
            for index, (status, payload) in enumerate(responses):
                assert status == 200 and payload["ok"]
                assert payload["results"] == hot_expected  # bit-identical floats
                assert payload["id"].endswith(f"-{index}")
        for index, (status, payload) in enumerate(cold_results):
            program, database = cold_programs[index % len(cold_programs)]
            expected = direct.evaluate(program, database, ["hit1(1)", "hit3(1)"])
            assert status == 200 and payload["ok"]
            assert payload["results"] == expected
            assert payload["id"] == f"cold-{index}"

    def test_routing_is_deterministic_and_isolates_the_hot_shard(self):
        async def scenario(server: InferenceServer):
            port = server.port
            shard = server.router.shard_for(HOT_PROGRAM)
            assert shard == server.router.shard_for(HOT_PROGRAM)
            tasks = [
                http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": i,
                        "program": HOT_PROGRAM,
                        "database": HOT_DATABASE,
                        "queries": ["hit1(1)"],
                    },
                    headers={"X-Client-Id": f"client-{i}"},
                )
                for i in range(16)
            ]
            responses = await asyncio.gather(*tasks)
            stats = await server.router.shard_stats(timeout=5.0)
            return shard, responses, stats

        shard, responses, stats = _run(
            _with_server(ServerConfig(port=0, shards=2, batch_window=0.002), scenario)
        )
        assert all(status == 200 and payload["ok"] for status, payload in responses)
        hot_stats = stats[shard]["service"]
        other_stats = stats[1 - shard]["service"]
        # All hot traffic landed on one shard; the other shard's engine
        # cache never saw the program (per-shard isolation).
        assert hot_stats["hits"] + hot_stats["misses"] >= 1
        assert other_stats["hits"] == 0 and other_stats["misses"] == 0

    def test_overload_sheds_with_429_not_queue_growth(self):
        async def scenario(server: InferenceServer):
            port = server.port
            tasks = [
                http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": i,
                        "program": HOT_PROGRAM,
                        "database": HOT_DATABASE,
                        "queries": ["hit1(1)"],
                    },
                    headers={"X-Client-Id": "greedy"},  # one client, many requests
                )
                for i in range(24)
            ]
            responses = await asyncio.gather(*tasks)
            healthz = await http_json("127.0.0.1", port, "GET", "/healthz")
            return responses, healthz

        responses, healthz = _run(
            _with_server(
                ServerConfig(
                    port=0, shards=1, batch_window=0.0, client_rate=0.001, client_burst=4
                ),
                scenario,
            )
        )
        statuses = sorted(status for status, _ in responses)
        assert statuses.count(200) == 4  # exactly the burst budget
        assert statuses.count(429) == 20
        for status, payload in responses:
            if status == 429:
                assert not payload["ok"] and payload["retry_after"] > 0
                assert payload["id"] is not None
        # The server survived the burst and still answers.
        assert healthz[0] == 200 and healthz[1]["ok"]

    def test_queue_full_sheds_with_503(self):
        # One shard, queue bound 1, no batching: concurrent requests beyond
        # the single in-flight slot must answer 503 (never hang or crash).
        slow_program = _program(10)
        slow_database = _database(10)

        async def scenario(server: InferenceServer):
            port = server.port
            tasks = [
                http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": i,
                        "program": slow_program,
                        "database": slow_database,
                        "queries": ["hit1(1)"],
                    },
                    headers={"X-Client-Id": f"client-{i}"},
                )
                for i in range(12)
            ]
            return await asyncio.gather(*tasks)

        responses = _run(
            _with_server(
                ServerConfig(port=0, shards=1, batch_window=0.0, max_queue=1), scenario
            )
        )
        statuses = [status for status, _ in responses]
        assert 200 in statuses and 503 in statuses
        expected = InferenceService().evaluate(slow_program, slow_database, ["hit1(1)"])
        for status, payload in responses:
            if status == 200:
                assert payload["results"] == expected
            else:
                assert status == 503 and not payload["ok"]

    def test_worker_crash_respawns_through_http(self):
        async def scenario(server: InferenceServer):
            port = server.port
            request = {
                "program": HOT_PROGRAM,
                "database": HOT_DATABASE,
                "queries": ["hit1(1)"],
            }
            first = await http_json(
                "127.0.0.1", port, "POST", "/v1/query", dict(request, id="before")
            )
            shard = server.router.shard_for(HOT_PROGRAM)
            os.kill(server.router.worker_pids()[shard], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while server.router.worker_alive(shard) and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            second = await http_json(
                "127.0.0.1", port, "POST", "/v1/query", dict(request, id="after")
            )
            return first, second, server.router.respawns[shard]

        first, second, respawns = _run(
            _with_server(ServerConfig(port=0, shards=2, batch_window=0.002), scenario)
        )
        assert first[0] == 200 and first[1]["results"] == [0.5]
        assert second[0] == 200 and second[1]["results"] == [0.5]
        assert respawns == 1


class TestTransportsAgree:
    def test_websocket_round_trip_matches_http_and_direct(self):
        async def scenario(server: InferenceServer):
            port = server.port
            ws = await WebSocketConnection.open("127.0.0.1", port)
            try:
                await ws.send_json(
                    {
                        "id": "ws-1",
                        "program": HOT_PROGRAM,
                        "database": HOT_DATABASE,
                        "queries": HOT_QUERIES,
                    }
                )
                ws_response = await ws.recv_json()
                await ws.send_json({"id": "ws-2", "queries": ["hit1(1)"]})  # missing program
                ws_error = await ws.recv_json()
            finally:
                await ws.close()
            http_response = await http_json(
                "127.0.0.1",
                port,
                "POST",
                "/v1/query",
                {
                    "id": "http-1",
                    "program": HOT_PROGRAM,
                    "database": HOT_DATABASE,
                    "queries": HOT_QUERIES,
                },
            )
            return ws_response, ws_error, http_response

        ws_response, ws_error, http_response = _run(
            _with_server(ServerConfig(port=0, shards=1, batch_window=0.002), scenario)
        )
        expected = InferenceService().evaluate(HOT_PROGRAM, HOT_DATABASE, HOT_QUERIES)
        assert ws_response["ok"] and ws_response["results"] == expected
        assert ws_response["id"] == "ws-1"
        assert not ws_error["ok"] and ws_error["id"] == "ws-2" and ws_error["status"] == 400
        assert http_response[1]["results"] == expected

    def test_batch_and_sample_routes(self):
        async def scenario(server: InferenceServer):
            port = server.port
            batch = await http_json(
                "127.0.0.1",
                port,
                "POST",
                "/v1/batch",
                {
                    "id": "b",
                    "program": HOT_PROGRAM,
                    "database": HOT_DATABASE,
                    "queries": HOT_QUERIES,
                },
            )
            sample = await http_json(
                "127.0.0.1",
                port,
                "POST",
                "/v1/sample",
                {
                    "id": "s",
                    "program": HOT_PROGRAM,
                    "database": HOT_DATABASE,
                    "queries": ["hit1(1)"],
                    "seed": 11,
                    "half_width": 0.05,
                },
            )
            return batch, sample

        batch, sample = _run(
            _with_server(ServerConfig(port=0, shards=1, batch_window=0.0), scenario)
        )
        direct = InferenceService()
        assert batch[0] == 200
        assert batch[1]["results"] == direct.evaluate(HOT_PROGRAM, HOT_DATABASE, HOT_QUERIES)
        assert sample[0] == 200
        expected = direct.estimate(
            HOT_PROGRAM, HOT_DATABASE, "hit1(1)", target_half_width=0.05, seed=11
        ).value
        assert sample[1]["results"] == [expected]  # seeded adaptive sampling is deterministic

    def test_metrics_exposes_histograms_and_shard_counters(self):
        async def scenario(server: InferenceServer):
            port = server.port
            for index in range(3):
                await http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": index,
                        "program": HOT_PROGRAM,
                        "database": HOT_DATABASE,
                        "queries": ["hit1(1)"],
                    },
                )
            status, body = await http_json("127.0.0.1", port, "GET", "/metrics")
            return status, body if isinstance(body, str) else body.decode("utf-8")

        status, text = _run(
            _with_server(ServerConfig(port=0, shards=2, batch_window=0.002), scenario)
        )
        assert status == 200
        assert 'gdatalog_requests_total{route="query",status="200"} 3' in text
        assert "gdatalog_request_seconds_bucket" in text
        assert 'gdatalog_service_cache{counter="hits",shard=' in text
        assert 'gdatalog_join_counters{counter="index_probes",shard=' in text
        assert "gdatalog_shard_up" in text
        assert "gdatalog_microbatch_batches_total" in text


class TestDrain:
    def test_drain_finishes_inflight_then_rejects_new(self):
        async def scenario(server: InferenceServer):
            port = server.port
            slow = {
                "id": "slow",
                "program": _program(11),
                "database": _database(11),
                "queries": ["hit1(1)"],
            }
            task = asyncio.create_task(
                http_json("127.0.0.1", port, "POST", "/v1/query", slow)
            )
            await asyncio.sleep(0.1)  # the request is in flight
            server.begin_drain()
            status, payload = await task
            drained = await server.drain(timeout=20.0)
            return status, payload, drained

        status, payload, drained = _run(
            _with_server(ServerConfig(port=0, shards=1, batch_window=0.0), scenario)
        )
        assert status == 200 and payload["ok"] and payload["id"] == "slow"
        assert drained

    def test_healthz_reports_draining(self):
        async def scenario(server: InferenceServer):
            port = server.port
            # Drain with an open keep-alive connection: the listener closes,
            # but the established connection can still read the 503 verdict.
            connection = await HttpConnection.open("127.0.0.1", port)
            try:
                server.begin_drain()
                response = await connection.request("GET", "/healthz")
                return response.status, response.json(), response.headers
            finally:
                await connection.close()

        status, payload, headers = _run(
            _with_server(ServerConfig(port=0, shards=1), scenario)
        )
        assert status == 503 and payload["draining"]
        assert headers.get("retry-after") == "1"


class TestServeCliHttp:
    def _spawn(self, *extra_args: str) -> subprocess.Popen:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--http",
                "127.0.0.1:0",
                "--shards",
                "1",
                *extra_args,
            ],
            env=env,
            cwd=str(REPO_ROOT),
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )

    @staticmethod
    def _port_from_stderr(process: subprocess.Popen, timeout: float = 30.0) -> int:
        deadline = time.monotonic() + timeout
        line = ""
        while time.monotonic() < deadline:
            line = process.stderr.readline()
            if "serving on http://" in line:
                return int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
            if process.poll() is not None:
                break
            time.sleep(0.01)
        raise AssertionError(f"server did not announce its port (last line: {line!r})")

    def test_sigterm_drains_and_exits_cleanly(self):
        process = self._spawn()
        try:
            port = self._port_from_stderr(process)

            async def round_trip():
                await wait_until_healthy("127.0.0.1", port, timeout=20.0)
                return await http_json(
                    "127.0.0.1",
                    port,
                    "POST",
                    "/v1/query",
                    {
                        "id": "cli",
                        "program": HOT_PROGRAM,
                        "database": HOT_DATABASE,
                        "queries": ["hit1(1)"],
                    },
                )

            status, payload = _run(round_trip())
            assert status == 200 and payload["results"] == [0.5]
            process.send_signal(signal.SIGTERM)
            stdout, stderr = process.communicate(timeout=30)
            assert process.returncode == 0, stderr
            assert "drained cleanly" in stderr
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10)

    def test_http_flag_parsing_errors_are_readable(self):
        from repro.cli import main

        assert main(["serve", "--http", "not-a-port"]) == 1


STREAM_PROGRAM = """
coin(X, flip<0.5>[X]) :- src(X).
hit(X) :- coin(X, 1).
base(X) :- src(X), aux(X).
"""
STREAM_DATABASE = "src(1). src(2). aux(1)."


class TestStreamingUpdates:
    """POST /v1/update: maintain, answer post-delta, survive crashes."""

    def test_update_round_trips_through_the_sharded_server(self):
        async def scenario(server: InferenceServer):
            port = server.port
            opening = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {
                    "id": "open", "stream": "lap",
                    "program": STREAM_PROGRAM, "database": STREAM_DATABASE,
                    "queries": ["base(1)", "base(2)"],
                },
            )
            update = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {
                    "id": "u1", "stream": "lap",
                    "delta": {"insert": ["aux(2)"]},
                    "queries": ["base(2)", "hit(2)"],
                },
            )
            follow_up = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"id": "q2", "stream": "lap", "queries": ["base(2)"]},
            )
            retract = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {
                    "id": "u2", "stream": "lap",
                    "delta": {"retract": ["aux(1)"]},
                    "queries": ["base(1)"],
                },
            )
            metrics = await http_json("127.0.0.1", port, "GET", "/metrics")
            return opening, update, follow_up, retract, metrics

        opening, update, follow_up, retract, metrics = _run(
            _with_server(ServerConfig(port=0, shards=2, batch_window=0.0), scenario)
        )
        assert opening[0] == 200 and opening[1]["results"] == [1.0, 0.0]
        assert update[0] == 200 and update[1]["results"] == [1.0, 0.5]
        assert update[1]["update"]["mode"] == "patch"
        # Post-delta marginals match a direct service over the same state.
        direct = InferenceService()
        direct_result = direct.update(
            STREAM_PROGRAM, STREAM_DATABASE, {"insert": ["aux(2)"]}
        )
        assert update[1]["database"] == direct_result.database_source
        assert update[1]["results"] == direct.evaluate(
            STREAM_PROGRAM, direct_result.database_source, ["base(2)", "hit(2)"]
        )
        assert follow_up[0] == 200 and follow_up[1]["results"] == [1.0]
        assert retract[0] == 200 and retract[1]["results"] == [0.0]
        body = metrics[1]
        text = body.decode() if isinstance(body, bytes) else str(body)
        assert "gdatalog_updates_applied_total 2" in text
        assert "gdatalog_subtrees_invalidated_total" in text
        assert "gdatalog_subtrees_reused_total" in text
        assert "gdatalog_chase_reuse_ratio" in text

    def test_bad_delta_is_a_400_not_a_crash(self):
        async def scenario(server: InferenceServer):
            return await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {
                    "program": STREAM_PROGRAM, "database": STREAM_DATABASE,
                    "delta": {"isnert": ["aux(2)"]},
                },
            )

        status, payload = _run(
            _with_server(ServerConfig(port=0, shards=1, batch_window=0.0), scenario)
        )
        assert status == 400 and not payload["ok"]
        assert "unknown delta spec keys" in payload["error"]

    def test_worker_crash_mid_stream_rebuilds_from_the_front_end_state(self):
        async def scenario(server: InferenceServer):
            port = server.port
            await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {
                    "stream": "lap",
                    "program": STREAM_PROGRAM, "database": STREAM_DATABASE,
                    "queries": ["base(1)"],
                },
            )
            await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {"stream": "lap", "delta": {"insert": ["aux(2)"]}},
            )
            shard = server.router.shard_for(STREAM_PROGRAM)
            os.kill(server.router.worker_pids()[shard], signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while server.router.worker_alive(shard) and time.monotonic() < deadline:
                await asyncio.sleep(0.02)
            # The stream's post-delta database lives in the front end, so
            # the respawned (cold) worker answers correctly from the
            # forwarded request alone.
            after = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {
                    "stream": "lap",
                    "delta": {"retract": ["aux(1)"]},
                    "queries": ["base(1)", "base(2)"],
                },
            )
            return after, server.router.respawns[shard]

        after, respawns = _run(
            _with_server(ServerConfig(port=0, shards=2, batch_window=0.0), scenario)
        )
        assert after[0] == 200 and after[1]["results"] == [0.0, 1.0]
        assert respawns == 1
