"""Histogram bucketing and Prometheus text rendering."""

from __future__ import annotations

import pytest

from repro.server.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        counts, total_sum, total_count = histogram.snapshot()
        assert counts == [1, 1, 1, 1]  # one per bucket, one in +Inf
        assert total_count == 4
        assert total_sum == pytest.approx(5.555)

    def test_quantiles_report_bucket_upper_bounds(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(98):
            histogram.observe(0.005)
        histogram.observe(0.5)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.99) == 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0


class TestMetricsRegistry:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.describe("gdatalog_requests_total", "Requests answered")
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "200"})
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "200"})
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "429"})
        registry.set_gauge("gdatalog_shard_up", 1, {"shard": "0"})
        registry.observe("gdatalog_request_seconds", 0.004, {"route": "query"})
        registry.observe("gdatalog_request_seconds", 0.3, {"route": "query"})
        text = registry.render()
        assert "# HELP gdatalog_requests_total Requests answered" in text
        assert "# TYPE gdatalog_requests_total counter" in text
        assert 'gdatalog_requests_total{route="query",status="200"} 2' in text
        assert 'gdatalog_requests_total{route="query",status="429"} 1' in text
        assert "# TYPE gdatalog_shard_up gauge" in text
        assert 'gdatalog_shard_up{shard="0"} 1' in text
        assert "# TYPE gdatalog_request_seconds histogram" in text
        assert 'gdatalog_request_seconds_bucket{le="0.005",route="query"} 1' in text
        assert 'gdatalog_request_seconds_bucket{le="+Inf",route="query"} 2' in text
        assert 'gdatalog_request_seconds_count{route="query"} 2' in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.004, 20.0):
            registry.observe("latency", value)
        text = registry.render()
        assert 'latency_bucket{le="0.001"} 1' in text
        assert 'latency_bucket{le="0.0025"} 2' in text
        assert 'latency_bucket{le="0.005"} 3' in text
        assert 'latency_bucket{le="10"} 3' in text
        assert 'latency_bucket{le="+Inf"} 4' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("errors_total", {"message": 'said "hi"\\there'})
        text = registry.render()
        assert r'message="said \"hi\"\\there"' in text

    def test_counter_value_reads_back(self):
        registry = MetricsRegistry()
        registry.inc("hits", {"shard": "1"}, amount=3)
        assert registry.counter_value("hits", {"shard": "1"}) == 3
        assert registry.counter_value("hits", {"shard": "2"}) == 0
