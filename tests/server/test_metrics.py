"""Histogram bucketing and Prometheus text rendering."""

from __future__ import annotations

import pytest

from repro.server.metrics import Histogram, MetricsRegistry


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        counts, total_sum, total_count = histogram.snapshot()
        assert counts == [1, 1, 1, 1]  # one per bucket, one in +Inf
        assert total_count == 4
        assert total_sum == pytest.approx(5.555)

    def test_quantiles_report_bucket_upper_bounds(self):
        histogram = Histogram(buckets=(0.01, 0.1, 1.0))
        for _ in range(98):
            histogram.observe(0.005)
        histogram.observe(0.5)
        histogram.observe(0.5)
        assert histogram.quantile(0.5) == 0.01
        assert histogram.quantile(0.99) == 1.0

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().quantile(0.99) == 0.0


class TestMetricsRegistry:
    def test_counters_gauges_histograms_render(self):
        registry = MetricsRegistry()
        registry.describe("gdatalog_requests_total", "Requests answered")
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "200"})
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "200"})
        registry.inc("gdatalog_requests_total", {"route": "query", "status": "429"})
        registry.set_gauge("gdatalog_shard_up", 1, {"shard": "0"})
        registry.observe("gdatalog_request_seconds", 0.004, {"route": "query"})
        registry.observe("gdatalog_request_seconds", 0.3, {"route": "query"})
        text = registry.render()
        assert "# HELP gdatalog_requests_total Requests answered" in text
        assert "# TYPE gdatalog_requests_total counter" in text
        assert 'gdatalog_requests_total{route="query",status="200"} 2' in text
        assert 'gdatalog_requests_total{route="query",status="429"} 1' in text
        assert "# TYPE gdatalog_shard_up gauge" in text
        assert 'gdatalog_shard_up{shard="0"} 1' in text
        assert "# TYPE gdatalog_request_seconds histogram" in text
        assert 'gdatalog_request_seconds_bucket{le="0.005",route="query"} 1' in text
        assert 'gdatalog_request_seconds_bucket{le="+Inf",route="query"} 2' in text
        assert 'gdatalog_request_seconds_count{route="query"} 2' in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.004, 20.0):
            registry.observe("latency", value)
        text = registry.render()
        assert 'latency_bucket{le="0.001"} 1' in text
        assert 'latency_bucket{le="0.0025"} 2' in text
        assert 'latency_bucket{le="0.005"} 3' in text
        assert 'latency_bucket{le="10"} 3' in text
        assert 'latency_bucket{le="+Inf"} 4' in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.inc("errors_total", {"message": 'said "hi"\\there'})
        text = registry.render()
        assert r'message="said \"hi\"\\there"' in text

    def test_counter_value_reads_back(self):
        registry = MetricsRegistry()
        registry.inc("hits", {"shard": "1"}, amount=3)
        assert registry.counter_value("hits", {"shard": "1"}) == 3
        assert registry.counter_value("hits", {"shard": "2"}) == 0


class TestStreamingUpdateMetrics:
    """The /v1/update counters and the chase-reuse-ratio gauge."""

    def _server(self):
        from repro.server.http import InferenceServer, ServerConfig

        # Never started: _record_update only touches the metrics registry.
        return InferenceServer(ServerConfig(shards=1))

    def test_one_report_registers_all_four_series(self):
        server = self._server()
        server._record_update(
            {"mode": "patch", "invalidated_subtrees": 0, "reused_subtrees": 4}
        )
        text = server.metrics.render()
        assert "gdatalog_updates_applied_total 1" in text
        assert "gdatalog_subtrees_invalidated_total 0" in text
        assert "gdatalog_subtrees_reused_total 4" in text
        assert "gdatalog_chase_reuse_ratio 1" in text

    def test_reuse_ratio_is_cumulative_across_updates(self):
        server = self._server()
        server._record_update({"invalidated_subtrees": 1, "reused_subtrees": 3})
        server._record_update({"invalidated_subtrees": 2, "reused_subtrees": 2})
        assert server.metrics.counter_value("gdatalog_updates_applied_total") == 2
        assert server.metrics.counter_value("gdatalog_subtrees_invalidated_total") == 3
        assert server.metrics.counter_value("gdatalog_subtrees_reused_total") == 5
        assert "gdatalog_chase_reuse_ratio 0.625" in server.metrics.render()

    def test_rebuild_reports_drive_the_ratio_to_zero(self):
        server = self._server()
        server._record_update({"mode": "rebuild", "invalidated_subtrees": 0, "reused_subtrees": 0})
        assert "gdatalog_chase_reuse_ratio 0" in server.metrics.render()

    def test_update_metrics_carry_help_text(self):
        server = self._server()
        server._record_update({"invalidated_subtrees": 0, "reused_subtrees": 1})
        text = server.metrics.render()
        assert "# HELP gdatalog_updates_applied_total" in text
        assert "# HELP gdatalog_chase_reuse_ratio" in text
