"""Seeded chaos: every injected fault answers right or fails retryably.

The suite's single invariant: under any injected fault the server is
**never wrong and never hung** — it either answers bit-identically to an
un-faulted run, or it answers a typed, retryable error the client can act
on.  Faults are deterministic (:mod:`repro.server.faults` counts hits and
seeds its RNG), so every failure here reproduces exactly.

Worker-side faults (``worker.*``) are configured on the process-wide
:data:`FAULTS` injector *before* the server starts: shard workers are
forked, so they inherit the armed specs while keeping their own hit
counters — a respawned worker starts counting from zero, which is what
the respawn-race tests rely on.  Parent-side faults (``pipe.*``,
``journal.*``) are configured after startup so readiness probes do not
consume hits.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.exceptions import ReproError
from repro.runtime.service import InferenceService
from repro.server import faults
from repro.server.client import (
    RetryExhausted,
    RetryPolicy,
    http_json,
    http_json_retry,
)
from repro.server.faults import FaultInjector, FaultSpec
from repro.server.http import InferenceServer, ServerConfig

PROGRAM = (
    "coin(X, flip<0.5>[X]) :- src(X).\n"
    "hit(X) :- coin(X, 1).\n"
    "base(X) :- src(X), aux(X)."
)
DATABASE = "src(1). src(2). aux(1)."


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.FAULTS.clear()
    yield
    faults.FAULTS.clear()


def _run(coro):
    return asyncio.run(coro)


async def _with_server(config: ServerConfig, scenario):
    server = InferenceServer(config)
    await server.start()
    try:
        await server.wait_ready(timeout=20.0)
        return await scenario(server)
    finally:
        await server.stop(drain=False)


def _oracle_database(deltas) -> str:
    service = InferenceService(cache_size=8)
    return service.replay(PROGRAM, DATABASE, deltas).database_source


class TestFaultInjectorUnit:
    def test_at_fires_exactly_once(self):
        injector = FaultInjector([FaultSpec(point="p", at=2)])
        assert injector.should_fire("p") is None
        assert injector.should_fire("p") is not None
        assert injector.should_fire("p") is None
        assert injector.counters() == {"p": 1}

    def test_every_fires_periodically_with_times_cap(self):
        injector = FaultInjector([FaultSpec(point="p", every=2, times=2)])
        fired = [injector.should_fire("p") is not None for _ in range(8)]
        assert fired == [False, True, False, True, False, False, False, False]

    def test_probability_is_deterministic_under_a_seed(self):
        def trace(seed):
            injector = FaultInjector([FaultSpec(point="p", probability=0.5)], seed=seed)
            return [injector.should_fire("p") is not None for _ in range(64)]

        assert trace(7) == trace(7)
        assert trace(7) != trace(8)  # astronomically unlikely to collide
        assert any(trace(7)) and not all(trace(7))

    def test_unarmed_point_is_a_no_op(self):
        injector = FaultInjector()
        assert injector.should_fire("anything") is None
        assert injector.injected_total == 0
        assert not injector.active

    def test_spec_validation_rejects_nonsense(self):
        with pytest.raises(ReproError):
            FaultSpec(point="p")  # no trigger
        with pytest.raises(ReproError):
            FaultSpec(point="p", at=1, every=2)  # two triggers
        with pytest.raises(ReproError):
            FaultSpec(point="p", at=0)
        with pytest.raises(ReproError):
            FaultSpec(point="p", probability=1.5)
        with pytest.raises(ReproError):
            FaultSpec.from_dict({"point": "p", "at": 1, "bogus": True})

    def test_env_round_trip(self, monkeypatch):
        source = FaultInjector(
            [FaultSpec(point="a", at=3, times=1), FaultSpec(point="b", probability=0.25)],
            seed=42,
        )
        for name, value in source.env().items():
            monkeypatch.setenv(name, value)
        target = FaultInjector()
        assert faults.install_from_env(target) is True
        assert target.active
        assert {spec.point for spec in target._specs.values()} == {"a", "b"}

    def test_install_from_env_is_a_no_op_when_unset(self, monkeypatch):
        monkeypatch.delenv(faults.ENV_SPECS, raising=False)
        target = FaultInjector([FaultSpec(point="keep", at=1)])
        assert faults.install_from_env(target) is False
        assert target.active  # programmatic config untouched


class TestWorkerKillDuringUpdate:
    def test_retry_once_absorbs_a_mid_update_worker_kill(self, tmp_path):
        """Satellite: a worker killed racing an in-flight update never
        double-applies — the transparent retry lands on a fresh worker and
        the final state is bit-identical to an un-faulted run."""
        # The worker dies on the 2nd update *it* sees; the respawned worker
        # restarts its hit counter, so the server's retry-once succeeds.
        faults.FAULTS.configure([FaultSpec(point="worker.update", at=2)])
        deltas = [{"insert": ["src(3)"]}, {"insert": ["src(4)"]}]
        expected = _oracle_database(deltas)

        async def scenario(server: InferenceServer):
            port = server.port
            status, first = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": deltas[0]},
            )
            assert status == 200 and first["ok"]
            status, second = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {"stream": "s", "delta": deltas[1]},
            )
            assert status == 200 and second["ok"]
            assert second["database"] == expected
            assert server.router.respawns[0] == 1
            # The journal agrees: exactly two deltas, applied exactly once.
            stats = server.journal.stats()
            assert stats["records_appended"] == 3  # open + 2 deltas
            # And the served stream answers from the post-delta state.
            status, queried = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"stream": "s", "queries": ["hit(4)"]},
            )
            assert status == 200 and queried["results"] == [0.5]

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), scenario
        ))

    def test_double_kill_answers_typed_retryable_503(self):
        """Every fresh worker dies on its first update: after the one
        transparent retry the server answers 503, never hangs or lies."""
        faults.FAULTS.configure([FaultSpec(point="worker.update", at=1)])

        async def scenario(server: InferenceServer):
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": {"insert": ["src(3)"]}},
            )
            assert status == 503
            assert payload["retryable"] is True
            assert payload["error_kind"] == "worker_crashed"
            assert payload["retry_after"] > 0
            # Queries do not hit the update fault: the server still answers.
            status, queried = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/query",
                {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]},
            )
            assert status == 200 and queried["results"] == [0.5]

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))


class TestPipeFaults:
    @pytest.mark.parametrize("point", ["pipe.send", "pipe.frame"])
    def test_broken_pipe_is_typed_retryable_then_recovers(self, point):
        async def scenario(server: InferenceServer):
            port = server.port
            # Arm only after readiness probes are done with the pipes.
            faults.FAULTS.configure([FaultSpec(point=point, at=1)])
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]},
            )
            assert status == 503
            assert payload["retryable"] is True
            assert payload["error_kind"] == "worker_crashed"
            # The very next request respawns the worker and answers exactly.
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]},
            )
            assert status == 200 and payload["results"] == [0.5]

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))

    def test_update_rides_through_a_send_fault_via_retry_once(self):
        async def scenario(server: InferenceServer):
            faults.FAULTS.configure([FaultSpec(point="pipe.send", at=1)])
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": {"insert": ["src(3)"]}},
            )
            assert status == 200 and payload["ok"]
            assert payload["database"] == _oracle_database([{"insert": ["src(3)"]}])

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))


class TestDeadline:
    def test_slow_shard_answers_504_then_identical_answer(self):
        # The first request sleeps past the deadline; the fault is capped to
        # one firing, so the retry answers — bit-identically.
        faults.FAULTS.configure(
            [FaultSpec(point="worker.slow", every=1, times=1, delay=1.0)]
        )

        async def scenario(server: InferenceServer):
            port = server.port
            request = {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]}
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/query", request
            )
            assert status == 504
            assert payload["retryable"] is True
            assert payload["error_kind"] == "deadline"
            # The single worker is still sleeping off the injected delay;
            # retry after it drains (a client would back off here anyway).
            await asyncio.sleep(1.2)
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/query", request
            )
            assert status == 200 and payload["results"] == [0.5]

        _run(_with_server(
            ServerConfig(port=0, shards=1, request_timeout=0.4), scenario
        ))

    def test_deadline_records_no_state(self, tmp_path):
        """A timed-out update leaves no journal record and no stream change:
        the 504 promise ('safe to retry') is literal."""
        faults.FAULTS.configure(
            [FaultSpec(point="worker.slow", every=1, times=1, delay=1.0)]
        )

        async def scenario(server: InferenceServer):
            port = server.port
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": {"insert": ["src(3)"]}},
            )
            assert status == 504
            # Only the stream open was journaled — never the unacked delta.
            assert server.journal.stats()["records_appended"] <= 1
            await asyncio.sleep(1.2)  # let the worker sleep off the fault
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/update",
                {"stream": "s", "delta": {"insert": ["src(3)"]}},
            )
            assert status == 200
            assert payload["database"] == _oracle_database([{"insert": ["src(3)"]}])

        _run(_with_server(
            ServerConfig(port=0, shards=1, request_timeout=0.4,
                         journal_dir=str(tmp_path)),
            scenario,
        ))


class TestJournalFaults:
    def test_fsync_fault_is_503_and_a_restart_recovers(self, tmp_path):
        delta = {"insert": ["src(3)"]}

        async def faulty(server: InferenceServer):
            # Hit 1 is the stream-open append; the fault targets the delta.
            faults.FAULTS.configure([FaultSpec(point="journal.fsync", at=2)])
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": delta},
            )
            assert status == 503
            assert payload["retryable"] is True
            assert payload["error_kind"] == "journal_error"
            # Failed is failed: the journal refuses new appends until reopen.
            faults.FAULTS.clear()
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "delta": delta},
            )
            assert status == 503

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), faulty
        ))
        faults.FAULTS.clear()

        async def recovered(server: InferenceServer):
            # The client retries the unacked delta on the restarted server;
            # set semantics + dedup make it exactly-once regardless of
            # whether the faulted append reached the disk.
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "delta": delta},
            )
            assert status == 200
            assert payload["database"] == _oracle_database([delta])

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), recovered
        ))

    def test_torn_append_is_503_and_truncated_on_restart(self, tmp_path):
        async def faulty(server: InferenceServer):
            # Hit 1 is the stream-open append; tear the delta append.
            faults.FAULTS.configure([FaultSpec(point="journal.torn", at=2)])
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": {"insert": ["src(3)"]}},
            )
            assert status == 503
            assert payload["error_kind"] == "journal_error"

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), faulty
        ))
        faults.FAULTS.clear()

        async def recovered(server: InferenceServer):
            assert server.journal.stats()["truncations"] == 1
            # The torn record vanished; the stream is back at its pre-delta
            # state and accepts the retry.
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "delta": {"insert": ["src(3)"]}},
            )
            assert status == 200
            assert payload["database"] == _oracle_database([{"insert": ["src(3)"]}])

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), recovered
        ))


class TestMalformedInput:
    def test_garbage_http_answers_400_and_the_server_survives(self):
        async def scenario(server: InferenceServer):
            port = server.port
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(b"\x00\xffTHIS IS NOT HTTP\r\n\r\n")
            await writer.drain()
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            # Rejected with a 4xx (or the connection dropped) — never hung.
            assert line == b"" or b" 400 " in line or b" 404 " in line
            writer.close()
            status, payload = await http_json(
                "127.0.0.1", port, "POST", "/v1/query",
                {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]},
            )
            assert status == 200 and payload["results"] == [0.5]

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))

    def test_non_object_json_is_a_typed_400(self):
        async def scenario(server: InferenceServer):
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/query", [1, 2, 3]
            )
            assert status == 400
            assert payload["retryable"] is False
            assert payload["error_kind"] == "bad_request"

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))


class TestClientRetries:
    def test_retry_rides_through_a_transient_crash(self):
        async def scenario(server: InferenceServer):
            faults.FAULTS.configure([FaultSpec(point="pipe.frame", at=1)])
            status, payload = await http_json_retry(
                "127.0.0.1", server.port, "POST", "/v1/query",
                {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]},
                policy=RetryPolicy(attempts=3, base_delay=0.01, seed=1),
            )
            assert status == 200 and payload["results"] == [0.5]

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))

    def test_retry_exhausted_carries_the_last_typed_error(self):
        async def scenario(server: InferenceServer):
            request = {"program": PROGRAM, "database": DATABASE, "queries": ["hit(1)"]}
            # The client's one-token budget never refills (rate 0): the
            # first request spends it, every retry after that answers 429.
            status, _ = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/query", request
            )
            assert status == 200
            with pytest.raises(RetryExhausted) as excinfo:
                await http_json_retry(
                    "127.0.0.1", server.port, "POST", "/v1/query", request,
                    policy=RetryPolicy(attempts=2, base_delay=0.01, max_delay=0.02, seed=1),
                )
            assert excinfo.value.status == 429
            assert excinfo.value.payload["error_kind"] == "client_budget"
            assert excinfo.value.payload["retryable"] is True

        _run(_with_server(
            ServerConfig(port=0, shards=1, client_rate=0.0, client_burst=1.0), scenario
        ))

    def test_backoff_is_seeded_and_bounded(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=1.0, jitter=0.5)
        from repro.rng import seeded_random

        delays_a = [policy.delay(n, seeded_random(3)) for n in range(5)]
        delays_b = [policy.delay(n, seeded_random(3)) for n in range(5)]
        assert delays_a == delays_b  # same seed, same schedule
        for attempt, delay in enumerate(delays_a):
            base = min(1.0, 0.1 * 2**attempt)
            assert base <= delay <= base * 1.5
        # A server-supplied Retry-After floors the backoff.
        assert policy.delay(0, seeded_random(3), retry_after=0.9) >= 0.9

    def test_invalid_policy_is_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)


class TestIdempotency:
    def test_key_replay_returns_the_recorded_response(self, tmp_path):
        async def scenario(server: InferenceServer):
            port = server.port
            request = {"stream": "s", "program": PROGRAM, "database": DATABASE,
                       "delta": {"insert": ["src(3)"]}}
            status, first = await http_json_retry(
                "127.0.0.1", port, "POST", "/v1/update", request,
                idempotency_key="update-1",
            )
            assert status == 200 and "replayed" not in first
            status, second = await http_json_retry(
                "127.0.0.1", port, "POST", "/v1/update", request,
                idempotency_key="update-1",
            )
            assert status == 200
            assert second["replayed"] is True
            assert second["database"] == first["database"]
            # The replay did not re-apply: still one journaled delta.
            stats = server.journal.stats()
            assert stats["records_appended"] == 2  # open + one delta

        _run(_with_server(
            ServerConfig(port=0, shards=1, journal_dir=str(tmp_path)), scenario
        ))

    def test_non_string_key_is_rejected(self):
        async def scenario(server: InferenceServer):
            status, payload = await http_json(
                "127.0.0.1", server.port, "POST", "/v1/update",
                {"stream": "s", "program": PROGRAM, "database": DATABASE,
                 "delta": {"insert": ["src(3)"]}, "idempotency_key": 7},
            )
            assert status == 400
            assert payload["error_kind"] == "bad_request"

        _run(_with_server(ServerConfig(port=0, shards=1), scenario))
