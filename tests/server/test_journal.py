"""The write-ahead journal's durability contract, tested in isolation.

The properties a crash-safe journal must hold:

* replaying an intact journal reproduces every stream's canonical
  post-delta state **bit-identically** to the
  :meth:`InferenceService.replay` oracle — same database text, same cache
  key, same seeded estimates;
* a torn tail (short header, short payload, CRC mismatch, bad JSON,
  semantic corruption) is truncated on open, keeping the verified prefix;
* compaction rewrites history as snapshots without changing any state;
* deduplication swallows the immediately-repeated delta (a client retry
  after a lost acknowledgement) instead of journaling it twice;
* a journal that failed a write refuses further appends until reopened.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import pytest

from repro.exceptions import ValidationError
from repro.logic.deltas import DbDelta
from repro.runtime.service import InferenceService
from repro.server import faults
from repro.server.journal import (
    MAGIC,
    JournalError,
    StreamJournal,
)

PROGRAM = (
    "coin(X, flip<0.5>[X]) :- src(X).\n"
    "hit(X) :- coin(X, 1).\n"
    "base(X) :- src(X), aux(X)."
)
DATABASE = "src(1). src(2). aux(1)."

DELTAS = [
    {"insert": ["src(3)"]},
    {"insert": ["aux(2)"], "retract": ["aux(1)"]},
    {"insert": ["src(4)", "aux(4)"]},
]

_HEADER = struct.Struct(">II")


@pytest.fixture(autouse=True)
def _clear_faults():
    faults.FAULTS.clear()
    yield
    faults.FAULTS.clear()


def _canonical(program: str, database: str) -> str:
    service = InferenceService(cache_size=4)
    return service.replay(program, database, []).database_source


def _journal_with_history(tmp_path: Path, deltas=DELTAS) -> tuple[StreamJournal, str]:
    """A journal holding one opened stream plus *deltas*; returns final text."""
    journal = StreamJournal(tmp_path)
    journal.record_open("s", PROGRAM, DATABASE)
    service = InferenceService(cache_size=8)
    database = service.replay(PROGRAM, DATABASE, []).database_source
    for delta in deltas:
        result = service.update(PROGRAM, database, delta)
        database = result.database_source
        journal.record_delta("s", delta, database_after=database)
    return journal, database


class TestRoundTrip:
    def test_replay_is_bit_identical_to_service_replay(self, tmp_path):
        journal, final_database = _journal_with_history(tmp_path)
        journal.close()

        reopened = StreamJournal(tmp_path)
        recovered = reopened.recovered_streams()
        assert [stream.name for stream in recovered] == ["s"]
        state = recovered[0]
        assert state.program == PROGRAM
        assert state.updates == len(DELTAS)

        # The oracle: an uninterrupted service replaying the same deltas.
        oracle = InferenceService(cache_size=8)
        expected = oracle.replay(PROGRAM, DATABASE, DELTAS)
        assert state.database == expected.database_source == final_database
        # Same canonical text ⇒ same cache key ⇒ same seeded estimates.
        check = InferenceService(cache_size=8)
        assert check.replay(state.program, state.database, []).key == expected.key
        reopened.close()

    def test_recovered_estimates_match_uninterrupted_run(self, tmp_path):
        journal, _ = _journal_with_history(tmp_path)
        journal.close()
        state = StreamJournal(tmp_path).recovered_streams()[0]

        oracle = InferenceService(cache_size=8)
        expected_db = oracle.replay(PROGRAM, DATABASE, DELTAS).database_source
        recovered_service = InferenceService(cache_size=8)
        for query in ("hit(1)", "hit(3)", "base(4)"):
            expected = oracle.evaluate(PROGRAM, expected_db, [query])
            recovered = recovered_service.evaluate(state.program, state.database, [query])
            assert recovered == expected

    def test_empty_then_reopen_recovers_nothing(self, tmp_path):
        StreamJournal(tmp_path).close()
        journal = StreamJournal(tmp_path)
        assert journal.recovered_streams() == []
        assert journal.stats()["recoveries"] == 0
        journal.close()

    def test_open_is_deduplicated_when_sources_unchanged(self, tmp_path):
        journal = StreamJournal(tmp_path)
        assert journal.record_open("s", PROGRAM, DATABASE) is True
        assert journal.record_open("s", PROGRAM, DATABASE) is False
        assert journal.stats()["dedup_skipped"] == 1
        journal.close()

    def test_repeated_delta_is_deduplicated(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        delta = {"insert": ["src(9)"]}
        assert journal.record_delta("s", delta) is True
        # The client retry after a lost ack: same delta, same post-state.
        assert journal.record_delta("s", delta) is False
        assert journal.stats()["dedup_skipped"] == 1
        journal.close()

    def test_delta_for_unopened_stream_raises(self, tmp_path):
        journal = StreamJournal(tmp_path)
        with pytest.raises(JournalError, match="unopened stream"):
            journal.record_delta("ghost", {"insert": ["src(1)"]})
        journal.close()

    def test_diverging_database_after_refuses_to_journal(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.record_open("s", PROGRAM, DATABASE)
        with pytest.raises(JournalError, match="diverges"):
            journal.record_delta(
                "s", {"insert": ["src(3)"]}, database_after="definitely wrong text"
            )
        journal.close()


class TestTornTail:
    def _record_count(self, tmp_path) -> int:
        journal = StreamJournal(tmp_path)
        try:
            return journal.stats()["records_replayed"]
        finally:
            journal.close()

    def test_short_header_is_truncated(self, tmp_path):
        journal, _ = _journal_with_history(tmp_path)
        journal.close()
        wal = tmp_path / "streams.wal"
        intact = wal.read_bytes()
        wal.write_bytes(intact + b"\x00\x00\x00")

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        assert wal.read_bytes() == intact
        # Every verified record survived the truncation.
        assert reopened.stats()["records_replayed"] == 1 + len(DELTAS)
        reopened.close()

    def test_torn_payload_is_truncated(self, tmp_path):
        journal, _ = _journal_with_history(tmp_path)
        journal.close()
        wal = tmp_path / "streams.wal"
        intact = wal.read_bytes()
        payload = b'{"kind":"delta"}'
        frame = _HEADER.pack(len(payload) + 50, zlib.crc32(payload)) + payload
        wal.write_bytes(intact + frame)

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        assert wal.read_bytes() == intact
        reopened.close()

    def test_crc_mismatch_truncates_from_the_bad_record(self, tmp_path):
        journal, _ = _journal_with_history(tmp_path)
        journal.close()
        wal = tmp_path / "streams.wal"
        data = bytearray(wal.read_bytes())
        data[-1] ^= 0xFF  # flip one payload bit in the final record
        wal.write_bytes(bytes(data))

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        # One fewer delta than written; the prefix still replays cleanly.
        assert reopened.stats()["records_replayed"] == len(DELTAS)  # open + (n-1) deltas
        state = reopened.recovered_streams()[0]
        oracle = InferenceService(cache_size=8)
        expected = oracle.replay(PROGRAM, DATABASE, DELTAS[:-1]).database_source
        assert state.database == expected
        reopened.close()

    def test_hash_mismatch_record_is_treated_as_corrupt(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        journal.close()
        # Append a CRC-valid record whose delta log_hash lies about content.
        record = DbDelta.from_spec({"insert": ["src(3)"]}).journal_record()
        record["log_hash"] = "0" * 64
        payload = json.dumps(
            {"kind": "delta", "stream": "s", "delta": record},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        wal = tmp_path / "streams.wal"
        with open(wal, "ab") as handle:
            handle.write(_HEADER.pack(len(payload), zlib.crc32(payload)) + payload)

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        assert reopened.recovered_streams()[0].updates == 0
        reopened.close()

    def test_foreign_file_is_refused_not_destroyed(self, tmp_path):
        wal = tmp_path / "streams.wal"
        wal.write_bytes(b"PRECIOUS USER DATA\n")
        with pytest.raises(JournalError, match="bad magic"):
            StreamJournal(tmp_path)
        assert wal.read_bytes() == b"PRECIOUS USER DATA\n"


class TestFailurePolicy:
    def test_fsync_fault_fails_the_journal_until_reopen(self, tmp_path):
        journal = StreamJournal(tmp_path, fsync="always")
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        faults.FAULTS.configure([faults.FaultSpec(point="journal.fsync", at=1)])
        with pytest.raises(JournalError):
            journal.record_delta("s", {"insert": ["src(3)"]})
        assert journal.failed
        faults.FAULTS.clear()
        # Failed is failed: even clean appends are refused now.
        with pytest.raises(JournalError, match="failed"):
            journal.record_delta("s", {"insert": ["src(4)"]})
        journal.close()

        reopened = StreamJournal(tmp_path)
        assert not reopened.failed
        # The record reached the page cache before the fsync failed, so the
        # reopen replays it; the client's retry then dedups to a no-op —
        # exactly the "retry is safe" contract the 503 promised.
        state = reopened.recovered_streams()[0]
        assert "src(3)" in state.database
        assert reopened.record_delta("s", {"insert": ["src(3)"]}) is False
        assert reopened.record_delta("s", {"insert": ["src(4)"]}) is True
        reopened.close()

    def test_torn_append_fault_leaves_a_recoverable_prefix(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        journal.record_delta("s", DELTAS[0])
        faults.FAULTS.configure([faults.FaultSpec(point="journal.torn", at=1)])
        with pytest.raises(JournalError):
            journal.record_delta("s", DELTAS[1])
        journal.close()
        faults.FAULTS.clear()

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        state = reopened.recovered_streams()[0]
        oracle = InferenceService(cache_size=8)
        assert state.database == oracle.replay(PROGRAM, DATABASE, DELTAS[:1]).database_source
        reopened.close()

    def test_corrupt_append_fault_surfaces_at_next_open(self, tmp_path):
        journal = StreamJournal(tmp_path)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        faults.FAULTS.configure([faults.FaultSpec(point="journal.corrupt", at=1)])
        journal.record_delta("s", DELTAS[0])  # silently written corrupt
        journal.close()
        faults.FAULTS.clear()

        reopened = StreamJournal(tmp_path)
        assert reopened.stats()["truncations"] == 1
        assert reopened.recovered_streams()[0].updates == 0
        reopened.close()

    def test_unknown_fsync_policy_is_rejected(self, tmp_path):
        with pytest.raises(JournalError, match="fsync policy"):
            StreamJournal(tmp_path, fsync="sometimes")

    def test_batch_policy_survives_reopen(self, tmp_path):
        journal = StreamJournal(tmp_path, fsync="batch")
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        for n in range(3, 9):
            journal.record_delta("s", {"insert": [f"src({n})"]})
        journal.close()
        reopened = StreamJournal(tmp_path, fsync="batch")
        assert reopened.recovered_streams()[0].updates == 6
        reopened.close()


class TestCompaction:
    def test_compaction_preserves_state_and_shrinks_the_file(self, tmp_path):
        journal = StreamJournal(tmp_path, max_bytes=4096)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        database = journal.recovered_streams()[0].database
        service = InferenceService(cache_size=8)
        deltas = [{"insert": [f"src({n})"]} for n in range(10, 40)]
        for delta in deltas:
            result = service.update(PROGRAM, database, delta)
            database = result.database_source
            journal.record_delta("s", delta, database_after=database)
        stats = journal.stats()
        assert stats["compactions"] >= 1
        assert stats["size_bytes"] <= 4096 + 2048  # one snapshot per stream
        journal.close()

        reopened = StreamJournal(tmp_path, max_bytes=4096)
        state = reopened.recovered_streams()[0]
        assert state.database == database
        assert state.updates == len(deltas)
        reopened.close()

    def test_snapshot_plus_later_deltas_replay(self, tmp_path):
        journal = StreamJournal(tmp_path, max_bytes=4096)
        journal.record_open("s", PROGRAM, _canonical(PROGRAM, DATABASE))
        for n in range(10, 40):
            journal.record_delta("s", {"insert": [f"src({n})"]})
        assert journal.stats()["compactions"] >= 1
        journal.record_delta("s", {"insert": ["aux(99)"]})
        expected = journal.recovered_streams()[0].database
        journal.close()

        reopened = StreamJournal(tmp_path, max_bytes=4096)
        assert reopened.recovered_streams()[0].database == expected
        assert "aux(99)" in expected
        reopened.close()


class TestDeltaJournalRecord:
    def test_round_trip(self):
        delta = DbDelta.from_spec({"insert": ["src(3)", "aux(2)"], "retract": ["aux(1)"]})
        record = delta.journal_record()
        assert record["log_hash"] == delta.log_hash()
        restored = DbDelta.from_journal_record(record)
        assert restored.log_hash() == delta.log_hash()

    def test_tampered_record_is_rejected(self):
        record = DbDelta.from_spec({"insert": ["src(3)"]}).journal_record()
        record["insert"] = ["src(4)"]  # content changed, hash did not
        with pytest.raises(ValidationError, match="hash verification"):
            DbDelta.from_journal_record(record)

    def test_magic_prefix_present(self, tmp_path):
        StreamJournal(tmp_path).close()
        assert (tmp_path / "streams.wal").read_bytes().startswith(MAGIC)
