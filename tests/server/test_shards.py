"""Shard routing determinism, worker processes, crash detection and respawn."""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.runtime.service import InferenceService
from repro.server.shards import ShardConfig, ShardRouter, canonical_program_key

PROGRAM = """
coin1(X, flip<0.5>[1, X]) :- src1(X).
hit1(X) :- coin1(X, 1).
"""
#: The same program, textually scrambled (rule order, whitespace, comments).
PROGRAM_VARIANT = """
% a comment
hit1(X) :- coin1(X, 1).

coin1(X,  flip<0.5>[1, X]) :-  src1(X).
"""
DATABASE = "src1(1)."


def _wait_for(predicate, timeout: float = 5.0) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


class TestRouting:
    def test_canonical_key_ignores_textual_variation(self):
        assert canonical_program_key(PROGRAM) == canonical_program_key(PROGRAM_VARIANT)
        assert canonical_program_key(PROGRAM) != canonical_program_key(PROGRAM + "extra(1).")

    def test_unparseable_programs_route_deterministically(self):
        assert canonical_program_key(":- :- :-") == canonical_program_key(":- :- :-")

    def test_shard_for_is_deterministic_across_router_instances(self):
        programs = [PROGRAM] + [PROGRAM + f"extra{i}(1)." for i in range(3)]
        first = ShardRouter(shards=4)
        second = ShardRouter(shards=4)
        assert [first.shard_for(p) for p in programs] == [second.shard_for(p) for p in programs]
        assert first.shard_for(PROGRAM) == first.shard_for(PROGRAM_VARIANT)

    def test_submit_before_start_raises(self):
        router = ShardRouter(shards=1)

        async def attempt():
            return await router.submit(0, {"program": PROGRAM})

        with pytest.raises(RuntimeError, match="start"):
            asyncio.run(attempt())


class TestWorkers:
    def test_round_trip_and_per_shard_stats(self):
        router = ShardRouter(shards=2, config=ShardConfig(cache_size=8))
        router.start()
        try:

            async def scenario():
                shard = router.shard_for(PROGRAM)
                request = {"program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]}
                first = await router.submit(shard, dict(request))
                second = await router.submit(shard, dict(request))
                stats = await router.shard_stats(timeout=5.0)
                return shard, first, second, stats

            shard, first, second, stats = asyncio.run(scenario())
            direct = InferenceService().evaluate(PROGRAM, DATABASE, ["hit1(1)"])
            assert first["ok"] and first["results"] == direct
            assert second["ok"] and second["results"] == direct
            assert all(snapshot is not None for snapshot in stats)
            # The worker that served the program saw one miss then one hit;
            # the other shard's cache is untouched (isolation).
            assert stats[shard]["service"]["hits"] == 1
            assert stats[shard]["service"]["misses"] == 1
            other = stats[1 - shard]["service"]
            assert other["hits"] == 0 and other["misses"] == 0
            assert stats[shard]["pid"] != os.getpid()
            assert stats[0]["pid"] != stats[1]["pid"]
        finally:
            router.stop()

    def test_worker_crash_is_detected_and_respawned(self):
        router = ShardRouter(shards=1, config=ShardConfig(cache_size=4))
        router.start()
        try:

            async def before():
                return await router.submit(
                    0, {"program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]}
                )

            assert asyncio.run(before())["ok"]
            pid = router.worker_pids()[0]
            os.kill(pid, signal.SIGKILL)
            assert _wait_for(lambda: not router.worker_alive(0))

            async def after():
                return await router.submit(
                    0, {"program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]}
                )

            response = asyncio.run(after())
            assert response["ok"] and response["results"] == [0.5]
            assert router.respawns[0] == 1
            assert router.worker_pids()[0] != pid
            assert router.worker_alive(0)
        finally:
            router.stop()

    def test_stop_terminates_workers(self):
        router = ShardRouter(shards=2)
        router.start()
        pids = router.worker_pids()
        router.stop()
        for pid in pids:
            assert _wait_for(lambda: not _pid_alive(pid))


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover
        return True
    return True
