"""The shared serve wire protocol: id echo, never-raise, spec validation."""

from __future__ import annotations

import json

import pytest

from repro.runtime.service import InferenceService
from repro.server.protocol import (
    RequestError,
    answer,
    answer_line,
    resolve_sources,
    validate_queries,
)

PROGRAM = """
coin1(X, flip<0.5>[1, X]) :- src1(X).
hit1(X) :- coin1(X, 1).
"""
DATABASE = "src1(1)."


@pytest.fixture()
def service() -> InferenceService:
    return InferenceService(cache_size=4)


class TestIdEcho:
    def test_success_echoes_id(self, service):
        response = answer(
            service,
            {"id": "req-7", "program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]},
        )
        assert response["ok"] and response["id"] == "req-7"
        assert response["results"] == [0.5]

    def test_error_echoes_id(self, service):
        response = answer(service, {"id": 42, "queries": ["hit1(1)"]})
        assert not response["ok"] and response["id"] == 42
        assert "program" in response["error"]

    def test_unparseable_program_echoes_id(self, service):
        response = answer(service, {"id": "x", "program": ":- :- :-", "queries": ["a(1)"]})
        assert not response["ok"] and response["id"] == "x"

    def test_invalid_json_line_echoes_null_id(self, service):
        response = answer_line(service, "this is not json")
        assert not response["ok"] and response["id"] is None
        assert "invalid JSON" in response["error"]

    def test_non_object_request_echoes_null_id(self, service):
        response = answer(service, ["not", "an", "object"])
        assert not response["ok"] and response["id"] is None

    def test_zero_and_empty_ids_are_preserved(self, service):
        for request_id in (0, "", False):
            response = answer(
                service, {"id": request_id, "program": PROGRAM, "queries": ["hit1(1)"]}
            )
            assert response["id"] == request_id


class TestNeverRaises:
    def test_unexpected_internal_error_becomes_a_response(self, service, monkeypatch):
        def boom(*args, **kwargs):
            raise RuntimeError("synthetic evaluation bug")

        monkeypatch.setattr(service, "evaluate", boom)
        response = answer(service, {"id": 5, "program": PROGRAM, "queries": ["hit1(1)"]})
        assert not response["ok"] and response["id"] == 5
        assert "internal error" in response["error"]
        # The service is still usable afterwards — the loop survived.
        monkeypatch.undo()
        assert answer(service, {"id": 6, "program": PROGRAM, "queries": ["hit1(1)"]})["ok"]

    def test_malformed_field_types_are_answered(self, service):
        bad_requests = [
            {"id": 1, "program": PROGRAM, "queries": 42},
            {"id": 2, "program": PROGRAM, "queries": "hit1(1)"},
            {"id": 3, "program": PROGRAM, "adaptive": True, "half_width": "wide"},
            {"id": 4, "program": 17},
            {"id": 5, "program": PROGRAM, "database": ["not", "text"]},
            {"id": 6, "program": PROGRAM, "queries": [{"type": "mystery"}]},
        ]
        for request in bad_requests:
            response = answer(service, request)
            assert not response["ok"] and response["id"] == request["id"], request

    def test_answer_line_sequence_preserves_correlation(self, service):
        lines = [
            json.dumps({"id": "a", "program": PROGRAM, "queries": ["hit1(1)"]}),
            "garbage",
            json.dumps({"id": "b", "queries": ["hit1(1)"]}),
            json.dumps({"id": "c", "program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]}),
        ]
        responses = [answer_line(service, line) for line in lines]
        assert [r["id"] for r in responses] == ["a", None, "b", "c"]
        assert [r["ok"] for r in responses] == [True, False, False, True]


class TestResolveAndValidate:
    def test_resolve_reads_path_fields(self, tmp_path):
        program_file = tmp_path / "p.dl"
        program_file.write_text(PROGRAM, encoding="utf-8")
        program, database = resolve_sources({"program_path": str(program_file)})
        assert program == PROGRAM and database == ""

    def test_resolve_missing_file_is_a_request_error(self):
        with pytest.raises(RequestError, match="not found"):
            resolve_sources({"program_path": "/no/such/file.dl"})

    def test_validate_queries_rejects_bad_specs_before_batching(self):
        validate_queries(["hit1(1)", {"type": "has_stable_model"}])
        with pytest.raises(RequestError, match="invalid query spec"):
            validate_queries([{"type": "atom"}])
        with pytest.raises(RequestError, match="invalid query spec"):
            validate_queries([3.14])

    def test_default_queries_is_has_stable_model(self, service):
        response = answer(service, {"program": PROGRAM, "database": DATABASE})
        assert response["ok"] and response["results"] == [1.0]

    def test_adaptive_request_is_seed_deterministic(self, service):
        request = {
            "program": PROGRAM,
            "database": DATABASE,
            "queries": ["hit1(1)"],
            "adaptive": True,
            "seed": 7,
            "half_width": 0.05,
        }
        first = answer(service, dict(request))
        second = answer(service, dict(request))
        assert first["ok"] and first["results"] == second["results"]

    def test_stats_snapshot_is_a_plain_consistent_dict(self, service):
        answer(service, {"program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]})
        answer(service, {"program": PROGRAM, "database": DATABASE, "queries": ["hit1(1)"]})
        snapshot = service.stats.snapshot()
        assert isinstance(snapshot, dict)
        assert set(snapshot) == set(service.stats.COUNTERS)
        assert snapshot["hits"] >= 1 and snapshot["misses"] >= 1
        # The snapshot is a copy: mutating it does not touch the live stats.
        snapshot["hits"] = -1
        assert service.stats.hits >= 1


STREAM_PROGRAM = PROGRAM + "base1(X) :- src1(X), aux1(X).\n"
STREAM_DATABASE = "src1(1). aux1(1)."


class TestStreamingUpdates:
    def test_update_request_maintains_and_answers_in_one_round_trip(self, service):
        response = answer(
            service,
            {
                "id": 1,
                "program": STREAM_PROGRAM,
                "database": STREAM_DATABASE,
                "delta": {"insert": ["src1(2)", "aux1(2)"]},
                "queries": ["base1(2)"],
            },
        )
        assert response["ok"] and response["results"] == [1.0]
        assert response["update"]["inserted"] == 2
        assert "src1(2)" in response["database"]

    def test_op_update_without_queries_returns_report_only(self, service):
        response = answer(
            service,
            {
                "op": "update",
                "program": STREAM_PROGRAM,
                "database": STREAM_DATABASE,
                "delta": {"retract": ["aux1(1)"]},
            },
        )
        assert response["ok"] and "results" not in response
        assert response["update"]["retracted"] == 1

    def test_update_needs_a_delta_object(self, service):
        response = answer(
            service,
            {"op": "update", "program": STREAM_PROGRAM, "database": STREAM_DATABASE},
        )
        assert not response["ok"] and "delta" in response["error"]

    def test_stream_shorthand_carries_state_across_requests(self, service):
        from repro.server.protocol import StreamRegistry

        streams = StreamRegistry()
        opening = answer(
            service,
            {
                "stream": "s",
                "program": STREAM_PROGRAM,
                "database": STREAM_DATABASE,
                "queries": ["base1(1)"],
            },
            streams,
        )
        assert opening["ok"] and opening["results"] == [1.0]
        update = answer(
            service,
            {"stream": "s", "delta": {"insert": ["src1(2)", "aux1(2)"]}},
            streams,
        )
        assert update["ok"]
        follow_up = answer(service, {"stream": "s", "queries": ["base1(2)"]}, streams)
        assert follow_up["ok"] and follow_up["results"] == [1.0]

    def test_unknown_stream_without_program_is_an_error(self, service):
        from repro.server.protocol import StreamRegistry

        response = answer(
            service,
            {"stream": "ghost", "delta": {"insert": ["src1(2)"]}},
            StreamRegistry(),
        )
        assert not response["ok"] and "unknown stream" in response["error"]

    def test_stream_registry_is_lru_bounded(self):
        from repro.server.protocol import StreamRegistry

        streams = StreamRegistry(limit=2)
        for name in ("a", "b", "c"):
            streams.record(name, "p", "d")
        assert len(streams) == 2
        assert streams.get("a") is None and streams.get("c") is not None
