"""Property-based tests for the stable-model engine on random ground programs."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.rules import Rule
from repro.stable.grounding import GroundProgram
from repro.stable.reduct import gelfond_lifschitz_reduct, is_stable_model
from repro.stable.fixpoint import least_model
from repro.stable.solver import StableModelSolver
from repro.stable.wellfounded import well_founded_model

# A tiny ground Herbrand base: nullary atoms a..f.
ATOMS = [Atom(Predicate(name, 0), ()) for name in "abcdef"]


@st.composite
def ground_rules(draw) -> Rule:
    head = draw(st.sampled_from(ATOMS))
    body_size = draw(st.integers(0, 2))
    negative_size = draw(st.integers(0, 2))
    positive = tuple(draw(st.sampled_from(ATOMS)) for _ in range(body_size))
    negative = tuple(draw(st.sampled_from(ATOMS)) for _ in range(negative_size))
    return Rule(head, positive, negative)


@st.composite
def ground_programs(draw) -> GroundProgram:
    rules = draw(st.lists(ground_rules(), min_size=1, max_size=8))
    # Ensure at least one fact so programs are not vacuously empty too often.
    rules.append(Rule(draw(st.sampled_from(ATOMS)), (), ()))
    return GroundProgram(tuple(dict.fromkeys(rules)))


@settings(max_examples=120, deadline=None)
@given(ground_programs())
def test_enumerated_models_pass_the_reduct_check(program):
    solver = StableModelSolver()
    for model in solver.enumerate(program):
        assert is_stable_model(program.rules, model)


@settings(max_examples=120, deadline=None)
@given(ground_programs())
def test_enumerated_models_are_distinct_and_incomparable_only_if_different(program):
    solver = StableModelSolver()
    models = solver.all_stable_models(program)
    assert len(models) == len(set(models))
    # Stable models are minimal models of their reduct: no stable model is a
    # strict subset of another stable model (anti-chain property).
    for left in models:
        for right in models:
            if left != right:
                assert not left < right


@settings(max_examples=120, deadline=None)
@given(ground_programs())
def test_well_founded_approximates_every_stable_model(program):
    wf = well_founded_model(program.rules)
    solver = StableModelSolver()
    for model in solver.enumerate(program):
        assert wf.true <= set(model)
        assert not (wf.false & set(model))


@settings(max_examples=120, deadline=None)
@given(ground_programs())
def test_positive_reduct_least_model_is_monotone_in_assumptions(program):
    """Γ is antitone: a larger interpretation removes more rules from the reduct."""
    non_constraints = [r for r in program.rules if not r.is_constraint]
    smaller = least_model(gelfond_lifschitz_reduct(non_constraints, set()))
    larger_assumption = set(ATOMS)
    larger = least_model(gelfond_lifschitz_reduct(non_constraints, larger_assumption))
    assert larger <= smaller


@settings(max_examples=80, deadline=None)
@given(ground_programs())
def test_solver_agrees_with_and_without_well_founded_pruning(program):
    from repro.stable.solver import SolverConfig

    pruned = set(StableModelSolver().enumerate(program))
    unpruned = set(StableModelSolver(SolverConfig(use_well_founded=False)).enumerate(program))
    assert pruned == unpruned


@settings(max_examples=80, deadline=None)
@given(ground_programs())
def test_positive_fragment_has_exactly_one_stable_model(program):
    positive_rules = tuple(
        Rule(r.head, r.positive_body, ()) for r in program.rules if not r.is_constraint
    )
    positive_program = GroundProgram(positive_rules)
    models = StableModelSolver().all_stable_models(positive_program)
    assert len(models) == 1
    assert models[0] == least_model(positive_rules)
