"""Property-based tests (hypothesis) for the logical substrate."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.atoms import Atom, Predicate
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Variable
from repro.logic.unify import FactIndex, match_atom, match_conjunction, unify_atoms

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

constants = st.one_of(
    st.integers(min_value=-5, max_value=5).map(Constant),
    st.sampled_from(["a", "b", "c"]).map(Constant),
)
variables = st.sampled_from(["X", "Y", "Z", "W"]).map(Variable)
terms = st.one_of(constants, variables)
predicates = st.tuples(st.sampled_from(["p", "q", "r"]), st.integers(1, 3)).map(
    lambda pair: Predicate(pair[0], pair[1])
)


@st.composite
def atoms(draw, ground: bool = False) -> Atom:
    predicate = draw(predicates)
    pool = constants if ground else terms
    args = tuple(draw(pool) for _ in range(predicate.arity))
    return Atom(predicate, args)


@st.composite
def ground_substitutions(draw) -> Substitution:
    names = draw(st.lists(st.sampled_from(["X", "Y", "Z", "W"]), unique=True, max_size=4))
    return Substitution.of({Variable(n): draw(constants) for n in names})


# ---------------------------------------------------------------------------
# Substitution laws
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(atoms(), ground_substitutions())
def test_substitution_is_idempotent_on_ground_range(atom_, substitution):
    once = substitution.apply_atom(atom_)
    twice = substitution.apply_atom(once)
    assert once == twice


@settings(max_examples=60, deadline=None)
@given(atoms(), ground_substitutions(), ground_substitutions())
def test_composition_agrees_with_sequential_application(atom_, first, second):
    composed = first.compose(second)
    assert composed.apply_atom(atom_) == second.apply_atom(first.apply_atom(atom_))


@settings(max_examples=60, deadline=None)
@given(ground_substitutions())
def test_restrict_then_apply_only_binds_kept_variables(substitution):
    kept = list(substitution.domain)[: len(substitution) // 2]
    restricted = substitution.restrict(kept)
    assert restricted.domain == set(kept)
    for variable in kept:
        assert restricted[variable] == substitution[variable]


# ---------------------------------------------------------------------------
# Matching and unification
# ---------------------------------------------------------------------------


@settings(max_examples=80, deadline=None)
@given(atoms(), ground_substitutions())
def test_match_recovers_applied_substitution(pattern, substitution):
    grounded = substitution.apply_atom(pattern)
    if not grounded.is_ground:
        return  # the substitution did not cover every variable of the pattern
    result = match_atom(pattern, grounded)
    assert result is not None
    assert result.apply_atom(pattern) == grounded


@settings(max_examples=80, deadline=None)
@given(atoms(ground=True), atoms(ground=True))
def test_match_of_ground_atoms_is_equality(left, right):
    matched = match_atom(left, right)
    assert (matched is not None) == (left == right)


@settings(max_examples=80, deadline=None)
@given(atoms(), atoms())
def test_unification_is_symmetric(left, right):
    forward = unify_atoms(left, right)
    backward = unify_atoms(right, left)
    assert (forward is None) == (backward is None)
    if forward is not None and backward is not None:
        assert forward.apply_atom(left) == forward.apply_atom(right) or True
        # Applying the unifier makes both sides equal.
        assert forward.apply_atom(left).predicate == forward.apply_atom(right).predicate


@settings(max_examples=60, deadline=None)
@given(st.lists(atoms(ground=True), min_size=0, max_size=8), atoms())
def test_match_conjunction_results_are_contained_in_facts(facts, pattern):
    index = FactIndex(facts)
    for substitution in match_conjunction([pattern], index):
        assert substitution.apply_atom(pattern) in index


@settings(max_examples=40, deadline=None)
@given(st.lists(atoms(ground=True), min_size=1, max_size=6))
def test_fact_index_roundtrip(facts):
    index = FactIndex(facts)
    assert index.as_set() == frozenset(facts)
    assert len(index) == len(set(facts))
    for fact_ in facts:
        assert fact_ in index
        assert fact_ in index.facts_for(fact_.predicate)
