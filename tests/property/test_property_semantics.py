"""Property-based tests of the probabilistic semantics on random GDatalog¬ programs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import BCKOVEngine
from repro.gdatalog.engine import GDatalogEngine
from repro.workloads import random_database, random_positive_program, random_stratified_program

seeds = st.integers(min_value=0, max_value=40)


@settings(max_examples=12, deadline=None)
@given(seeds)
def test_positive_program_mass_is_one_and_models_unique(seed):
    program = random_positive_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    engine = GDatalogEngine(program, database, grounder="simple")
    space = engine.output_space()
    assert space.finite_probability == pytest.approx(1.0)
    for outcome in space:
        assert len(outcome.stable_models) == 1


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_positive_program_matches_bckov(seed):
    program = random_positive_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    engine = GDatalogEngine(program, database, grounder="simple")
    ours: dict[frozenset, float] = {}
    for outcome in engine.possible_outcomes():
        key = next(iter(outcome.stable_models_modulo(hide_active=True, hide_result=False)))
        ours[key] = ours.get(key, 0.0) + outcome.probability
    theirs = BCKOVEngine(program, database).run().distribution_over_instances()
    assert set(ours) == set(theirs)
    for key, value in ours.items():
        assert value == pytest.approx(theirs[key])


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_stratified_program_total_mass_and_as_good_as(seed):
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    simple_space = GDatalogEngine(program, database, grounder="simple").output_space()
    perfect_space = GDatalogEngine(program, database, grounder="perfect").output_space()
    assert simple_space.total_probability() == pytest.approx(1.0, abs=1e-6)
    assert perfect_space.total_probability() == pytest.approx(1.0, abs=1e-6)
    # Theorem 5.3 on random instances.
    assert perfect_space.as_good_as(simple_space)


@settings(max_examples=8, deadline=None)
@given(seeds)
def test_stratified_outcomes_have_unique_stable_model_under_perfect(seed):
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    engine = GDatalogEngine(program, database, grounder="perfect")
    for outcome in engine.possible_outcomes():
        assert len(outcome.stable_models) == 1
        assert next(iter(outcome.stable_models)) == outcome.head_atoms()


@settings(max_examples=6, deadline=None)
@given(seeds, st.integers(min_value=0, max_value=1000))
def test_sampler_never_produces_impossible_outcomes(seed, sampler_seed):
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    engine = GDatalogEngine(program, database, grounder="simple")
    exact_atr_sets = {outcome.atr_rules for outcome in engine.possible_outcomes()}
    sampler = engine.sampler(seed=sampler_seed)
    for _ in range(5):
        sampled = sampler.sample_outcome()
        assert sampled is not None
        assert sampled.atr_rules in exact_atr_sets
