"""Property tests: factorized and sequential exact inference agree.

The factorized engine must be an observationally identical drop-in for the
flat chase: on multi-component workloads (independent coins, disjoint
network blocks) the marginals agree exactly under ``fsum`` accumulation,
the ``events()`` distributions coincide, batched and per-query evaluation
route consistently, and conditioning produces the same posterior numbers.
On connected programs the engine must fall back to the sequential chase
without error.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.factorize import ProductSpace
from repro.gdatalog.probability_space import OutputSpace
from repro.logic.database import Database
from repro.logic.parser import parse_atom
from repro.ppdl.conditioning import condition
from repro.ppdl.constraints import ConstraintSet, Observation
from repro.ppdl.queries import AtomQuery, HasStableModelQuery
from repro.runtime.batch import QueryBatch
from repro.workloads import (
    independent_coins_database,
    independent_coins_program,
    network_database,
    resilience_program,
    topology_graph,
)


def _engines(program, database, grounder="simple"):
    """(factorized, sequential) engine pair over identical inputs."""
    factorized = GDatalogEngine(
        program, database, grounder=grounder, chase_config=ChaseConfig(factorize=True)
    )
    sequential = GDatalogEngine(
        program, database, grounder=grounder, chase_config=ChaseConfig()
    )
    return factorized, sequential


def _two_block_network(n: int = 3, p: float = 0.3):
    """Two disjoint chain networks in one database: exactly two components."""
    from repro.logic.atoms import fact as make_fact

    facts = []
    for block in range(2):
        offset = block * n
        for i in range(1, n + 1):
            facts.append(make_fact("router", offset + i))
        for i in range(1, n):
            facts.append(make_fact("connected", offset + i, offset + i + 1))
            facts.append(make_fact("connected", offset + i + 1, offset + i))
        facts.append(make_fact("infected", offset + 1, 1))
    return resilience_program(p), Database(facts)


def assert_spaces_agree(factorized, sequential, atoms, tolerance=1e-12):
    assert isinstance(factorized, ProductSpace)
    assert isinstance(sequential, OutputSpace)
    assert len(factorized) == len(sequential)
    assert factorized.probability_has_stable_model() == pytest.approx(
        sequential.probability_has_stable_model(), abs=tolerance
    )
    for atom in atoms:
        for mode in ("brave", "cautious"):
            assert factorized.marginal(atom, mode) == pytest.approx(
                sequential.marginal(atom, mode), abs=tolerance
            ), f"{atom} [{mode}]"
    mine = factorized.distribution_over_model_sets()
    theirs = sequential.distribution_over_model_sets()
    assert set(mine) == set(theirs)
    for model_set, mass in theirs.items():
        assert mine[model_set] == pytest.approx(mass, abs=tolerance)


@pytest.mark.parametrize("n", [2, 4, 8])
@pytest.mark.parametrize("grounder", ["simple", "perfect"])
def test_factorized_coins_agree_with_sequential(n, grounder):
    program = independent_coins_program()
    database = independent_coins_database(n)
    factorized, sequential = _engines(program, database, grounder)
    atoms = [parse_atom(f"heads({i})") for i in (1, n)] + [parse_atom(f"lucky({n})")]
    assert_spaces_agree(factorized.output_space(), sequential.output_space(), atoms)
    # Dyadic masses: the fsum'd marginals are not merely close but exact.
    assert factorized.marginal(f"heads({n})") == sequential.marginal(f"heads({n})") == 0.5


@settings(max_examples=8, deadline=None)
@given(n=st.integers(min_value=2, max_value=5), bias=st.sampled_from([0.25, 0.5, 0.75]))
def test_factorized_biased_coins_agree(n, bias):
    program = independent_coins_program(bias)
    database = independent_coins_database(n)
    factorized, sequential = _engines(program, database)
    atoms = [parse_atom(f"heads({i})") for i in range(1, n + 1)]
    assert_spaces_agree(factorized.output_space(), sequential.output_space(), atoms)


def test_factorized_two_block_network_agrees():
    program, database = _two_block_network(3, 0.3)
    factorized, sequential = _engines(program, database)
    space = factorized.output_space()
    assert isinstance(space, ProductSpace)
    assert len(space.components) == 2
    atoms = [parse_atom("infected(2, 1)"), parse_atom("infected(5, 1)")]
    assert_spaces_agree(space, sequential.output_space(), atoms)


def test_connected_program_falls_back_without_error():
    program = resilience_program(0.3)
    database = network_database(topology_graph("chain", 4), infected_seeds=[0])
    factorized, sequential = _engines(program, database)
    space = factorized.output_space()
    assert isinstance(space, OutputSpace)  # fell back: connected ground graph
    assert space.probability_has_stable_model() == pytest.approx(
        sequential.output_space().probability_has_stable_model(), abs=1e-15
    )


def test_batched_queries_route_like_per_query_on_products():
    factorized, sequential = _engines(
        independent_coins_program(), independent_coins_database(6)
    )
    queries = [HasStableModelQuery()]
    queries += [AtomQuery.of(f"heads({i})") for i in range(1, 7)]
    queries += [AtomQuery.of("lucky(3)", "cautious"), AtomQuery.of("nowhere(9)")]
    product_space = factorized.output_space()
    flat_space = sequential.output_space()
    batched = QueryBatch(queries).evaluate(product_space)
    individual = [query.evaluate(product_space) for query in queries]
    flat = QueryBatch(queries).evaluate(flat_space)
    assert batched == individual  # both component-routed: bit-identical
    assert batched == pytest.approx(flat, abs=1e-12)


def test_conditioning_product_fast_path_matches_flat_posterior():
    factorized, sequential = _engines(
        independent_coins_program(), independent_coins_database(4)
    )
    evidence = ConstraintSet.observing("heads(1)", "heads(2)")
    product_result = condition(factorized.output_space(), evidence)
    flat_result = condition(sequential.output_space(), evidence)
    assert isinstance(product_result.posterior, ProductSpace)
    assert product_result.evidence_probability == pytest.approx(
        flat_result.evidence_probability, abs=1e-12
    )
    for atom_text in ("heads(1)", "heads(3)"):
        atom = parse_atom(atom_text)
        assert product_result.posterior.marginal(atom) == pytest.approx(
            flat_result.posterior.marginal(atom), abs=1e-12
        )


def test_conditioning_with_negated_observation_materializes_but_agrees():
    factorized, sequential = _engines(
        independent_coins_program(), independent_coins_database(3)
    )
    evidence = ConstraintSet([Observation.of("heads(1)", negated=True)])
    product_result = condition(factorized.output_space(), evidence)
    flat_result = condition(sequential.output_space(), evidence)
    assert isinstance(product_result.posterior, OutputSpace)
    assert product_result.evidence_probability == pytest.approx(
        flat_result.evidence_probability, abs=1e-12
    )
    atom = parse_atom("tails(1)")
    assert product_result.posterior.marginal(atom) == pytest.approx(
        flat_result.posterior.marginal(atom), abs=1e-12
    )
