"""Property tests: the checker's predictions are bit-identical to the runtime.

:class:`ProgramAnalysis` pre-selects execution strategies — the
factorization partition, the query-relevant slice cone, delta
patchability, stratification — that the engine otherwise derives per
request.  These suites fuzz random (stratified and deliberately broken)
programs and assert the predictions equal the runtime derivations
**exactly**: same frozensets, same component partition (``==`` on the
frozen dataclasses), same verdicts.  A divergence here means a
pre-selected strategy could silently change answers.

Runs without NumPy (the CI no-numpy job includes it) — everything here
is pure-Python engine code.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.exceptions import GroundingError, StratificationError, ValidationError
from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.checker import analyze_program, check_source
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.factorize import decompose
from repro.gdatalog.incremental import patch_eligible
from repro.gdatalog.relevance import compute_slice, permanent_seeds
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule, HeadAtom
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import Atom, Predicate
from repro.logic.terms import Constant
from repro.workloads import random_database, random_stratified_program

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
CHASE_SETTINGS = settings(
    max_examples=8,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=10_000)


def _program(seed: int, constraints: bool) -> GDatalogProgram:
    return random_stratified_program(
        seed=seed, constraint_probability=0.5 if constraints else 0.0
    )


def _with_negative_cycle(program: GDatalogProgram) -> GDatalogProgram:
    """The program plus an even negative loop (legal, but not stratified)."""
    odd1, odd2 = Predicate("odd1", 0), Predicate("odd2", 0)
    extra = (
        GDatalogRule(HeadAtom(odd1, ()), (), (Atom(odd2, ()),)),
        GDatalogRule(HeadAtom(odd2, ()), (), (Atom(odd1, ()),)),
    )
    return GDatalogProgram(tuple(program.rules) + extra, program.registry)


def _head_atoms(program: GDatalogProgram) -> list[Atom]:
    """One ground query atom per head predicate (matching its arity)."""
    heads = sorted(
        {r.head.predicate for r in program.rules if not r.is_constraint}, key=str
    )
    return [Atom(p, tuple(Constant(1) for _ in range(p.arity))) for p in heads]


class TestSliceCone:
    @given(seed=seeds, constraints=st.booleans(), keep=st.integers(0, 255))
    @SETTINGS
    def test_slice_cone_equals_compute_slice_predicates(self, seed, constraints, keep):
        program = _program(seed, constraints)
        database = random_database(seed=seed)
        analysis = analyze_program(program, database)
        atoms = [a for i, a in enumerate(_head_atoms(program)) if keep & (1 << i)]
        predicted = analysis.slice_cone(atoms)
        actual = compute_slice(program, database, atoms).predicates
        assert predicted == actual

    @given(seed=seeds, constraints=st.booleans())
    @SETTINGS
    def test_empty_query_cone_is_the_model_killing_core(self, seed, constraints):
        program = _program(seed, constraints)
        database = random_database(seed=seed)
        analysis = analyze_program(program, database)
        assert analysis.slice_cone([]) == compute_slice(program, database, []).predicates

    @given(seed=seeds, constraints=st.booleans())
    @SETTINGS
    def test_permanent_seeds_match_relevance(self, seed, constraints):
        program = _program(seed, constraints)
        assert analyze_program(program).permanent_seeds == permanent_seeds(program)


class TestFactorizationPartition:
    @given(seed=seeds, constraints=st.booleans())
    @SETTINGS
    def test_decomposition_equals_decompose(self, seed, constraints):
        program = _program(seed, constraints)
        database = random_database(seed=seed)
        translated = translate_program(program)
        config = ChaseConfig(factorize=True)
        analysis = analyze_program(program, database)
        predicted = analysis.decomposition(translated, database, config)
        actual = decompose(translated, database, config)
        # Component/Decomposition are frozen dataclasses: == is the full
        # structural (bit-identical) partition comparison.
        assert predicted == actual
        # The memo must be stable across repeated lookups.
        assert analysis.decomposition(translated, database, config) is predicted


class TestStratification:
    @given(seed=seeds, break_it=st.booleans())
    @SETTINGS
    def test_stratified_iff_stratification_succeeds(self, seed, break_it):
        program = _program(seed, constraints=False)
        if break_it:
            program = _with_negative_cycle(program)
        analysis = analyze_program(program)
        try:
            program.stratification()
            runtime_stratified = True
        except StratificationError:
            runtime_stratified = False
        assert analysis.stratified == runtime_stratified
        if not runtime_stratified:
            codes = {d.code for d in analysis.diagnostics}
            assert "GDL010" in codes
            assert analysis.negative_cycle is not None


class TestDeltaPatchability:
    @given(seed=seeds, constraints=st.booleans(), keep=st.integers(0, 255))
    @SETTINGS
    def test_delta_patchable_equals_patch_eligible(self, seed, constraints, keep):
        program = _program(seed, constraints)
        analysis = analyze_program(program)
        predicates = sorted(program.predicates(), key=str)
        for predicate in predicates:
            assert analysis.delta_patchable((predicate,)) == patch_eligible(
                program, (predicate,)
            ), str(predicate)
        subset = [p for i, p in enumerate(predicates) if keep & (1 << i)]
        if subset:
            assert analysis.delta_patchable(subset) == patch_eligible(program, subset)


class TestCheckCleanImpliesRunnable:
    @given(seed=seeds, constraints=st.booleans())
    @CHASE_SETTINGS
    def test_clean_programs_chase_without_validation_errors(self, seed, constraints):
        program = _program(seed, constraints)
        database = random_database(seed=seed)
        source = "\n".join(str(rule) for rule in program.rules)
        database_source = "\n".join(f"{fact}." for fact in sorted(database.facts, key=str))
        analysis = check_source(source, database_source)
        assert analysis.ok  # the generators only build well-formed programs
        engine = GDatalogEngine(analysis.program, analysis.database)
        try:
            engine.probability_has_stable_model()
        except (GroundingError, ValidationError) as error:  # pragma: no cover
            pytest.fail(f"check-clean program failed to chase: {error}")

    @given(seed=seeds)
    @CHASE_SETTINGS
    def test_checked_source_round_trips_the_program(self, seed):
        program = _program(seed, constraints=True)
        source = "\n".join(str(rule) for rule in program.rules)
        analysis = check_source(source)
        assert analysis.program.rules == program.rules
        assert analysis.program_digest == analyze_program(program).program_digest


class TestServicePreselection:
    @given(seed=seeds)
    @CHASE_SETTINGS
    def test_validating_service_is_bit_identical_to_direct_engine(self, seed):
        from repro.runtime.service import InferenceService

        program = _program(seed, constraints=bool(seed % 2))
        database = random_database(seed=seed)
        source = "\n".join(str(rule) for rule in program.rules)
        database_source = "\n".join(f"{fact}." for fact in sorted(database.facts, key=str))
        specs = [str(a) for a in _head_atoms(program)] + [{"type": "has_stable_model"}]
        expected = GDatalogEngine(program, database).evaluate_queries(specs)
        validating = InferenceService(validate=True)
        assert validating.evaluate(source, database_source, specs) == expected
        sliced = InferenceService(validate=True, slice=True)
        assert sliced.evaluate(source, database_source, specs) == expected
