"""Property tests: delta-maintained engines are bit-identical to rebuilds.

Random stratified GDatalog¬[Δ] programs (half with integrity constraints)
receive random sequences of single-fact EDB inserts and retracts, applied
through :meth:`GDatalogEngine.updated` — the streaming-evidence path that
picks a ``patch``/``component``/``rebuild`` maintenance mode per delta.
After **every** delta the maintained engine must agree with a from-scratch
engine over the post-delta database:

* exact marginals and stable-model mass are equal as floats (``==``, no
  tolerance — the workload's flips are dyadic and both engines accumulate
  with ``fsum``);
* the flat output spaces are structurally identical (same AtR sets, same
  groundings, same path probabilities in the same canonical order);
* seeded Monte-Carlo estimates coincide exactly (the maintained grounder's
  planted root state is the fresh root state, so the sampler draws the
  same trajectories);
* the identities hold with ``factorize=True`` and composed with
  query-relevant slicing.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import fact
from repro.logic.deltas import DbDelta
from repro.workloads import random_database, random_stratified_program

#: Single EDB facts over the random-workload schema (``e/1`` and ``r/2``).
_FACTS = st.one_of(
    st.integers(min_value=1, max_value=4).map(lambda i: fact("e", i)),
    st.tuples(
        st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=4)
    ).map(lambda pair: fact("r", *pair)),
)

#: A stream: up to four single-fact deltas, each an insert or a retract.
_STREAMS = st.lists(st.tuples(st.booleans(), _FACTS), min_size=1, max_size=4)

_PROGRAM_SEEDS = st.integers(min_value=0, max_value=12)


def _program(seed: int):
    return random_stratified_program(
        seed=seed, constraint_probability=0.5 if seed % 2 else 0.0
    )


def _query_specs(program) -> list:
    heads = sorted({r.head.predicate.name for r in program.rules if not r.is_constraint})
    return [f"{name}(1)" for name in heads] + [{"type": "has_stable_model"}]


def _flat_fingerprint(space):
    return (
        [(o.atr_rules, o.grounding, o.probability) for o in space.outcomes],
        space.error_probability,
    )


@settings(max_examples=25, deadline=None)
@given(seed=_PROGRAM_SEEDS, stream=_STREAMS)
def test_maintained_marginals_match_rebuild(seed, stream):
    program = _program(seed)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    engine.output_space()  # chase once; the stream maintains from here
    specs = _query_specs(program)
    for is_insert, atom_ in stream:
        delta = DbDelta.of(inserts=[atom_]) if is_insert else DbDelta.of(retracts=[atom_])
        engine = engine.updated(delta)
        database = delta.apply(database)
        fresh = GDatalogEngine(program, database)
        assert engine.evaluate_queries(specs) == fresh.evaluate_queries(specs)
        assert _flat_fingerprint(engine.output_space()) == _flat_fingerprint(
            fresh.output_space()
        )


@settings(max_examples=15, deadline=None)
@given(seed=_PROGRAM_SEEDS, stream=_STREAMS)
def test_maintained_engines_sample_identically_when_seeded(seed, stream):
    program = _program(seed)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    engine.output_space()
    for is_insert, atom_ in stream:
        delta = DbDelta.of(inserts=[atom_]) if is_insert else DbDelta.of(retracts=[atom_])
        engine = engine.updated(delta)
        database = delta.apply(database)
    fresh = GDatalogEngine(program, database)
    estimate = engine.estimate_has_stable_model(n=64, seed=seed + 1)
    reference = fresh.estimate_has_stable_model(n=64, seed=seed + 1)
    assert estimate.value == reference.value


@settings(max_examples=15, deadline=None)
@given(seed=_PROGRAM_SEEDS, stream=_STREAMS)
def test_maintained_matches_rebuild_under_factorization(seed, stream):
    program = _program(seed)
    database = random_database(seed=seed)
    config = ChaseConfig(factorize=True)
    engine = GDatalogEngine(program, database, chase_config=config)
    engine.output_space()
    specs = _query_specs(program)
    for is_insert, atom_ in stream:
        delta = DbDelta.of(inserts=[atom_]) if is_insert else DbDelta.of(retracts=[atom_])
        engine = engine.updated(delta)
        database = delta.apply(database)
        fresh = GDatalogEngine(program, database, chase_config=config)
        assert engine.evaluate_queries(specs) == fresh.evaluate_queries(specs)


@settings(max_examples=15, deadline=None)
@given(seed=_PROGRAM_SEEDS, stream=_STREAMS)
def test_maintained_engines_compose_with_slicing(seed, stream):
    program = _program(seed)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    engine.output_space()
    specs = _query_specs(program)
    for is_insert, atom_ in stream:
        delta = DbDelta.of(inserts=[atom_]) if is_insert else DbDelta.of(retracts=[atom_])
        engine = engine.updated(delta)
        database = delta.apply(database)
    fresh = GDatalogEngine(program, database)
    assert engine.evaluate_queries(specs, slice=True) == fresh.evaluate_queries(specs)
    assert engine.evaluate_queries(specs, slice=True) == engine.evaluate_queries(specs)
