"""Property tests: sliced inference is bit-identical to unsliced inference.

Random stratified programs (with negation and, for half the seeds,
integrity constraints) and random databases are queried with and without
query-relevant slicing; every answer must agree **exactly** (``==``, no
tolerance) — the workload's flips are dyadic, so the dropped choices'
branch masses sum to exactly 1 and the fsum-accumulated query masses are
equal as floats, not merely close.  The same identity must hold composed
with ``factorize=True`` and under the perfect grounder.
"""

from __future__ import annotations

import pytest

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.engine import GDatalogEngine
from repro.workloads import (
    random_database,
    random_positive_program,
    random_stratified_program,
    wide_database,
    wide_program,
    wide_query_atoms,
)

SEEDS = range(6)


def _query_specs(program):
    """A batch touching every source head predicate plus stable-model existence."""
    heads = sorted({r.head.predicate.name for r in program.rules if not r.is_constraint})
    specs: list = [f"{name}(1)" for name in heads]
    specs.append({"type": "has_stable_model"})
    specs.append("unreachable_predicate(1)")
    return specs


@pytest.mark.parametrize("seed", SEEDS)
def test_sliced_matches_unsliced_on_stratified_programs(seed):
    constraint_probability = 0.5 if seed % 2 else 0.0
    program = random_stratified_program(
        seed=seed, constraint_probability=constraint_probability
    )
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    specs = _query_specs(program)
    assert engine.evaluate_queries(specs, slice=True) == engine.evaluate_queries(specs)


@pytest.mark.parametrize("seed", SEEDS)
def test_sliced_marginals_match_per_query(seed):
    program = random_stratified_program(seed=seed)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    for spec in _query_specs(program):
        if isinstance(spec, dict):
            assert engine.probability_has_stable_model(slice=True) == (
                engine.probability_has_stable_model()
            )
        else:
            for mode in ("brave", "cautious"):
                assert engine.marginal(spec, mode=mode, slice=True) == (
                    engine.marginal(spec, mode=mode)
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_sliced_matches_unsliced_on_positive_programs(seed):
    program = random_positive_program(seed=seed)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database)
    specs = _query_specs(program)
    assert engine.evaluate_queries(specs, slice=True) == engine.evaluate_queries(specs)


@pytest.mark.parametrize("seed", range(3))
def test_sliced_composes_with_factorization(seed):
    program = random_stratified_program(seed=seed)
    database = random_database(seed=seed)
    flat = GDatalogEngine(program, database)
    factorized = GDatalogEngine(program, database, chase_config=ChaseConfig(factorize=True))
    specs = _query_specs(program)
    assert factorized.evaluate_queries(specs, slice=True) == flat.evaluate_queries(specs)


@pytest.mark.parametrize("seed", range(3))
def test_sliced_matches_under_the_perfect_grounder(seed):
    program = random_stratified_program(seed=seed, constraint_probability=0.4)
    database = random_database(seed=seed)
    engine = GDatalogEngine(program, database, grounder="perfect")
    specs = _query_specs(program)
    assert engine.evaluate_queries(specs, slice=True) == engine.evaluate_queries(specs)


def test_wide_program_slices_compose_with_factorization():
    # Slice first, then decompose the slice: with several rows per column
    # the sliced sub-program still factorizes into per-row components.
    program = wide_program(6, depth=2)
    database = wide_database(6, rows=2)
    flat = GDatalogEngine(program, database)
    factorized = GDatalogEngine(program, database, chase_config=ChaseConfig(factorize=True))
    queries = wide_query_atoms(3, depth=2, rows=2) + [{"type": "has_stable_model"}]
    assert factorized.evaluate_queries(queries, slice=True) == flat.evaluate_queries(queries)


def test_unreachable_query_answers_without_chasing():
    program = random_stratified_program(seed=1)
    database = random_database(seed=1)
    engine = GDatalogEngine(program, database)
    sliced = engine.sliced(["unreachable_predicate(7)"])
    assert sliced.query_slice is not None and sliced.query_slice.is_empty
    assert sliced.marginal("unreachable_predicate(7)") == 0.0
    assert len(sliced.output_space()) == 1
