"""Property tests for the parallel inference runtime.

Two invariants back the runtime subsystem:

* **Parallel/sequential equivalence** — the merged output space of
  :class:`~repro.runtime.pool.ParallelChaseExplorer` assigns exactly the
  same probability to every outcome (and the same groundings and error
  mass) as the sequential :class:`~repro.gdatalog.chase.ChaseEngine`, on
  random stratified/positive workloads and for both grounders.
* **Batch/per-query equivalence** — :class:`~repro.runtime.batch.QueryBatch`
  returns bit-identical results to calling ``Query.evaluate`` once per
  query.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdatalog.chase import ChaseConfig, ChaseEngine
from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder
from repro.gdatalog.probability_space import OutputSpace
from repro.gdatalog.translate import translate_program
from repro.logic.atoms import Atom, Predicate, fact
from repro.ppdl.queries import AtomQuery, HasStableModelQuery
from repro.runtime.batch import QueryBatch
from repro.runtime.pool import ParallelChaseExplorer
from repro.workloads import (
    network_database,
    random_database,
    random_stratified_program,
    resilience_program,
    topology_graph,
)

seeds = st.integers(min_value=0, max_value=30)


def _grounders(seed):
    program = translate_program(random_stratified_program(seed=seed, rule_count=3))
    database = random_database(seed=seed, domain_size=2)
    return SimpleGrounder(program, database), PerfectGrounder(program, database)


def assert_spaces_identical(sequential, parallel) -> None:
    """Outcome-level identity: same AtR sets, bit-identical probabilities."""
    assert len(sequential.outcomes) == len(parallel.outcomes)
    for mine, theirs in zip(sequential.outcomes, parallel.outcomes):
        assert mine.choice_key == theirs.choice_key
        assert mine.probability == theirs.probability  # bit-identical, no tolerance
        assert mine.atr_rules == theirs.atr_rules
        assert mine.grounding == theirs.grounding
    assert sequential.error_probability == pytest.approx(parallel.error_probability, abs=1e-12)


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_parallel_explorer_matches_sequential_on_random_programs(seed):
    for grounder in _grounders(seed):
        sequential = ChaseEngine(grounder, ChaseConfig()).run()
        parallel = ParallelChaseExplorer(grounder, ChaseConfig(), workers=2).run()
        assert_spaces_identical(sequential, parallel)


@pytest.mark.parametrize("workers", [2, 4])
@pytest.mark.parametrize("n", [4, 5])
def test_parallel_explorer_matches_sequential_on_resilience(workers, n):
    database = network_database(topology_graph("chain", n), infected_seeds=[0])
    grounder = SimpleGrounder(translate_program(resilience_program(0.3)), database)
    sequential = ChaseEngine(grounder, ChaseConfig()).run()
    parallel = ParallelChaseExplorer(grounder, ChaseConfig(), workers=workers).run()
    assert_spaces_identical(sequential, parallel)
    # The merged space answers queries identically, with presolved models.
    space_sequential = OutputSpace(sequential.outcomes, sequential.error_probability)
    space_parallel = OutputSpace(parallel.outcomes, parallel.error_probability)
    assert space_parallel.probability_has_stable_model() == (
        space_sequential.probability_has_stable_model()
    )


def test_parallel_explorer_random_strategy_same_outcomes_up_to_float_association():
    """RANDOM trigger order: same outcome sets (Lemma 4.4), probabilities only
    equal up to floating-point associativity (documented caveat in pool.py)."""
    from repro.gdatalog.chase import TriggerStrategy

    config = ChaseConfig(trigger_strategy=TriggerStrategy.RANDOM, seed=3)
    database = network_database(topology_graph("chain", 5), infected_seeds=[0])
    grounder = SimpleGrounder(translate_program(resilience_program(0.3)), database)
    sequential = ChaseEngine(grounder, config).run()
    parallel = ParallelChaseExplorer(grounder, config, workers=2).run()
    assert [o.choice_key for o in sequential.outcomes] == [o.choice_key for o in parallel.outcomes]
    for mine, theirs in zip(sequential.outcomes, parallel.outcomes):
        assert mine.probability == pytest.approx(theirs.probability, rel=1e-12)


def test_parallel_explorer_serial_backend_is_sequential_engine():
    database = network_database(topology_graph("chain", 4), infected_seeds=[0])
    grounder = SimpleGrounder(translate_program(resilience_program(0.3)), database)
    explorer = ParallelChaseExplorer(grounder, ChaseConfig(), workers=4, backend="serial")
    sequential = ChaseEngine(grounder, ChaseConfig()).run()
    assert_spaces_identical(sequential, explorer.run())


def test_parallel_explorer_presolves_stable_models():
    database = network_database(topology_graph("chain", 5), infected_seeds=[0])
    grounder = SimpleGrounder(translate_program(resilience_program(0.3)), database)
    result = ParallelChaseExplorer(grounder, ChaseConfig(), workers=2).run()
    presolved = sum(1 for outcome in result.outcomes if "stable_models" in outcome.__dict__)
    # Everything explored by a worker arrives with its models already solved;
    # only the few leaves banked while splitting the frontier may be cold.
    assert presolved >= len(result.outcomes) - 8


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_batched_queries_equal_per_query_evaluate(seed):
    grounder, _ = _grounders(seed)
    result = ChaseEngine(grounder, ChaseConfig()).run()
    space = OutputSpace(result.outcomes, result.error_probability)
    atoms = sorted(
        {atom for outcome in result.outcomes for atom in outcome.head_atoms()},
        key=Atom.sort_key,
    )[:6]
    queries = [HasStableModelQuery()]
    queries += [AtomQuery(atom, "brave") for atom in atoms]
    queries += [AtomQuery(atom, "cautious") for atom in atoms]
    queries.append(AtomQuery(fact("never_derived_predicate", 1), "brave"))
    batched = QueryBatch(queries).evaluate(space)
    individual = [query.evaluate(space) for query in queries]
    assert batched == individual  # bit-identical, not approx


def test_batch_estimate_shares_one_sample_set(coin_engine):
    queries = [
        HasStableModelQuery(),
        AtomQuery.of("coin(1)"),
        AtomQuery.of("aux1"),
        AtomQuery.of("aux1", "cautious"),
    ]
    estimates = QueryBatch(queries).estimate(coin_engine.sampler(seed=11), n=400)
    assert [estimate.samples for estimate in estimates] == [400] * 4
    # Only the tails outcome has stable models, and they all contain coin(1):
    # within one shared sample the two frequencies agree exactly.
    assert estimates[0].value == estimates[1].value
    assert estimates[0].value == pytest.approx(0.5, abs=0.1)
    # aux1 holds in one of the two models (brave) but not both (cautious).
    assert estimates[2].value == estimates[1].value
    assert estimates[3].value == 0.0


def test_query_batch_rejects_non_query_objects():
    with pytest.raises(TypeError):
        QueryBatch([lambda outcome: True])


def test_output_space_merge_of_disjoint_shards_restores_the_space():
    database = network_database(topology_graph("chain", 4), infected_seeds=[0])
    grounder = SimpleGrounder(translate_program(resilience_program(0.3)), database)
    result = ChaseEngine(grounder, ChaseConfig()).run()
    whole = OutputSpace(result.outcomes, error_probability=0.25)
    # Interleaved shards: merge must restore the canonical choice_key order.
    shards = [
        OutputSpace(result.outcomes[0::2], error_probability=0.1),
        OutputSpace(result.outcomes[1::2], error_probability=0.15),
    ]
    merged = OutputSpace.merge(shards)
    assert [o.choice_key for o in merged] == [o.choice_key for o in whole]
    assert [o.probability for o in merged] == [o.probability for o in whole]
    assert merged.error_probability == pytest.approx(0.25)
    assert merged.probability_has_stable_model() == whole.probability_has_stable_model()
