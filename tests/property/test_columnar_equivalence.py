"""Property tests: the columnar batch engine is equivalent to the indexed
engine and the naive matcher — ``columnar == indexed == naive`` — and
groundings, output spaces and seeded sampler streams routed through it are
bit-identical.

PR 5's indexed engine (:mod:`repro.logic.join`) stays in the library exactly
to serve as the differential oracle here, the same way
:func:`~repro.logic.unify.match_conjunction` was kept as the oracle for the
indexed engine.  The whole module forces the columnar path by zeroing the
adaptive-dispatch threshold, so even the tiny hypothesis extents run through
the batch kernels.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy", exc_type=ImportError)

from hypothesis import given, settings
from hypothesis import strategies as st

import repro.logic.columnar as columnar
from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import Atom, Predicate
from repro.logic.columnar import FactStore
from repro.logic.join import ArgIndex
from repro.logic.join import iter_join as indexed_iter_join
from repro.logic.join import iter_join_seminaive as indexed_iter_join_seminaive
from repro.logic.program import DatalogProgram
from repro.logic.rules import rule
from repro.logic.terms import Constant, Variable
from repro.logic.unify import FactIndex, match_conjunction
from repro.stable.grounding import ground_program, naive_ground_program
from repro.stable.stratified import perfect_model
from repro.workloads import (
    random_database,
    random_stratified_program,
    selective_join_database,
    selective_join_program,
)


@pytest.fixture(scope="module", autouse=True)
def _force_columnar():
    """Run the entire module with the batch engine forced on."""
    previous_threshold = columnar.COLUMNAR_MIN_ROWS
    columnar.COLUMNAR_MIN_ROWS = 0
    columnar.set_use_columnar(True)
    yield
    columnar.COLUMNAR_MIN_ROWS = previous_threshold
    columnar.set_use_columnar(None)


# ---------------------------------------------------------------------------
# Strategies (same shape space as test_join_equivalence)
# ---------------------------------------------------------------------------

_PREDICATES = (Predicate("p", 1), Predicate("q", 2), Predicate("r", 2), Predicate("s", 3))
_CONSTANTS = tuple(Constant(v) for v in (1, 2, 3, "a", "b"))
_VARIABLES = tuple(Variable(n) for n in ("X", "Y", "Z", "W"))


@st.composite
def ground_atoms(draw) -> Atom:
    predicate = draw(st.sampled_from(_PREDICATES))
    args = tuple(draw(st.sampled_from(_CONSTANTS)) for _ in range(predicate.arity))
    return Atom(predicate, args)


@st.composite
def pattern_atoms(draw) -> Atom:
    """Patterns mixing constants (bound arguments) and repeatable variables."""
    predicate = draw(st.sampled_from(_PREDICATES))
    args = tuple(
        draw(st.sampled_from(_CONSTANTS + _VARIABLES)) for _ in range(predicate.arity)
    )
    return Atom(predicate, args)


fact_sets = st.lists(ground_atoms(), min_size=0, max_size=30).map(tuple)
conjunctions = st.lists(pattern_atoms(), min_size=1, max_size=3).map(tuple)
bindings = st.dictionaries(
    st.sampled_from(_VARIABLES), st.sampled_from(_CONSTANTS), max_size=2
)


def _dict_set(mappings):
    return {frozenset(m.items()) for m in mappings}


def _sub_set(substitutions):
    return {frozenset(s.items()) for s in substitutions}


# ---------------------------------------------------------------------------
# Matcher equivalence: columnar == indexed == naive
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(conjunctions, fact_sets)
def test_columnar_join_equals_indexed_and_naive(patterns, facts):
    naive = _sub_set(match_conjunction(patterns, FactIndex(facts)))
    indexed = _dict_set(indexed_iter_join(patterns, ArgIndex(facts)))
    batch = _dict_set(columnar.iter_join(patterns, FactStore(facts)))
    assert naive == indexed == batch


@settings(max_examples=120, deadline=None)
@given(conjunctions, fact_sets, st.data())
def test_columnar_seminaive_equals_indexed(patterns, facts, data):
    delta_members = data.draw(st.lists(st.sampled_from(facts), unique=True)) if facts else []
    delta = FactIndex(delta_members)
    indexed = _dict_set(indexed_iter_join_seminaive(patterns, ArgIndex(facts), delta))
    batch = _dict_set(columnar.iter_join_seminaive(patterns, FactStore(facts), delta))
    assert indexed == batch


@settings(max_examples=80, deadline=None)
@given(conjunctions, fact_sets, bindings)
def test_columnar_join_respects_initial_bindings(patterns, facts, binding):
    indexed = _dict_set(indexed_iter_join(patterns, ArgIndex(facts), binding))
    batch = _dict_set(columnar.iter_join(patterns, FactStore(facts), binding))
    assert indexed == batch


@settings(max_examples=60, deadline=None)
@given(conjunctions, fact_sets, st.data())
def test_columnar_seminaive_is_the_differential_of_the_full_join(patterns, facts, data):
    """full(facts) − full(facts − delta) == seminaive(facts, delta)."""
    delta_members = data.draw(st.lists(st.sampled_from(facts), unique=True)) if facts else []
    delta = FactIndex(delta_members)
    remainder = [f for f in facts if f not in delta]
    full = _dict_set(columnar.iter_join(patterns, FactStore(facts)))
    old = _dict_set(columnar.iter_join(patterns, FactStore(remainder)))
    differential = _dict_set(columnar.iter_join_seminaive(patterns, FactStore(facts), delta))
    assert differential == full - old


@settings(max_examples=60, deadline=None)
@given(conjunctions, fact_sets)
def test_columnar_survives_copy_on_write_snapshots(patterns, facts):
    """Joins over a COW snapshot equal joins over an independent rebuild,
    and appends to the child never leak into the parent."""
    parent = FactStore(facts)
    child = parent.copy()
    extra = Atom(_PREDICATES[1], (Constant("cow"), Constant("cow")))
    child.add(extra)
    rebuilt = FactStore(tuple(facts) + (extra,))
    assert _dict_set(columnar.iter_join(patterns, child)) == _dict_set(
        columnar.iter_join(patterns, rebuilt)
    )
    assert _dict_set(columnar.iter_join(patterns, parent)) == _dict_set(
        columnar.iter_join(patterns, FactStore(facts))
    )


def test_columnar_empty_extent_edge_cases():
    """Predicates with no facts at all (never interned) yield no matches."""
    facts = (Atom(_PREDICATES[0], (Constant(1),)),)
    store = FactStore(facts)
    missing = Atom(Predicate("never_seen", 1), (Variable("X"),))
    assert list(columnar.iter_join((missing,), store)) == []
    both = (Atom(_PREDICATES[0], (Variable("X"),)), missing)
    assert list(columnar.iter_join(both, store)) == []
    # Bound constant that no fact mentions (absent from the interner).
    unseen = Atom(_PREDICATES[0], (Constant("unseen-constant"),))
    assert list(columnar.iter_join((unseen,), store)) == []
    # Empty store entirely.
    assert list(columnar.iter_join(both, FactStore())) == []


# ---------------------------------------------------------------------------
# Grounding-level equivalence (bit-identical, order included)
# ---------------------------------------------------------------------------


def test_ground_program_bit_identical_to_naive_reference():
    """Columnar production grounding vs. the library's naive oracle."""
    program = selective_join_program()
    database = selective_join_database(60, seed=3)
    assert ground_program(program, database).rules == naive_ground_program(program, database).rules


@st.composite
def datalog_rules(draw):
    """Safe random Datalog rules: every head variable occurs in the body."""
    body = draw(conjunctions)
    body_variables = sorted(
        {t for a in body for t in a.args if isinstance(t, Variable)}, key=str
    )
    head_predicate = draw(st.sampled_from(_PREDICATES))
    args = tuple(
        draw(st.sampled_from(tuple(body_variables) + _CONSTANTS))
        if body_variables
        else draw(st.sampled_from(_CONSTANTS))
        for _ in range(head_predicate.arity)
    )
    return rule(Atom(head_predicate, args), body)


@settings(max_examples=40, deadline=None)
@given(st.lists(datalog_rules(), min_size=1, max_size=4), fact_sets)
def test_random_program_groundings_bit_identical(rules, facts):
    program = DatalogProgram(rules)
    assert ground_program(program, facts).rules == naive_ground_program(program, facts).rules


def test_perfect_model_identical_across_engines():
    program = selective_join_program()
    database = selective_join_database(40, seed=7)
    with_columnar = perfect_model(program, database)
    columnar.set_use_columnar(False)
    try:
        without = perfect_model(program, database)
    finally:
        columnar.set_use_columnar(True)
    assert with_columnar == without


# ---------------------------------------------------------------------------
# Output spaces and seeded sampler streams
# ---------------------------------------------------------------------------


def _space_key(space):
    return [(o.choice_key, round(o.probability, 12)) for o in space]


def test_output_spaces_and_seeded_streams_identical_across_engines():
    """The engine produces the same output space and the same seeded
    Monte-Carlo estimates with the columnar core on and off."""
    for seed in range(3):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed)

        with_columnar = GDatalogEngine(program, database, grounder="perfect")
        space_on = _space_key(with_columnar.output_space())
        estimate_on = with_columnar.estimate_has_stable_model(n=60, seed=1234)

        columnar.set_use_columnar(False)
        try:
            without = GDatalogEngine(program, database, grounder="perfect")
            space_off = _space_key(without.output_space())
            estimate_off = without.estimate_has_stable_model(n=60, seed=1234)
        finally:
            columnar.set_use_columnar(True)

        assert space_on == space_off
        assert estimate_on.value == estimate_off.value
        assert estimate_on.samples == estimate_off.samples
