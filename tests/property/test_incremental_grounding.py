"""Property tests for the incremental grounding states and the incremental chase.

Two invariants back the refactor:

* **State/ground equivalence** — extending a
  :class:`~repro.gdatalog.grounders.GroundingState` trigger by trigger along
  a chase path yields exactly the grounding that a from-scratch
  :meth:`~repro.gdatalog.grounders.Grounder.ground` call computes for the
  same AtR set (for both the simple and the perfect grounder).
* **Chase invariance** — the chase result (AtR sets, groundings,
  probabilities) is identical for every :class:`TriggerStrategy` and for
  incremental vs. from-scratch grounding (Lemma 4.4 order-independence plus
  grounder determinism).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdatalog.chase import ChaseConfig, ChaseEngine, TriggerStrategy
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.grounders import PerfectGrounder, SimpleGrounder
from repro.gdatalog.translate import translate_program
from repro.workloads import (
    paper_example_database,
    random_database,
    random_positive_program,
    random_stratified_program,
    resilience_program,
)

seeds = st.integers(min_value=0, max_value=40)


def _walk_states_and_compare(grounder, max_nodes: int = 200) -> int:
    """Drive a chase frontier purely through states; compare against ground().

    Returns the number of states checked (sanity: at least the root).
    """
    checked = 0
    frontier = [grounder.initial_state()]
    while frontier and checked < max_nodes:
        state = frontier.pop()
        reference = grounder.ground(state.atr_rules)
        assert state.grounding() == reference
        checked += 1
        for trigger in grounder.pending_triggers_from_state(state):
            spec = grounder.translated.spec_for_active(trigger.predicate)
            for outcome in (0, 1):
                from repro.gdatalog.atr import GroundAtRRule

                child = grounder.extend_state(state, (GroundAtRRule.of(spec, trigger, outcome),))
                frontier.append(child)
    return checked


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_simple_state_extension_matches_ground_on_random_programs(seed):
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    grounder = SimpleGrounder(translate_program(program), database)
    assert _walk_states_and_compare(grounder) >= 1


@settings(max_examples=10, deadline=None)
@given(seeds)
def test_perfect_state_extension_matches_ground_on_random_programs(seed):
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    grounder = PerfectGrounder(translate_program(program), database)
    assert _walk_states_and_compare(grounder) >= 1


@settings(max_examples=8, deadline=None)
@given(seeds)
def test_simple_state_extension_matches_ground_on_positive_programs(seed):
    program = random_positive_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    grounder = SimpleGrounder(translate_program(program), database)
    assert _walk_states_and_compare(grounder) >= 1


def _chase_fingerprint(result) -> list[tuple]:
    """A byte-identical summary: choices, grounding and probability per outcome."""
    return [
        (outcome.choice_key, sorted(r.sort_key() for r in outcome.grounding), outcome.probability)
        for outcome in result.outcomes
    ]


@settings(max_examples=8, deadline=None)
@given(seeds)
def test_chase_identical_across_strategies_and_modes(seed):
    """Lemma 4.4: trigger order and grounding mode never change the result."""
    program = random_stratified_program(seed=seed, rule_count=3)
    database = random_database(seed=seed, domain_size=2)
    translated = translate_program(program)
    grounder = SimpleGrounder(translated, database)
    reference = None
    for incremental in (True, False):
        for strategy in TriggerStrategy:
            config = ChaseConfig(trigger_strategy=strategy, seed=11, incremental=incremental)
            fingerprint = _chase_fingerprint(ChaseEngine(grounder, config).run())
            if reference is None:
                reference = fingerprint
            else:
                assert fingerprint == reference


@pytest.mark.parametrize("grounder_name", ["simple", "perfect"])
@pytest.mark.parametrize("strategy", list(TriggerStrategy))
def test_resilience_chase_identical_across_modes(grounder_name, strategy):
    probabilities = {}
    for incremental in (True, False):
        engine = GDatalogEngine(
            resilience_program(0.1),
            paper_example_database(),
            grounder=grounder_name,
            chase_config=ChaseConfig(trigger_strategy=strategy, seed=3, incremental=incremental),
        )
        fingerprint = _chase_fingerprint(engine.chase_result)
        probabilities[incremental] = fingerprint
    assert probabilities[True] == probabilities[False]
