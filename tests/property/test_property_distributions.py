"""Property-based tests for the parameterized distributions."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rng import default_rng

from repro.distributions import (
    BinomialDistribution,
    CategoricalDistribution,
    FlipDistribution,
    GeometricDistribution,
    PoissonDistribution,
    UniformIntDistribution,
    default_registry,
)

probabilities = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
positive_rates = st.floats(min_value=0.05, max_value=8.0, allow_nan=False)


@settings(max_examples=80, deadline=None)
@given(probabilities)
def test_flip_pmf_sums_to_one(p):
    flip = FlipDistribution()
    total = sum(flip.pmf([p], o) for o in flip.support([p]))
    assert total == pytest.approx(1.0)


@settings(max_examples=80, deadline=None)
@given(probabilities)
def test_flip_support_has_positive_mass_only(p):
    flip = FlipDistribution()
    for outcome in flip.support([p]):
        assert flip.pmf([p], outcome) > 0.0


@settings(max_examples=60, deadline=None)
@given(st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=6))
def test_categorical_normalized_weights_sum_to_one(raw_weights):
    total = sum(raw_weights)
    weights = [w / total for w in raw_weights]
    categorical = CategoricalDistribution()
    mass = sum(categorical.pmf(weights, o) for o in categorical.support(weights))
    assert mass == pytest.approx(1.0)


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=-3, max_value=3), st.integers(min_value=0, max_value=5))
def test_uniform_int_is_uniform(lo, width):
    uniform = UniformIntDistribution()
    hi = lo + width
    support = list(uniform.support([lo, hi]))
    assert len(support) == width + 1
    for outcome in support:
        assert uniform.pmf([lo, hi], outcome) == pytest.approx(1.0 / (width + 1))


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=0, max_value=8), probabilities)
def test_binomial_mass_and_mean(n, p):
    binomial = BinomialDistribution()
    support = list(binomial.support([n, p]))
    total = sum(binomial.pmf([n, p], k) for k in support)
    assert total == pytest.approx(1.0)
    mean = sum(k * binomial.pmf([n, p], k) for k in support)
    assert mean == pytest.approx(n * p, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.1, max_value=0.95))
def test_geometric_truncated_support_covers_tolerance(p):
    geometric = GeometricDistribution()
    outcomes, mass = geometric.truncated_support([p], mass_tolerance=1e-6)
    assert mass >= 1.0 - 1e-6
    assert outcomes == sorted(outcomes)


@settings(max_examples=30, deadline=None)
@given(positive_rates)
def test_poisson_truncated_support_covers_tolerance(rate):
    poisson = PoissonDistribution()
    outcomes, mass = poisson.truncated_support([rate], mass_tolerance=1e-5)
    assert mass >= 1.0 - 1e-5
    assert all(o >= 0 for o in outcomes)


@settings(max_examples=20, deadline=None)
@given(probabilities, st.integers(min_value=0, max_value=2**31 - 1))
def test_sampled_outcomes_lie_in_the_support(p, seed):
    registry = default_registry()
    rng = default_rng(seed)
    for name, params in (("flip", [p]), ("uniform_int", [0, 3]), ("binomial", [4, p])):
        distribution = registry.get(name)
        outcome = distribution.sample(params, rng)
        assert distribution.pmf(params, outcome) > 0.0


@settings(max_examples=30, deadline=None)
@given(st.floats(min_value=-2.0, max_value=2.0))
def test_invalid_flip_parameters_always_fall_back(p):
    flip = FlipDistribution()
    if 0.0 <= p <= 1.0:
        return
    assert flip.pmf([p], 0) == 1.0
    assert list(flip.support([p])) == [0]
