"""Property tests: the indexed join engine is substitution-set equivalent to
the naive reference matchers, and groundings routed through it are
bit-identical to naive-matcher groundings.

The naive :func:`~repro.logic.unify.match_conjunction` /
:func:`~repro.logic.unify.match_conjunction_seminaive` stay in the library
exactly to serve as the oracle here.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import Atom, Predicate
from repro.logic.join import (
    ArgIndex,
    iter_join,
    iter_join_seminaive,
    match_conjunction_indexed,
)
from repro.logic.terms import Constant, Variable
from repro.logic.unify import FactIndex, match_conjunction, match_conjunction_seminaive
from repro.stable.grounding import ground_program, naive_ground_program
from repro.workloads import (
    random_database,
    random_stratified_program,
    selective_join_database,
    selective_join_program,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_PREDICATES = (Predicate("p", 1), Predicate("q", 2), Predicate("r", 2), Predicate("s", 3))
_CONSTANTS = tuple(Constant(v) for v in (1, 2, 3, "a", "b"))
_VARIABLES = tuple(Variable(n) for n in ("X", "Y", "Z", "W"))


@st.composite
def ground_atoms(draw) -> Atom:
    predicate = draw(st.sampled_from(_PREDICATES))
    args = tuple(draw(st.sampled_from(_CONSTANTS)) for _ in range(predicate.arity))
    return Atom(predicate, args)


@st.composite
def pattern_atoms(draw) -> Atom:
    """Patterns mixing constants (bound arguments) and repeatable variables."""
    predicate = draw(st.sampled_from(_PREDICATES))
    args = tuple(
        draw(st.sampled_from(_CONSTANTS + _VARIABLES)) for _ in range(predicate.arity)
    )
    return Atom(predicate, args)


fact_sets = st.lists(ground_atoms(), min_size=0, max_size=30).map(tuple)
conjunctions = st.lists(pattern_atoms(), min_size=1, max_size=3).map(tuple)


def _sub_set(substitutions):
    return {frozenset(s.items()) for s in substitutions}


def _dict_set(mappings):
    return {frozenset(m.items()) for m in mappings}


# ---------------------------------------------------------------------------
# Matcher equivalence
# ---------------------------------------------------------------------------


@settings(max_examples=120, deadline=None)
@given(conjunctions, fact_sets)
def test_indexed_join_equals_naive_match_conjunction(patterns, facts):
    naive = _sub_set(match_conjunction(patterns, FactIndex(facts)))
    indexed = _sub_set(match_conjunction_indexed(patterns, ArgIndex(facts)))
    assert naive == indexed
    fast = _dict_set(iter_join(patterns, ArgIndex(facts)))
    assert naive == fast


@settings(max_examples=120, deadline=None)
@given(conjunctions, fact_sets, st.data())
def test_indexed_seminaive_equals_naive_seminaive(patterns, facts, data):
    all_facts = FactIndex(facts)
    delta_members = data.draw(st.lists(st.sampled_from(facts), unique=True)) if facts else []
    delta = FactIndex(delta_members)
    naive = _sub_set(match_conjunction_seminaive(patterns, all_facts, delta))
    fast = _dict_set(iter_join_seminaive(patterns, ArgIndex(facts), delta))
    assert naive == fast


@settings(max_examples=60, deadline=None)
@given(conjunctions, fact_sets, st.data())
def test_seminaive_is_the_differential_of_the_full_join(patterns, facts, data):
    """full(facts) − full(facts − delta) == seminaive(facts, delta)."""
    delta_members = data.draw(st.lists(st.sampled_from(facts), unique=True)) if facts else []
    delta = FactIndex(delta_members)
    remainder = [f for f in facts if f not in delta]
    full = _dict_set(iter_join(patterns, ArgIndex(facts)))
    old = _dict_set(iter_join(patterns, ArgIndex(remainder)))
    differential = _dict_set(iter_join_seminaive(patterns, ArgIndex(facts), delta))
    assert differential == full - old


@settings(max_examples=60, deadline=None)
@given(conjunctions, fact_sets)
def test_indexed_enumeration_is_deterministic(patterns, facts):
    index = ArgIndex(facts)
    first = [dict(m) for m in iter_join(patterns, index)]
    second = [dict(m) for m in iter_join(patterns, index)]
    assert first == second


# ---------------------------------------------------------------------------
# Grounding-level equivalence (bit-identical, order included)
# ---------------------------------------------------------------------------


def test_ground_program_bit_identical_to_naive_reference():
    """Production grounding (join engine) vs. the library's naive oracle
    (:func:`naive_ground_program`, the same reference the E13 bench gates on)."""
    program = selective_join_program()
    database = selective_join_database(60, seed=3)
    assert ground_program(program, database).rules == naive_ground_program(program, database).rules


def test_random_program_output_spaces_survive_the_join_engine():
    """End-to-end: chase + solving over random stratified programs agrees
    across grounder families (both routed through the join engine).

    Simple and perfect groundings legitimately differ as rule sets (the
    perfect grounder prunes instances via negation), but per Theorem 5.3
    the visible stable models and their probability masses coincide.
    """
    for seed in range(4):
        program = random_stratified_program(seed=seed, rule_count=3)
        database = random_database(seed=seed)
        simple = GDatalogEngine(program, database, grounder="simple").output_space()
        perfect = GDatalogEngine(program, database, grounder="perfect").output_space()

        def mass_by_models(space):
            masses: dict[frozenset, float] = {}
            for outcome in space:
                key = outcome.visible_stable_models()
                masses[key] = masses.get(key, 0.0) + outcome.probability
            return {k: round(v, 12) for k, v in masses.items()}

        assert mass_by_models(simple) == mass_by_models(perfect)
