"""Tier-1 wrappers for the repository's static gates.

Running the gates inside pytest keeps them honest locally, not just in
CI: the invariant lint, the corpus manifest, and the mypy ratchet
cross-check must all pass on every commit.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
TOOLS = REPO_ROOT / "tools"


def run_tool(*argv: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, *argv],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestLintInvariants:
    def test_source_tree_is_clean(self):
        result = run_tool(str(TOOLS / "lint_invariants.py"))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 finding(s)" in result.stderr

    def test_rng_rule_catches_direct_import(self, tmp_path):
        bad = tmp_path / "bad_rng.py"
        bad.write_text("import random\nrng = random.Random(7)\n")
        result = run_tool(str(TOOLS / "lint_invariants.py"), str(bad))
        assert result.returncode == 1
        assert "R1" in result.stdout

    def test_typed_raise_rule_catches_bare_valueerror(self):
        # The R2 rule keys on paths under src/repro/{logic,ppdl,gdatalog},
        # so exercise it directly with a path mapped into the package.
        import ast

        sys.path.insert(0, str(TOOLS))
        try:
            import lint_invariants

            findings: list[str] = []
            tree = ast.parse("def f(x):\n    raise ValueError('nope')\n")
            target = lint_invariants.SRC_ROOT / "logic" / "fake_raise.py"
            lint_invariants._check_typed_raises(target, tree, findings)
            assert findings and "R2" in findings[0]

            # The Mapping protocol exemption: KeyError inside __getitem__.
            findings = []
            tree = ast.parse(
                "class M:\n    def __getitem__(self, k):\n        raise KeyError(k)\n"
            )
            lint_invariants._check_typed_raises(target, tree, findings)
            assert findings == []
        finally:
            sys.path.remove(str(TOOLS))

    def test_counter_rule_catches_shared_counter_mutation(self):
        import ast

        sys.path.insert(0, str(TOOLS))
        try:
            import lint_invariants

            findings: list[str] = []
            tree = ast.parse("def f(service):\n    service.stats.hits += 1\n")
            target = lint_invariants.SRC_ROOT / "gdatalog" / "fake.py"
            lint_invariants._check_counter_mutations(target, tree, findings)
            assert findings and "R3" in findings[0]
        finally:
            sys.path.remove(str(TOOLS))


class TestCheckTypes:
    def test_ratchet_and_mypy_agree(self):
        # Locally this verifies the ratchet/mypy.ini cross-check and skips
        # the mypy run when the tool is absent; CI installs mypy and runs it.
        result = run_tool(str(TOOLS / "check_types.py"))
        assert result.returncode == 0, result.stdout + result.stderr

    def test_every_strict_section_is_ratcheted(self):
        sys.path.insert(0, str(TOOLS))
        try:
            import check_types

            sections = check_types.strict_sections()
            modules = check_types.ratcheted_modules()
            assert sections and modules
            for module in modules:
                assert check_types.covered(module, sections), module
        finally:
            sys.path.remove(str(TOOLS))


class TestCheckCorpus:
    def test_corpus_matches_manifest(self):
        result = run_tool(str(TOOLS / "check_corpus.py"))
        assert result.returncode == 0, result.stdout + result.stderr
        assert "0 failure(s)" in result.stderr

    def test_manifest_has_no_error_codes(self):
        manifest = json.loads((TOOLS / "corpus_manifest.json").read_text())
        assert manifest, "corpus manifest must not be empty"
        from repro.gdatalog.checker import CODES, Severity

        error_codes = {c for c, (s, _) in CODES.items() if s is Severity.ERROR}
        for name, codes in manifest.items():
            assert not (set(codes) & error_codes), name

    def test_manifest_covers_all_example_programs(self):
        manifest = json.loads((TOOLS / "corpus_manifest.json").read_text())
        examples = {
            f"examples/{p.name}"
            for p in (REPO_ROOT / "examples" / "programs").glob("*.dl")
        }
        assert examples <= set(manifest)
