"""ProgramAnalysis strategy pre-selection: cached inputs match the runtime.

The analysis promises bit-identical strategy inputs to what the engine
derives per request (the Hypothesis suite in
``tests/property/test_checker_equivalence.py`` fuzzes this; here the
identities are pinned on named workloads, plus the memoisation and
engine-attachment semantics).
"""

from __future__ import annotations

from repro.gdatalog.chase import ChaseConfig
from repro.gdatalog.checker import analyze_program
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.factorize import decompose
from repro.gdatalog.incremental import patch_eligible
from repro.gdatalog.relevance import compute_slice, permanent_seeds
from repro.gdatalog.translate import translate_program
from repro.logic.database import Database
from repro.workloads import (
    dime_quarter_database,
    dime_quarter_program,
    independent_coins_database,
    independent_coins_program,
    paper_example_database,
    resilience_program,
)


class TestStrategyInputs:
    def test_permanent_seeds_match_relevance(self):
        for program in (dime_quarter_program(), resilience_program()):
            analysis = analyze_program(program)
            assert analysis.permanent_seeds == permanent_seeds(program)

    def test_slice_cone_matches_compute_slice(self):
        program = dime_quarter_program()
        database = dime_quarter_database()
        analysis = analyze_program(program, database)
        for atoms in (["somedimetail"], ["quartertail(1, 1)"], []):
            predicted = analysis.slice_cone(atoms)
            actual = compute_slice(program, database, atoms).predicates
            assert predicted == actual

    def test_decomposition_is_bit_identical_to_decompose(self):
        program = independent_coins_program()
        database = independent_coins_database(4)
        translated = translate_program(program)
        config = ChaseConfig(factorize=True)
        analysis = analyze_program(program, database)
        assert analysis.decomposition(translated, database, config) == decompose(
            translated, database, config
        )

    def test_decomposition_is_memoised_per_database_and_config(self):
        program = independent_coins_program()
        database = independent_coins_database(3)
        translated = translate_program(program)
        config = ChaseConfig(factorize=True)
        analysis = analyze_program(program, database)
        first = analysis.decomposition(translated, database, config)
        assert analysis.decomposition(translated, database, config) is first
        # A different database must not reuse the memoised partition.
        other = Database(tuple(database.facts)[:1])
        assert analysis.decomposition(translated, other, config) != first

    def test_delta_patchable_matches_patch_eligible(self):
        program = dime_quarter_program()
        analysis = analyze_program(program)
        for predicate in sorted(program.predicates(), key=str):
            assert analysis.delta_patchable((predicate,)) == patch_eligible(
                program, (predicate,)
            ), str(predicate)

    def test_patchable_predicates_is_the_extensional_patchable_set(self):
        program = dime_quarter_program()
        analysis = analyze_program(program)
        expected = frozenset(
            p for p in program.extensional_predicates() if patch_eligible(program, (p,))
        )
        assert analysis.patchable_predicates == expected


class TestProgramDigest:
    def test_digest_is_insensitive_to_rule_order(self):
        program = dime_quarter_program()
        reordered = type(program)(tuple(reversed(program.rules)), program.registry)
        assert (
            analyze_program(program).program_digest
            == analyze_program(reordered).program_digest
        )

    def test_digest_distinguishes_programs(self):
        assert (
            analyze_program(dime_quarter_program()).program_digest
            != analyze_program(resilience_program()).program_digest
        )


class TestEngineAttachment:
    def test_precomputed_analysis_is_attached(self):
        program = dime_quarter_program()
        database = dime_quarter_database()
        analysis = analyze_program(program, database)
        engine = GDatalogEngine(program, database, analysis=analysis)
        assert engine.analysis is analysis

    def test_equal_but_distinct_program_object_still_attaches(self):
        # The guard compares rule tuples, not object identity: an analysis
        # for an equal program (e.g. re-parsed source) is just as valid.
        database = dime_quarter_database()
        analysis = analyze_program(dime_quarter_program(), database)
        engine = GDatalogEngine(dime_quarter_program(), database, analysis=analysis)
        assert engine.analysis is analysis

    def test_mismatched_analysis_is_rejected(self):
        database = paper_example_database()
        wrong = analyze_program(dime_quarter_program())
        engine = GDatalogEngine(resilience_program(), database, analysis=wrong)
        assert engine.analysis is not wrong
        assert engine.analysis.program.rules == engine.program.rules

    def test_lazy_analysis_is_derived_and_cached(self):
        engine = GDatalogEngine(dime_quarter_program(), dime_quarter_database())
        assert engine.analysis is engine.analysis

    def test_engine_with_analysis_answers_identically(self):
        program = dime_quarter_program()
        database = dime_quarter_database()
        analysis = analyze_program(program, database)
        specs = ["somedimetail", "quartertail(1, 1)", {"type": "has_stable_model"}]
        with_analysis = GDatalogEngine(program, database, analysis=analysis)
        without = GDatalogEngine(program, database)
        assert with_analysis.evaluate_queries(specs) == without.evaluate_queries(specs)
        assert with_analysis.evaluate_queries(specs, slice=True) == (
            without.evaluate_queries(specs, slice=True)
        )

    def test_factorized_engine_reuses_the_analysis_partition(self):
        program = independent_coins_program()
        database = independent_coins_database(3)
        analysis = analyze_program(program, database)
        config = ChaseConfig(factorize=True)
        engine = GDatalogEngine(program, database, chase_config=config, analysis=analysis)
        space = engine.output_space()
        cached = analysis.decomposition(engine.translated, database, config)
        assert cached is not None and cached.generative_count >= 2
        flat = GDatalogEngine(program, database).output_space()
        heads = "heads(1)"
        from repro.ppdl.queries import query_from_spec

        query = query_from_spec(heads)
        assert query.evaluate(space) == query.evaluate(flat)
