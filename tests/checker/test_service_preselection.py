"""Service-level validation gate and analysis-driven strategy pre-selection.

The acceptance-criteria core: an :class:`InferenceService` with
``validate=True`` answers **bit-identically** to a plain service and to a
direct engine — pre-selecting factorize/slice/patch from the cached
:class:`ProgramAnalysis` must change cost, never answers.
"""

from __future__ import annotations

import pytest

from repro.gdatalog.checker import DiagnosticsError
from repro.gdatalog.engine import GDatalogEngine
from repro.runtime.service import InferenceService
from repro.workloads import (
    INDEPENDENT_COINS_PROGRAM_SOURCE,
    independent_coins_database,
)

PROGRAM = """
dimetail(X, flip<0.5>[X]) :- dime(X).
somedimetail :- dimetail(X, 1).
quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail.
"""
DATABASE = "dime(1). dime(2). quarter(1)."
QUERIES = ["somedimetail", "quartertail(1, 1)", {"type": "has_stable_model"}]

UNSAFE = "h(X, Y) :- b(X).\n"
COIN = "coin(flip<0.5>).\naux2 :- coin(1), not aux1.\naux1 :- coin(1), not aux2.\n:- coin(0)."


def _coins_sources():
    facts = "\n".join(f"{fact}." for fact in sorted(
        independent_coins_database(4).facts, key=str
    ))
    return INDEPENDENT_COINS_PROGRAM_SOURCE, facts


class TestBitIdentity:
    def test_validating_service_matches_plain_service_and_engine(self):
        validating = InferenceService(validate=True)
        plain = InferenceService()
        expected = GDatalogEngine.from_source(PROGRAM, DATABASE).evaluate_queries(QUERIES)
        assert validating.evaluate(PROGRAM, DATABASE, QUERIES) == expected
        assert plain.evaluate(PROGRAM, DATABASE, QUERIES) == expected

    def test_preselected_slicing_matches(self):
        validating = InferenceService(validate=True, slice=True)
        plain = InferenceService(slice=True)
        assert validating.evaluate(PROGRAM, DATABASE, QUERIES) == (
            plain.evaluate(PROGRAM, DATABASE, QUERIES)
        )

    def test_preselected_factorization_matches(self):
        program, database = _coins_sources()
        queries = ["heads(1)", "lucky(2)", {"type": "has_stable_model"}]
        validating = InferenceService(validate=True, factorize=True)
        plain = InferenceService(factorize=True)
        flat = InferenceService()
        expected = flat.evaluate(program, database, queries)
        assert validating.evaluate(program, database, queries) == expected
        assert plain.evaluate(program, database, queries) == expected

    def test_validating_and_plain_service_share_canonical_keys(self):
        # Reordered-but-equal sources canonicalize to one cache entry on
        # both the validate path (via the analysis) and the raw path.
        validating = InferenceService(validate=True)
        reordered = "\n".join(reversed(PROGRAM.strip().splitlines()))
        validating.evaluate(PROGRAM, DATABASE, ["somedimetail"])
        validating.evaluate(reordered, DATABASE, ["somedimetail"])
        counters = validating.stats.snapshot()
        assert counters["misses"] == 1 and counters["hits"] == 1

    def test_update_pipeline_still_exact_under_validation(self):
        validating = InferenceService(validate=True)
        plain = InferenceService()
        results = []
        for service in (validating, plain):
            service.evaluate(PROGRAM, DATABASE, QUERIES)
            update = service.update(
                PROGRAM, DATABASE, {"insert": ["quarter(2)"], "retract": ["dime(2)"]}
            )
            results.append(
                service.evaluate(PROGRAM, update.database_source, QUERIES)
            )
        assert results[0] == results[1]


class TestValidationGate:
    def test_unsafe_program_raises_diagnostics_error(self):
        service = InferenceService(validate=True)
        with pytest.raises(DiagnosticsError) as excinfo:
            service.evaluate(UNSAFE, "b(1).", ["h(1, 1)"])
        codes = {d.code for d in excinfo.value.diagnostics}
        assert "GDL001" in codes

    def test_warnings_do_not_block_evaluation(self):
        service = InferenceService(validate=True)
        analysis = service.check(COIN)
        assert analysis.warnings() and analysis.ok
        assert service.evaluate(COIN, "", [{"type": "has_stable_model"}]) == [0.5]

    def test_gate_off_by_default(self):
        assert InferenceService().validate is False

    def test_failed_analyses_are_cached(self):
        service = InferenceService(validate=True)
        for _ in range(2):
            with pytest.raises(DiagnosticsError):
                service.evaluate(UNSAFE, "b(1).", ["h(1, 1)"])
        assert service.check(UNSAFE, "b(1).") is service.check(UNSAFE, "b(1).")


class TestCheckMethod:
    def test_check_never_raises_and_is_cached_on_raw_text(self):
        service = InferenceService()
        first = service.check(UNSAFE)
        assert not first.ok
        assert service.check(UNSAFE) is first

    def test_check_feeds_the_validation_gate(self):
        # check() then evaluate() runs the checker exactly once: the gate
        # reuses the cached analysis.
        service = InferenceService(validate=True)
        analysis = service.check(PROGRAM, DATABASE)
        assert analysis.ok
        service.evaluate(PROGRAM, DATABASE, ["somedimetail"])
        assert service.check(PROGRAM, DATABASE) is analysis

    def test_clear_drops_cached_analyses(self):
        service = InferenceService(validate=True)
        analysis = service.check(PROGRAM, DATABASE)
        service.clear()
        assert service.check(PROGRAM, DATABASE) is not analysis

    def test_engine_carries_the_precomputed_analysis(self):
        service = InferenceService(validate=True)
        analysis = service.check(PROGRAM, DATABASE)
        engine = service.engine(PROGRAM, DATABASE)
        assert engine.analysis is analysis
