"""Unit tests for the static checker: every GDLxxx code fires with a span.

Each test feeds :func:`check_source` a minimal program exhibiting exactly
one pathology and asserts the stable code, the severity, and the source
span (line/column) — the contract editors, CI manifests and the serve
protocol's 400 responses match on.
"""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gdatalog.checker import (
    CODES,
    Diagnostic,
    DiagnosticsError,
    Severity,
    analyze_program,
    check_source,
    render_diagnostics,
)
from repro.logic.parser import parse_gdatalog_program


def codes(analysis):
    return [d.code for d in analysis.diagnostics]


def only(analysis, code):
    found = [d for d in analysis.diagnostics if d.code == code]
    assert found, f"expected {code}, got {codes(analysis)}"
    return found[0]


class TestSyntaxRecovery:
    def test_broken_statement_yields_gdl000_and_checking_continues(self):
        source = "p(1).\nq( :- junk.\nr(2)."
        analysis = check_source(source)
        assert "GDL000" in codes(analysis)
        # The two well-formed statements still made it into the program.
        names = {r.head.predicate.name for r in analysis.program.rules}
        assert names == {"p", "r"}
        assert not analysis.ok

    def test_gdl000_span_points_at_offending_line(self):
        analysis = check_source("p(1).\nq( :- junk.")
        diagnostic = only(analysis, "GDL000")
        assert diagnostic.span is not None and diagnostic.span.line == 2

    def test_database_syntax_errors_carry_database_origin(self):
        analysis = check_source("p(X) :- e(X).", "e(1).\nbad( :-.")
        diagnostic = only(analysis, "GDL000")
        assert diagnostic.origin == "database"

    def test_database_rejects_rules_and_nonground_facts(self):
        analysis = check_source("p(X) :- e(X).", "e(X) :- p(X).\ne(Y).")
        messages = [d.message for d in analysis.diagnostics if d.code == "GDL000"]
        assert any("only contain facts" in m for m in messages)
        assert any("must be ground" in m for m in messages)


class TestSafety:
    def test_unsafe_head_variable_is_gdl001(self):
        analysis = check_source("h(X, Y) :- b(X).")
        diagnostic = only(analysis, "GDL001")
        assert diagnostic.severity is Severity.ERROR
        assert "Y" in diagnostic.message and "h" in diagnostic.message
        assert diagnostic.span is not None and diagnostic.span.line == 1
        assert not analysis.ok

    def test_unsafe_negated_variable_is_gdl002(self):
        analysis = check_source("h(X) :- b(X), not q(Y).")
        diagnostic = only(analysis, "GDL002")
        assert diagnostic.severity is Severity.ERROR
        assert "Y" in diagnostic.message and "q" in diagnostic.message

    def test_delta_term_parameters_count_as_bound(self):
        # The Δ-term's event signature uses X, bound by the positive body.
        analysis = check_source("c(X, flip<0.5>[X]) :- e(X).")
        assert "GDL001" not in codes(analysis)

    def test_unsafe_rule_is_excluded_from_the_checked_program(self):
        analysis = check_source("h(X, Y) :- b(X).\nsafe(X) :- b(X).")
        names = {r.head.predicate.name for r in analysis.program.rules}
        assert names == {"safe"}


class TestDeltaTerms:
    def test_unknown_distribution_is_gdl003_listing_known_names(self):
        analysis = check_source("c(flipp<0.5>).")
        diagnostic = only(analysis, "GDL003")
        assert diagnostic.severity is Severity.ERROR
        assert "flipp" in diagnostic.message
        assert "flip" in diagnostic.message  # the known-names list

    def test_wrong_parameter_count_is_gdl003(self):
        analysis = check_source("c(flip<0.5, 0.3>).")
        diagnostic = only(analysis, "GDL003")
        assert "parameter" in diagnostic.message


class TestStratification:
    COIN = "coin(flip<0.5>).\naux2 :- coin(1), not aux1.\naux1 :- coin(1), not aux2.\n:- coin(0)."

    def test_negative_cycle_is_gdl010_warning_not_error(self):
        # Stable-model semantics evaluates negative cycles (the paper's
        # fair-coin program depends on one) — the finding must not make the
        # program un-runnable.
        analysis = check_source(self.COIN)
        diagnostic = only(analysis, "GDL010")
        assert diagnostic.severity is Severity.WARNING
        assert analysis.ok
        assert not analysis.stratified

    def test_gdl010_message_carries_a_witness_path(self):
        diagnostic = only(check_source(self.COIN), "GDL010")
        assert "-[not]->" in diagnostic.message
        assert "aux1" in diagnostic.message or "aux2" in diagnostic.message

    def test_gdl010_span_points_at_a_cycle_rule(self):
        diagnostic = only(check_source(self.COIN), "GDL010")
        assert diagnostic.span is not None and diagnostic.span.line in (2, 3)
        assert diagnostic.rule is not None and "not" in diagnostic.rule

    def test_stratified_program_has_no_gdl010(self):
        analysis = check_source("p(X) :- e(X).\nq(X) :- e(X), not p(X).")
        assert "GDL010" not in codes(analysis)
        assert analysis.stratified


class TestSchema:
    def test_arity_clash_is_gdl020(self):
        analysis = check_source("p(1).\nq(X) :- p(X, X).")
        diagnostic = only(analysis, "GDL020")
        assert diagnostic.severity is Severity.WARNING
        assert "'p'" in diagnostic.message and "1, 2" in diagnostic.message

    def test_arity_clash_across_program_and_database(self):
        analysis = check_source("q(X) :- p(X).", "p(1, 2).")
        assert "GDL020" in codes(analysis)

    def test_fact_for_derived_predicate_is_gdl021_with_database_origin(self):
        analysis = check_source("d(X) :- e(X).", "e(1).\nd(1).")
        diagnostic = only(analysis, "GDL021")
        assert diagnostic.origin == "database"
        assert diagnostic.span is not None and diagnostic.span.line == 2
        assert "d" in diagnostic.message

    def test_gdl021_fires_once_per_predicate(self):
        analysis = check_source("d(X) :- e(X).", "d(1).\nd(2).\nd(3).")
        assert codes(analysis).count("GDL021") == 1


class TestDerivability:
    def test_underivable_predicate_is_gdl022_and_its_rule_gdl023(self):
        analysis = check_source("h(X) :- ghost(X).", "e(1).")
        gdl022 = only(analysis, "GDL022")
        assert "ghost" in gdl022.message
        gdl023 = only(analysis, "GDL023")
        assert "ghost" in gdl023.message and gdl023.rule is not None

    def test_source_check_judges_an_empty_database(self):
        # check_source always materialises a database (empty without -d),
        # so an EDB predicate with no facts is flagged as underivable.
        analysis = check_source("h(X) :- e(X).")
        assert "GDL022" in codes(analysis)

    def test_object_level_none_database_cannot_judge_missing_facts(self):
        # analyze_program(program, None) means "database unknown": only
        # intensional predicates with no deriving rule are underivable.
        program = parse_gdatalog_program("h(X) :- e(X).")
        analysis = analyze_program(program, None)
        assert "GDL022" not in codes(analysis)

    def test_dead_constraint_is_flagged(self):
        analysis = check_source("h(X) :- e(X).\n:- ghost(X).", "e(1).")
        gdl023 = [d for d in analysis.diagnostics if d.code == "GDL023"]
        assert any("constraint" in d.message for d in gdl023)

    def test_unused_derived_predicate_is_gdl024_info(self):
        analysis = check_source("out(X) :- e(X), used(X).\nused(X) :- e(X).")
        diagnostic = only(analysis, "GDL024")
        assert diagnostic.severity is Severity.INFO
        assert "out" in diagnostic.message
        assert analysis.ok


class TestChoiceStructure:
    def test_dependent_choices_are_gdl030(self):
        # quartertail is conditioned on the dimes through somedimetail, so
        # the two choice cones overlap and cannot be factorized apart.
        source = (
            "dimetail(X, flip<0.5>[X]) :- dime(X).\n"
            "somedimetail :- dimetail(X, 1).\n"
            "quartertail(X, flip<0.5>[X]) :- quarter(X), not somedimetail."
        )
        analysis = check_source(source)
        diagnostic = only(analysis, "GDL030")
        assert "dimetail" in diagnostic.message and "quartertail" in diagnostic.message
        assert "2^" in diagnostic.message

    def test_independent_choices_are_not_flagged(self):
        source = "a(X, flip<0.5>[X]) :- e1(X).\nb(X, flip<0.5>[X]) :- e2(X)."
        assert "GDL030" not in codes(check_source(source))


class TestCostSmells:
    def test_cross_product_body_is_gdl040(self):
        analysis = check_source("h(X, Y) :- a(X), b(Y).")
        diagnostic = only(analysis, "GDL040")
        assert "cartesian" in diagnostic.message

    def test_joined_body_is_not_flagged(self):
        assert "GDL040" not in codes(check_source("h(X, Y) :- a(X, Y), b(Y)."))

    def test_negation_joining_disconnected_groups_is_gdl041(self):
        analysis = check_source("h(X, Y) :- a(X), b(Y), not c(X, Y).")
        diagnostic = only(analysis, "GDL041")
        assert "c(X, Y)" in diagnostic.message

    def test_ground_atoms_do_not_trigger_cost_smells(self):
        # Variable-free atoms form no open group; p(1), q(2) is not a join.
        assert "GDL040" not in codes(check_source("h(X) :- e(X), p(1), q(2)."))


class TestDiagnosticType:
    def test_unknown_code_is_rejected(self):
        with pytest.raises(ValidationError):
            Diagnostic("GDL999", Severity.ERROR, "nope")

    def test_render_format(self):
        analysis = check_source("h(X, Y) :- b(X).")
        line = only(analysis, "GDL001").render("prog.dl")
        assert line.startswith("prog.dl:1:")
        assert " error GDL001: " in line

    def test_render_diagnostics_routes_database_findings(self):
        analysis = check_source("d(X) :- e(X).", "e(1).\nd(1).")
        text = render_diagnostics(analysis.diagnostics, "p.dl", "d.facts")
        assert "d.facts:2:" in text

    def test_as_dict_carries_span_and_code(self):
        payload = only(check_source("h(X, Y) :- b(X)."), "GDL001").as_dict()
        assert payload["code"] == "GDL001"
        assert payload["severity"] == "error"
        assert payload["span"]["line"] == 1

    def test_every_code_has_severity_and_title(self):
        for code, (severity, title) in CODES.items():
            assert code.startswith("GDL") and len(code) == 6
            assert isinstance(severity, Severity) and title


class TestVerdicts:
    def test_raise_for_errors_raises_diagnostics_error_with_findings(self):
        analysis = check_source("h(X, Y) :- b(X).\nc(flipp<0.5>).")
        with pytest.raises(DiagnosticsError) as excinfo:
            analysis.raise_for_errors()
        error = excinfo.value
        assert {d.code for d in error.diagnostics} >= {"GDL001", "GDL003"}
        # DiagnosticsError is a ValidationError is a ValueError.
        assert isinstance(error, ValueError)

    def test_raise_for_errors_is_a_noop_on_warnings(self):
        analysis = check_source(TestStratification.COIN)
        assert analysis.warnings()
        analysis.raise_for_errors()

    def test_diagnostics_are_sorted_by_position(self):
        analysis = check_source("h(X, Y) :- b(X).\nc(flipp<0.5>).")
        lines = [d.span.line for d in analysis.diagnostics if d.span is not None]
        assert lines == sorted(lines)

    def test_as_dict_shape(self):
        payload = check_source("p(X) :- e(X).").as_dict()
        assert payload["ok"] is True
        assert set(payload) >= {
            "ok", "errors", "warnings", "rules", "predicates",
            "program_digest", "diagnostics", "strategy",
        }
        strategy = payload["strategy"]
        assert set(strategy) >= {
            "stratified", "generative_rules", "choice_cone",
            "permanent_slice_seeds", "dependent_choice_groups",
            "outcome_space_log2", "patchable_predicates",
        }


class TestAnalyzeProgram:
    def test_object_level_analysis_has_no_spans(self):
        program = parse_gdatalog_program("d(X) :- e(X).\nd2(X) :- ghost(X).")
        analysis = analyze_program(program)
        assert all(d.span is None for d in analysis.diagnostics)

    def test_object_level_matches_source_level_codes(self):
        from repro.logic.parser import parse_database

        source = "out(X) :- e(X), used(X).\nused(X) :- e(X)."
        database_source = "e(1)."
        program = parse_gdatalog_program(source)
        database = parse_database(database_source)
        object_codes = sorted(
            d.code for d in analyze_program(program, database).diagnostics
        )
        source_codes = sorted(
            d.code for d in check_source(source, database_source).diagnostics
        )
        assert object_codes == source_codes
