"""``gdatalog check``: lint-style exit codes, rendering, --json, --strict."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
COIN_PROGRAM = REPO_ROOT / "examples" / "programs" / "coin.dl"
DIME_QUARTER_PROGRAM = REPO_ROOT / "examples" / "programs" / "dime_quarter.dl"
DIME_QUARTER_FACTS = REPO_ROOT / "examples" / "programs" / "dime_quarter.facts"

CLEAN = "reach(X) :- edge(X).\nreach(Y) :- reach(X), edge2(X, Y).\n"
UNSAFE = "h(X, Y) :- b(X).\nc(flipp<0.5>).\n"


@pytest.fixture()
def clean_path(tmp_path):
    path = tmp_path / "clean.dl"
    path.write_text(CLEAN)
    (tmp_path / "clean.facts").write_text("edge(1).\nedge2(1, 2).\n")
    return path


@pytest.fixture()
def unsafe_path(tmp_path):
    path = tmp_path / "unsafe.dl"
    path.write_text(UNSAFE)
    return path


class TestParser:
    def test_check_defaults(self):
        args = build_parser().parse_args(["check", "p.dl"])
        assert args.command == "check"
        assert args.database is None
        assert not args.json and not args.strict

    def test_check_flags(self):
        args = build_parser().parse_args(
            ["check", "p.dl", "-d", "p.facts", "--json", "--strict"]
        )
        assert args.database == "p.facts" and args.json and args.strict


class TestExitCodes:
    def test_clean_program_exits_zero(self, capsys, clean_path):
        code = main(["check", str(clean_path), "-d", str(clean_path.with_suffix(".facts"))])
        out = capsys.readouterr().out
        assert code == 0
        assert "OK" in out and "0 error(s)" in out

    def test_errors_exit_one_with_spans(self, capsys, unsafe_path):
        code = main(["check", str(unsafe_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert f"{unsafe_path}:1:" in out and "GDL001" in out
        assert "GDL003" in out
        assert "FAILED" in out

    def test_warnings_pass_by_default_and_fail_strict(self, capsys):
        # The fair-coin program carries the deliberate GDL010 warning.
        assert main(["check", str(COIN_PROGRAM)]) == 0
        first = capsys.readouterr().out
        assert "GDL010" in first and "warning" in first
        assert main(["check", str(COIN_PROGRAM), "--strict"]) == 1

    def test_missing_file_is_a_cli_error(self, capsys, tmp_path):
        assert main(["check", str(tmp_path / "absent.dl")]) == 1
        assert "error:" in capsys.readouterr().err


class TestJson:
    def test_json_payload_shape(self, capsys, unsafe_path):
        code = main(["check", str(unsafe_path), "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is False and payload["clean"] is False
        assert payload["errors"] >= 2
        assert {d["code"] for d in payload["diagnostics"]} >= {"GDL001", "GDL003"}
        spans = [d["span"] for d in payload["diagnostics"] if "span" in d]
        assert spans and all({"line", "column"} <= set(s) for s in spans)

    def test_json_strict_flips_clean_but_not_ok(self, capsys):
        code = main(["check", str(COIN_PROGRAM), "--json", "--strict"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["ok"] is True  # evaluable: no error-severity findings
        assert payload["clean"] is False  # but --strict fails on the warning
        assert payload["strategy"]["stratified"] is False

    def test_json_reports_strategy_for_examples(self, capsys):
        code = main(
            ["check", str(DIME_QUARTER_PROGRAM), "-d", str(DIME_QUARTER_FACTS), "--json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        strategy = payload["strategy"]
        assert strategy["dependent_choice_groups"]  # dimes condition quarters
        assert payload["program_digest"]


class TestDatabaseFindings:
    def test_database_diagnostics_render_with_database_filename(self, capsys, tmp_path):
        program = tmp_path / "p.dl"
        program.write_text("d(X) :- e(X).\n")
        facts = tmp_path / "p.facts"
        facts.write_text("e(1).\nd(1).\n")
        code = main(["check", str(program), "-d", str(facts)])
        out = capsys.readouterr().out
        assert code == 0
        assert f"{facts}:2:" in out and "GDL021" in out
