"""Unit tests for the workload generators (networks, coins, random programs)."""

from __future__ import annotations

import pytest

from repro.exceptions import ValidationError
from repro.gdatalog.engine import GDatalogEngine
from repro.logic.atoms import fact
from repro.workloads import (
    biased_die_program,
    coin_program,
    dime_quarter_database,
    dime_quarter_program,
    monotone_infection_program,
    network_database,
    paper_example_database,
    random_database,
    random_network,
    random_positive_program,
    random_stratified_program,
    resilience_program,
    topology_graph,
)


class TestNetworkWorkloads:
    def test_paper_example_database(self):
        db = paper_example_database()
        assert len(db.relation("router")) == 3
        assert len(db.relation("connected")) == 6
        assert fact("infected", 1, 1) in db

    def test_resilience_program_parameterized(self):
        program = resilience_program(0.25)
        rendered = str(program)
        assert "flip<0.25>" in rendered
        with pytest.raises(ValidationError):
            resilience_program(1.5)

    def test_monotone_program_has_no_negation(self):
        program = monotone_infection_program(0.1)
        assert program.is_positive

    @pytest.mark.parametrize("kind", ["clique", "star", "chain", "cycle", "grid", "er", "ba"])
    def test_topologies(self, kind):
        graph = topology_graph(kind, 6, seed=1)
        assert graph.number_of_nodes() >= 1
        db = network_database(graph, infected_seeds=[sorted(graph.nodes())[0]])
        assert len(db.relation("router")) == graph.number_of_nodes()
        assert len(db.relation("connected")) == 2 * graph.number_of_edges()

    def test_unknown_topology(self):
        with pytest.raises(ValidationError):
            topology_graph("torus", 4)

    def test_invalid_size(self):
        with pytest.raises(ValidationError):
            topology_graph("clique", 0)

    def test_seed_must_be_a_node(self):
        graph = topology_graph("chain", 3)
        with pytest.raises(ValidationError):
            network_database(graph, infected_seeds=[99])

    def test_random_network_fallback_seed(self):
        db = random_network(5, kind="er", seed=3, seeds=(99,))
        assert len(db.relation("infected")) == 1

    def test_er_networks_are_reproducible(self):
        assert random_network(6, kind="er", seed=4) == random_network(6, kind="er", seed=4)

    def test_small_network_end_to_end(self):
        engine = GDatalogEngine(resilience_program(0.2), random_network(3, kind="chain"))
        p = engine.probability_has_stable_model()
        assert 0.0 <= p <= 1.0


class TestCoinWorkloads:
    def test_coin_program_structure(self):
        program = coin_program()
        assert len(program) == 4
        assert program.has_constraints

    def test_coin_bias(self):
        program = coin_program(bias=0.2)
        assert "flip<0.2>" in str(program)

    def test_dime_quarter_database(self):
        db = dime_quarter_database(dimes=3, quarters=2)
        assert len(db.relation("dime")) == 3
        assert len(db.relation("quarter")) == 2
        # Global identifiers: dime ids and quarter ids do not overlap.
        dime_ids = {t[0] for t in db.tuples("dime")}
        quarter_ids = {t[0] for t in db.tuples("quarter")}
        assert not dime_ids & quarter_ids

    def test_dime_quarter_program_biases(self):
        program = dime_quarter_program(dime_bias=0.3, quarter_bias=0.7)
        rendered = str(program)
        assert "flip<0.3>" in rendered and "flip<0.7>" in rendered
        assert program.is_stratified

    def test_biased_die_program(self):
        program = biased_die_program((0.5, 0.1, 0.1, 0.1, 0.1, 0.1))
        engine = GDatalogEngine(program, dime_quarter_database(dimes=0, quarters=0).with_facts([fact("player", 1)]))
        space = engine.output_space()
        assert len(space) == 6
        assert space.finite_probability == pytest.approx(1.0)
        assert space.marginal(fact("roll", 1, 1)) == pytest.approx(0.5)


class TestRandomPrograms:
    def test_reproducibility(self):
        assert str(random_positive_program(seed=5)) == str(random_positive_program(seed=5))
        assert str(random_stratified_program(seed=5)) == str(random_stratified_program(seed=5))
        assert random_database(seed=5) == random_database(seed=5)

    def test_positive_programs_are_positive(self):
        for seed in range(5):
            program = random_positive_program(seed=seed)
            assert program.is_positive

    def test_stratified_programs_are_stratified(self):
        for seed in range(8):
            program = random_stratified_program(seed=seed)
            assert program.is_stratified

    def test_random_programs_run_end_to_end(self):
        for seed in range(3):
            program = random_stratified_program(seed=seed, rule_count=3)
            database = random_database(seed=seed, domain_size=2)
            engine = GDatalogEngine(program, database, grounder="perfect")
            space = engine.output_space()
            assert 0.0 <= space.finite_probability <= 1.0 + 1e-9

    def test_database_domain_size(self):
        db = random_database(seed=2, domain_size=2)
        values = {c.value for c in db.domain()}
        assert values <= {1, 2}
