#!/usr/bin/env python3
"""AST lint for repository-wide invariants the type checker cannot see.

Four rules, each protecting a property other layers rely on:

* **R1 — randomness/time funnels through** :mod:`repro.rng`.
  ``import random`` / ``from random import ...`` (outside ``TYPE_CHECKING``
  blocks), ``time.time()`` calls and any use of ``numpy.random`` are only
  allowed in ``src/repro/rng.py``.  Seeded runs are bit-reproducible only
  while every stream is built by :func:`repro.rng.seeded_random` /
  :func:`repro.rng.default_rng`; ``time.perf_counter`` (interval timing)
  stays allowed everywhere.

* **R2 — no bare ``ValueError``/``KeyError`` on user-input paths.**
  ``raise ValueError(...)`` / ``raise KeyError(...)`` inside
  ``repro.logic``, ``repro.ppdl`` and ``repro.gdatalog`` must be a typed
  :mod:`repro.exceptions` error instead (``ValidationError`` subclasses
  ``ValueError``, so callers keep working).  Mapping-protocol methods
  (``__getitem__`` / ``__missing__``) are exempt: the protocol *requires*
  ``KeyError`` there.

* **R3 — shared counters mutate only through their locked owners.**
  Assignments/augmented assignments to attributes of ``JOIN_STATS`` or of
  any ``*.stats`` object are only allowed in ``src/repro/logic/join.py``
  and ``src/repro/runtime/service.py`` (whose ``bump``/``snapshot`` methods
  hold the lock).  A drive-by ``service.stats.hits += 1`` elsewhere races.

* **R4 — no silently swallowed exceptions in the server layer.**
  Inside ``src/repro/server/`` a bare ``except:`` is forbidden, and so is
  ``except Exception:`` / ``except BaseException:`` whose body is only
  ``pass``/``...``.  The durability contract (journal-before-ack, typed
  retryable errors) only holds if failures *surface*; a swallowed
  exception turns a crash-safe path into silent data loss.  Handlers that
  log, re-raise, count, or return an error response are fine — the rule
  targets the empty-body pattern specifically.

Exit code 0 when clean, 1 with one ``file:line: RULE message`` per finding.
Run from the repository root (CI does); no third-party dependencies.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src" / "repro"

#: Files allowed to import/construct stdlib or NumPy randomness directly.
RNG_ALLOWED = {SRC_ROOT / "rng.py"}

#: Packages where bare ValueError/KeyError raises are forbidden (user-input
#: and evaluation paths; the runtime/server layers wrap these).
TYPED_RAISE_PACKAGES = ("logic", "ppdl", "gdatalog")

#: Files that own the locked shared-counter objects.
COUNTER_OWNERS = {
    SRC_ROOT / "logic" / "join.py",
    SRC_ROOT / "runtime" / "service.py",
}

#: Methods where the Mapping protocol mandates KeyError.
KEYERROR_PROTOCOL_METHODS = {"__getitem__", "__missing__", "__delitem__"}

#: Counter attributes of the *shared* (cross-thread) stats objects.  Per-run
#: ChaseStats counters (nodes_visited, leaves, ...) are single-owner and
#: deliberately not listed.
SHARED_COUNTERS = {
    # ServiceStats (repro/runtime/service.py)
    "hits",
    "misses",
    "evictions",
    "component_hits",
    "component_misses",
    "slice_hits",
    "slice_misses",
    "updates_applied",
    "subtrees_invalidated",
    "subtrees_reused",
    # JoinStats (repro/logic/join.py, process-wide JOIN_STATS)
    "index_probes",
    "full_scans",
    "indexes_built",
    "plans_compiled",
    "plans_reused",
    "batches_executed",
    "rows_selected",
    "rows_joined",
    "snapshot_copies",
}


def _type_checking_ranges(tree: ast.Module) -> list[tuple[int, int]]:
    """Line ranges of ``if TYPE_CHECKING:`` blocks (type-only imports are fine)."""
    ranges = []
    for node in ast.walk(tree):
        if isinstance(node, ast.If):
            test = node.test
            is_tc = (isinstance(test, ast.Name) and test.id == "TYPE_CHECKING") or (
                isinstance(test, ast.Attribute) and test.attr == "TYPE_CHECKING"
            )
            if is_tc:
                ranges.append((node.lineno, max(n.end_lineno or n.lineno for n in node.body)))
    return ranges


def _in_ranges(line: int, ranges: list[tuple[int, int]]) -> bool:
    return any(start <= line <= end for start, end in ranges)


def _enclosing_functions(tree: ast.Module) -> dict[int, str]:
    """Map each line to the name of its innermost enclosing function."""
    owner: dict[int, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for line in range(node.lineno, (node.end_lineno or node.lineno) + 1):
                owner[line] = node.name  # later (inner) defs overwrite outer ones
    return owner


def _check_rng(path: Path, tree: ast.Module, findings: list[str]) -> None:
    if path in RNG_ALLOWED:
        return
    tc_ranges = _type_checking_ranges(tree)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "random" and not _in_ranges(node.lineno, tc_ranges):
                    findings.append(
                        f"{path}:{node.lineno}: R1 import random outside repro/rng.py "
                        "(use repro.rng.seeded_random)"
                    )
        elif isinstance(node, ast.ImportFrom):
            if node.module and node.module.split(".")[0] == "random":
                if not _in_ranges(node.lineno, tc_ranges):
                    findings.append(
                        f"{path}:{node.lineno}: R1 from random import ... outside repro/rng.py "
                        "(use repro.rng.seeded_random)"
                    )
        elif isinstance(node, ast.Attribute):
            # numpy.random / np.random in any expression position.
            if node.attr == "random" and isinstance(node.value, ast.Name):
                if node.value.id in ("numpy", "np", "_np"):
                    findings.append(
                        f"{path}:{node.lineno}: R1 numpy.random outside repro/rng.py "
                        "(use repro.rng.default_rng)"
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "time"
                and isinstance(func.value, ast.Name)
                and func.value.id == "time"
            ):
                findings.append(
                    f"{path}:{node.lineno}: R1 time.time() call "
                    "(use time.perf_counter for intervals; wall-clock reads "
                    "belong behind an injectable seam)"
                )


def _check_typed_raises(path: Path, tree: ast.Module, findings: list[str]) -> None:
    try:
        relative = path.relative_to(SRC_ROOT)
    except ValueError:
        return  # out-of-tree file (explicit path argument): R2 does not apply
    if relative.parts[0] not in TYPED_RAISE_PACKAGES:
        return
    owners = _enclosing_functions(tree)
    for node in ast.walk(tree):
        if not isinstance(node, ast.Raise) or node.exc is None:
            continue
        exc = node.exc
        name = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name not in ("ValueError", "KeyError"):
            continue
        if name == "KeyError" and owners.get(node.lineno) in KEYERROR_PROTOCOL_METHODS:
            continue  # the Mapping protocol requires KeyError here
        findings.append(
            f"{path}:{node.lineno}: R2 bare raise {name} on a library path "
            "(raise a repro.exceptions type; ValidationError subclasses ValueError)"
        )


def _check_counter_mutations(path: Path, tree: ast.Module, findings: list[str]) -> None:
    if path in COUNTER_OWNERS:
        return

    def is_shared_counter(target: ast.expr) -> bool:
        if not isinstance(target, ast.Attribute) or target.attr not in SHARED_COUNTERS:
            return False
        base = target.value
        if isinstance(base, ast.Name) and base.id == "JOIN_STATS":
            return True
        # service.stats.hits / self.stats.misses / stats.evictions — only
        # counters that exist on the shared objects (SHARED_COUNTERS) count.
        return (isinstance(base, ast.Attribute) and base.attr == "stats") or (
            isinstance(base, ast.Name) and base.id == "stats"
        )

    for node in ast.walk(tree):
        targets: list[ast.expr] = []
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        for target in targets:
            if is_shared_counter(target):
                findings.append(
                    f"{path}:{node.lineno}: R3 direct mutation of a shared stats "
                    "counter (use the owner's locked bump()/snapshot() methods)"
                )


def _check_swallowed_exceptions(path: Path, tree: ast.Module, findings: list[str]) -> None:
    try:
        relative = path.relative_to(SRC_ROOT)
    except ValueError:
        return
    if relative.parts[0] != "server":
        return

    def names_blanket(handler: ast.ExceptHandler) -> str | None:
        """The blanket exception name this handler catches, if any."""
        if handler.type is None:
            return "bare except"
        node = handler.type
        if isinstance(node, ast.Name) and node.id in ("Exception", "BaseException"):
            return f"except {node.id}"
        return None

    def body_is_empty(handler: ast.ExceptHandler) -> bool:
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
                and stmt.value.value is Ellipsis
            )
            for stmt in handler.body
        )

    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        blanket = names_blanket(node)
        if blanket == "bare except":
            findings.append(
                f"{path}:{node.lineno}: R4 bare except in the server layer "
                "(name the exception types; failures must surface, not vanish)"
            )
        elif blanket is not None and body_is_empty(node):
            findings.append(
                f"{path}:{node.lineno}: R4 {blanket}: pass swallows every failure "
                "(log it, count it, or answer a typed retryable error)"
            )


def lint_file(path: Path) -> list[str]:
    findings: list[str] = []
    tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
    _check_rng(path, tree, findings)
    _check_typed_raises(path, tree, findings)
    _check_counter_mutations(path, tree, findings)
    _check_swallowed_exceptions(path, tree, findings)
    return findings


def main(argv: list[str]) -> int:
    roots = [Path(arg) for arg in argv[1:]] or [SRC_ROOT]
    findings: list[str] = []
    checked = 0
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for path in files:
            findings.extend(lint_file(path.resolve()))
            checked += 1
    for finding in findings:
        print(finding)
    print(
        f"lint_invariants: {checked} file(s) checked, {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
