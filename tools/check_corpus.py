#!/usr/bin/env python3
"""Static-check the whole program corpus against an expected-diagnostics manifest.

Runs :func:`repro.gdatalog.checker.check_source` over

* every ``examples/programs/*.dl`` file (with its sibling ``.facts`` file
  when present), and
* every named workload program in :mod:`repro.workloads` (serialized back
  to source, with its canonical database where the workload defines one),

and enforces two gates:

1. **No error-severity diagnostics anywhere.**  The corpus is the set of
   programs this repository promises to evaluate; an error here means the
   checker and the engine disagree about what is runnable.
2. **Warnings/infos match** ``tools/corpus_manifest.json`` exactly (sorted
   code multiset per corpus item).  Expected findings — e.g. the fair-coin
   program's deliberate negative cycle (GDL010) — are pinned, so a checker
   change that silently adds or drops findings fails CI instead of drifting.

Exit 0 on success; prints one line per mismatch otherwise.  Also exposed as
a tier-1 test via ``tests/checker/test_corpus.py``.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.gdatalog.checker import check_source  # noqa: E402
from repro.logic.atoms import Atom  # noqa: E402

MANIFEST_PATH = REPO_ROOT / "tools" / "corpus_manifest.json"


def _program_source(program) -> str:
    return "\n".join(str(rule) for rule in program.rules)


def _database_source(database) -> str:
    if database is None:
        return ""
    return "\n".join(f"{fact}." for fact in sorted(database.facts, key=Atom.sort_key))


def _workload_cases() -> dict[str, tuple[str, str]]:
    """Named workload programs as (program_source, database_source) pairs.

    Arguments are pinned so the manifest stays stable; add new workloads
    here *and* to the manifest in the same change.
    """
    import repro.workloads as w

    cases = {
        "workload:coin_program": (w.coin_program(), None),
        "workload:dime_quarter_program": (w.dime_quarter_program(), w.dime_quarter_database()),
        "workload:independent_coins_program": (
            w.independent_coins_program(4),
            w.independent_coins_database(4),
        ),
        "workload:biased_die_program": (w.biased_die_program([1 / 6.0] * 6), None),
        "workload:resilience_program": (w.resilience_program(), w.paper_example_database()),
        "workload:monotone_infection_program": (w.monotone_infection_program(), None),
        "workload:wide_program": (w.wide_program(3, 2), w.wide_database(3, 4)),
        "workload:telemetry_program": (w.telemetry_program(2), w.telemetry_database(2, laps=3)),
        "workload:selective_join_program": (
            w.selective_join_program(),
            w.selective_join_database(10, seed=1),
        ),
    }
    return {
        name: (_program_source(program), _database_source(database))
        for name, (program, database) in cases.items()
    }


def _example_cases() -> dict[str, tuple[str, str]]:
    cases = {}
    for program_path in sorted((REPO_ROOT / "examples" / "programs").glob("*.dl")):
        facts_path = program_path.with_suffix(".facts")
        database_source = facts_path.read_text() if facts_path.exists() else ""
        cases[f"examples/{program_path.name}"] = (program_path.read_text(), database_source)
    return cases


def corpus_findings() -> dict[str, list[str]]:
    """``{corpus item: sorted diagnostic codes}`` for the whole corpus."""
    findings: dict[str, list[str]] = {}
    for name, (program_source, database_source) in {
        **_example_cases(),
        **_workload_cases(),
    }.items():
        analysis = check_source(program_source, database_source)
        errors = analysis.errors()
        if errors:
            for diagnostic in errors:
                print(f"{name}: unexpected ERROR {diagnostic.code}: {diagnostic.message}")
        findings[name] = sorted(d.code for d in analysis.diagnostics)
    return findings


def main(argv: list[str]) -> int:
    findings = corpus_findings()
    if "--update" in argv:
        MANIFEST_PATH.write_text(json.dumps(findings, indent=2, sort_keys=True) + "\n")
        print(f"wrote {MANIFEST_PATH.relative_to(REPO_ROOT)}")
        return 0
    expected = json.loads(MANIFEST_PATH.read_text())
    failures = 0
    for name in sorted(set(findings) | set(expected)):
        got = findings.get(name)
        want = expected.get(name)
        if got is None:
            print(f"{name}: in manifest but not in corpus (remove or re-add the program)")
            failures += 1
        elif want is None:
            print(f"{name}: new corpus item not in manifest (run with --update and review)")
            failures += 1
        elif got != want:
            print(f"{name}: diagnostics changed: expected {want}, got {got}")
            failures += 1
    # Errors fail even when the manifest (incorrectly) lists them: the
    # no-errors gate is absolute, the manifest only pins warnings/infos.
    failures += sum(
        1 for codes in findings.values() if any(c in _ERROR_CODES for c in codes)
    )
    print(
        f"check_corpus: {len(findings)} corpus item(s), {failures} failure(s)",
        file=sys.stderr,
    )
    return 1 if failures else 0


from repro.gdatalog.checker import CODES, Severity  # noqa: E402

_ERROR_CODES = {code for code, (severity, _) in CODES.items() if severity is Severity.ERROR}


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
