#!/usr/bin/env python3
"""Run mypy with the repository's two-tier policy (see mypy.ini).

CI installs mypy and runs this; locally it degrades gracefully — when mypy
is not importable the script reports SKIPPED and exits 0, so the tier-1
test suite (which shells out to this script) never depends on a tool the
runtime environment does not ship.

The script also cross-checks ``tools/mypy_ratchet.txt`` against mypy.ini:
every ratcheted module must have a strict section (directly or via a
``package.*`` wildcard), so the ratchet file cannot silently drift from
what is actually enforced.
"""

from __future__ import annotations

import configparser
import importlib.util
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def ratcheted_modules() -> list[str]:
    modules = []
    for line in (REPO_ROOT / "tools" / "mypy_ratchet.txt").read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            modules.append(line)
    return modules


def strict_sections() -> list[str]:
    parser = configparser.ConfigParser()
    parser.read(REPO_ROOT / "mypy.ini")
    sections = []
    for section in parser.sections():
        if not section.startswith("mypy-"):
            continue
        if parser.get(section, "disallow_untyped_defs", fallback="False") == "True":
            sections.append(section[len("mypy-") :])
    return sections


def covered(module: str, sections: list[str]) -> bool:
    for pattern in sections:
        if pattern == module:
            return True
        if pattern.endswith(".*") and (module + ".").startswith(pattern[:-1]):
            return True
    return False


def main() -> int:
    sections = strict_sections()
    missing = [m for m in ratcheted_modules() if not covered(m, sections)]
    if missing:
        for module in missing:
            print(
                f"mypy ratchet violation: {module} is listed in "
                "tools/mypy_ratchet.txt but has no strict section in mypy.ini"
            )
        return 1

    if importlib.util.find_spec("mypy") is None:
        print("check_types: SKIPPED (mypy is not installed; CI runs it)")
        return 0

    # Check exactly the ratcheted (strict-tier) modules; their imports are
    # analyzed silently (follow_imports = silent in mypy.ini), so baseline
    # modules cannot fail the gate before they are promoted.
    module_args: list[str] = []
    for module in ratcheted_modules():
        module_args += ["-m", module]
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "mypy",
            "--config-file",
            str(REPO_ROOT / "mypy.ini"),
            *module_args,
        ],
        cwd=REPO_ROOT,
    )
    return result.returncode


if __name__ == "__main__":
    sys.exit(main())
