"""Package metadata.

NumPy is deliberately an *extra* (``pip install repro[fast]``) rather than a
hard dependency: it powers the columnar ground core
(:mod:`repro.logic.columnar`) and the ``numpy.random`` sampler streams, but
every code path degrades to a pure-Python implementation when it is absent
— the PR 5 indexed join engine and the :mod:`repro.rng` fallback generators.
CI runs the full tier-1 suite in both configurations.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    description=(
        "Generative Datalog with stable negation: chase-based exact and "
        "Monte-Carlo inference for probabilistic logic programs"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages("src"),
    install_requires=[
        "networkx",
    ],
    extras_require={
        # Vectorized columnar join core + numpy.random sampler streams.
        "fast": ["numpy"],
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro=repro.cli:main",
        ],
    },
)
