"""A minimal asyncio HTTP/1.1 + WebSocket client for the inference server.

Deliberately tiny and dependency-free — this is the client half of the
bundled load driver (``benchmarks/bench_e15_server.py``), the concurrency
test suite, and the CI smoke round-trip, all of which must run on the
pure-Python no-NumPy image.  It speaks exactly what the server speaks:
keep-alive HTTP with ``Content-Length`` bodies, and masked RFC 6455 text
frames.
"""

from __future__ import annotations

import asyncio
import base64
import json
import os
import time
from dataclasses import dataclass
from typing import Any, Mapping

from repro.rng import seeded_random

__all__ = [
    "HttpResponse",
    "HttpConnection",
    "WebSocketConnection",
    "RetryPolicy",
    "RetryExhausted",
    "RETRYABLE_STATUSES",
    "http_json",
    "http_json_retry",
    "wait_until_healthy",
]

#: Statuses the server marks safe to retry: admission backpressure (429),
#: transient infrastructure failure (503: worker crash, journal error,
#: draining), and a missed per-request deadline (504).
RETRYABLE_STATUSES: tuple[int, ...] = (429, 503, 504)


@dataclass
class HttpResponse:
    status: int
    headers: dict[str, str]
    body: bytes

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


class HttpConnection:
    """One keep-alive connection; requests are serial (HTTP/1.1 semantics)."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(cls, host: str, port: int) -> "HttpConnection":
        reader, writer = await asyncio.open_connection(host, port, limit=8 * 1024 * 1024)
        return cls(reader, writer)

    async def request(
        self,
        method: str,
        path: str,
        body: bytes | None = None,
        headers: Mapping[str, str] | None = None,
    ) -> HttpResponse:
        head = [f"{method} {path} HTTP/1.1", "Host: localhost"]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        payload = body or b""
        if method in ("POST", "PUT") or payload:
            head.append("Content-Length: " + str(len(payload)))
        self._writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + payload)
        await self._writer.drain()
        status_line = await self._reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        parts = status_line.decode("latin-1").split(None, 2)
        status = int(parts[1])
        response_headers: dict[str, str] = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            response_headers[name.strip().lower()] = value.strip()
        length = int(response_headers.get("content-length", "0"))
        response_body = await self._reader.readexactly(length) if length else b""
        return HttpResponse(status, response_headers, response_body)

    async def post_json(
        self, path: str, payload: Any, headers: Mapping[str, str] | None = None
    ) -> tuple[int, Any]:
        response = await self.request(
            "POST",
            path,
            json.dumps(payload).encode("utf-8"),
            {"Content-Type": "application/json", **(headers or {})},
        )
        return response.status, response.json()

    async def close(self) -> None:
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def http_json(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    headers: Mapping[str, str] | None = None,
) -> tuple[int, Any]:
    """One-shot request on a fresh connection (JSON in, JSON out)."""
    connection = await HttpConnection.open(host, port)
    try:
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        response = await connection.request(method, path, body, headers)
        try:
            decoded = response.json()
        except (ValueError, UnicodeDecodeError):
            decoded = response.body
        return response.status, decoded
    finally:
        await connection.close()


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with seeded jitter for retryable failures.

    The delay before attempt *n* (0-based) is
    ``min(max_delay, base_delay * 2**n) * (1 + jitter * rng())``, except
    that a server-supplied ``retry_after`` takes precedence as the floor —
    the server knows its refill schedule better than the client does.
    """

    attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    seed: int | None = None

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be at least 1, got {self.attempts}")

    def delay(self, attempt: int, rng: Any, retry_after: float | None = None) -> float:
        backoff = min(self.max_delay, self.base_delay * (2.0 ** attempt))
        if retry_after is not None and retry_after > 0:
            backoff = max(backoff, min(self.max_delay, float(retry_after)))
        return backoff * (1.0 + self.jitter * rng.random())


class RetryExhausted(ConnectionError):
    """Every attempt failed retryably; carries the last status and payload."""

    def __init__(self, message: str, status: int | None = None, payload: Any = None):
        super().__init__(message)
        self.status = status
        self.payload = payload


async def http_json_retry(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Any = None,
    headers: Mapping[str, str] | None = None,
    policy: RetryPolicy | None = None,
    idempotency_key: str | None = None,
) -> tuple[int, Any]:
    """Like :func:`http_json`, but retries retryable failures with backoff.

    Retries connection-level failures (refused, reset, truncated) and the
    retryable statuses (429/503/504) — never 4xx client errors or 200s.
    Each attempt opens a fresh connection, so a half-dead keep-alive socket
    cannot poison the retry.  When *idempotency_key* is set it rides along
    as the ``Idempotency-Key`` header and in update payloads, making the
    retry exactly-once in effect even if the first attempt was applied but
    its acknowledgement was lost.
    """
    policy = policy or RetryPolicy()
    rng = seeded_random(policy.seed)
    request_headers = dict(headers or {})
    request_payload = payload
    if idempotency_key:
        request_headers.setdefault("Idempotency-Key", idempotency_key)
        if isinstance(payload, dict):
            request_payload = dict(payload)
            request_payload.setdefault("idempotency_key", idempotency_key)
    last_status: int | None = None
    last_payload: Any = None
    last_error: Exception | None = None
    for attempt in range(policy.attempts):
        try:
            status, decoded = await http_json(
                host, port, method, path, request_payload, request_headers
            )
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
            last_error, last_status, last_payload = error, None, None
        else:
            if status not in RETRYABLE_STATUSES:
                return status, decoded
            last_error, last_status, last_payload = None, status, decoded
        if attempt + 1 >= policy.attempts:
            break
        retry_after = None
        if isinstance(last_payload, dict):
            hint = last_payload.get("retry_after")
            if isinstance(hint, (int, float)):
                retry_after = float(hint)
        await asyncio.sleep(policy.delay(attempt, rng, retry_after))
    if last_status is not None:
        raise RetryExhausted(
            f"{method} {path} still failing with status {last_status} "
            f"after {policy.attempts} attempts",
            status=last_status,
            payload=last_payload,
        )
    raise RetryExhausted(
        f"{method} {path} unreachable after {policy.attempts} attempts "
        f"(last error: {last_error})"
    )


class WebSocketConnection:
    """A masked-frame RFC 6455 client for the ``/v1/ws`` endpoint."""

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self._reader = reader
        self._writer = writer

    @classmethod
    async def open(
        cls,
        host: str,
        port: int,
        path: str = "/v1/ws",
        headers: Mapping[str, str] | None = None,
    ) -> "WebSocketConnection":
        reader, writer = await asyncio.open_connection(host, port, limit=8 * 1024 * 1024)
        key = base64.b64encode(os.urandom(16)).decode("latin-1")
        head = [
            f"GET {path} HTTP/1.1",
            "Host: localhost",
            "Upgrade: websocket",
            "Connection: Upgrade",
            f"Sec-WebSocket-Key: {key}",
            "Sec-WebSocket-Version: 13",
        ]
        for name, value in (headers or {}).items():
            head.append(f"{name}: {value}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1"))
        await writer.drain()
        status_line = await reader.readline()
        if b"101" not in status_line:
            raise ConnectionError(f"WebSocket handshake rejected: {status_line!r}")
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
        return cls(reader, writer)

    async def send_text(self, text: str) -> None:
        payload = text.encode("utf-8")
        mask = os.urandom(4)
        masked = bytes(byte ^ mask[index % 4] for index, byte in enumerate(payload))
        header = bytearray([0x81])
        length = len(payload)
        if length < 126:
            header.append(0x80 | length)
        elif length < 1 << 16:
            header.append(0x80 | 126)
            header += length.to_bytes(2, "big")
        else:
            header.append(0x80 | 127)
            header += length.to_bytes(8, "big")
        self._writer.write(bytes(header) + mask + masked)
        await self._writer.drain()

    async def recv_text(self) -> str | None:
        """The next text message (transparently answering pings); ``None`` on close."""
        while True:
            first = await self._reader.readexactly(2)
            opcode = first[0] & 0x0F
            length = first[1] & 0x7F
            if length == 126:
                length = int.from_bytes(await self._reader.readexactly(2), "big")
            elif length == 127:
                length = int.from_bytes(await self._reader.readexactly(8), "big")
            payload = await self._reader.readexactly(length) if length else b""
            if opcode == 0x8:
                return None
            if opcode == 0x9:
                continue  # server pings are not expected; ignore
            if opcode in (0x1, 0x0):
                return payload.decode("utf-8")

    async def send_json(self, payload: Any) -> None:
        await self.send_text(json.dumps(payload))

    async def recv_json(self) -> Any:
        text = await self.recv_text()
        return None if text is None else json.loads(text)

    async def close(self) -> None:
        try:
            mask = os.urandom(4)
            self._writer.write(bytes([0x88, 0x80]) + mask)
            await self._writer.drain()
        except (ConnectionError, OSError):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionError, OSError):
            pass


async def wait_until_healthy(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> dict:
    """Poll ``/healthz`` until it answers 200, or raise ``TimeoutError``.

    The startup-time guard every harness (tests, load driver, CI smoke)
    uses: a server that hangs on boot fails within *timeout* seconds
    instead of stalling its caller.
    """
    deadline = time.monotonic() + timeout
    last_error: Exception | None = None
    while time.monotonic() < deadline:
        try:
            status, payload = await http_json(host, port, "GET", "/healthz")
            if status == 200 and isinstance(payload, dict) and payload.get("ok"):
                return payload
        except (ConnectionError, OSError, asyncio.IncompleteReadError) as error:
            last_error = error
        await asyncio.sleep(interval)
    raise TimeoutError(
        f"server at {host}:{port} not healthy within {timeout:.1f}s "
        f"(last error: {last_error})"
    )
