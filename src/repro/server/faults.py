"""Deterministic, seeded fault injection for the serving stack.

Chaos testing needs faults that are *reproducible*: "the worker died on
the third update" must mean the same third update on every run, on every
machine, or a failing chaos test cannot be debugged.  This module is the
single switchboard every injected failure goes through:

* A :class:`FaultSpec` names an **injection point** (a dotted string like
  ``"worker.update"``) and when it fires: on exactly the Nth hit (``at``),
  on every Nth hit (``every``), or with a seeded per-hit probability
  (``probability``), optionally capped to a total number of firings
  (``times``) and carrying a ``delay`` for slow-path faults.
* The process-wide :data:`FAULTS` injector holds the active specs.  Shard
  workers are **forked**, so configuring the parent before
  ``ShardRouter.start()`` arms the workers too; for subprocess tests the
  same specs travel via the ``GDATALOG_FAULTS`` / ``GDATALOG_FAULTS_SEED``
  environment variables (JSON list of spec objects), re-read by
  :func:`install_from_env` at worker startup.
* Production code never checks "is chaos on" — the helpers below are
  no-ops when no spec matches, so the injection points cost one dict
  lookup on the hot path.

Injection points wired through the server (see the failure matrix in the
README):

========================  =====================================================
``worker.request``        kill the shard worker before answering any request
``worker.update``         kill the shard worker before answering an update
``worker.slow``           sleep ``delay`` seconds before answering a request
``pipe.send``             parent→worker pipe write fails (worker marked dead)
``pipe.frame``            worker→parent frame is treated as corrupt (dead)
``journal.fsync``         ``os.fsync`` on the journal raises ``OSError``
``journal.torn``          a journal append stops mid-record (simulated crash)
``journal.corrupt``       a journal record's payload is silently bit-flipped
========================  =====================================================

All randomness funnels through :func:`repro.rng.seeded_random` (the R1
lint invariant), so a seeded injector fires identically across runs.
"""

from __future__ import annotations

import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, NoReturn

from repro.exceptions import ReproError
from repro.rng import seeded_random

__all__ = [
    "FaultSpec",
    "FaultInjector",
    "FAULTS",
    "install_from_env",
    "should_fire",
    "maybe_fail",
    "maybe_kill",
    "maybe_sleep",
    "ENV_SPECS",
    "ENV_SEED",
    "KILL_EXIT_CODE",
]

#: Environment variables carrying fault specs across process boundaries
#: (CLI subprocess tests, spawn-context platforms where fork inheritance
#: does not apply).
ENV_SPECS = "GDATALOG_FAULTS"
ENV_SEED = "GDATALOG_FAULTS_SEED"

#: Exit code of a worker killed by an injected ``worker.*`` fault — distinct
#: from real crash codes so post-mortems can tell chaos from genuine bugs.
KILL_EXIT_CODE = 70


class FaultConfigError(ReproError):
    """A malformed fault spec (bad JSON, unknown field, bad trigger)."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: where it fires, when, and how often.

    Exactly one trigger among ``at`` (the Nth hit, 1-based), ``every``
    (every Nth hit) and ``probability`` (seeded coin per hit) must be set;
    ``times`` bounds total firings (``None`` = unlimited) and ``delay`` is
    the sleep for ``maybe_sleep`` points.
    """

    point: str
    at: int | None = None
    every: int | None = None
    probability: float | None = None
    times: int | None = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if not self.point or not isinstance(self.point, str):
            raise FaultConfigError(f"fault spec needs a non-empty 'point', got {self.point!r}")
        triggers = sum(value is not None for value in (self.at, self.every, self.probability))
        if triggers != 1:
            raise FaultConfigError(
                f"fault spec for {self.point!r} must set exactly one of "
                f"at/every/probability, got {triggers}"
            )
        if self.at is not None and self.at < 1:
            raise FaultConfigError(f"fault 'at' must be >= 1, got {self.at}")
        if self.every is not None and self.every < 1:
            raise FaultConfigError(f"fault 'every' must be >= 1, got {self.every}")
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise FaultConfigError(f"fault 'probability' must be in [0, 1], got {self.probability}")
        if self.times is not None and self.times < 1:
            raise FaultConfigError(f"fault 'times' must be >= 1, got {self.times}")
        if self.delay < 0.0:
            raise FaultConfigError(f"fault 'delay' must be >= 0, got {self.delay}")

    @classmethod
    def from_dict(cls, spec: Mapping[str, object]) -> "FaultSpec":
        """Build a spec from a JSON object, rejecting unknown keys loudly."""
        if not isinstance(spec, Mapping):
            raise FaultConfigError(f"fault spec must be an object, got {type(spec).__name__}")
        known = {"point", "at", "every", "probability", "times", "delay"}
        unknown = set(spec) - known
        if unknown:
            raise FaultConfigError(f"unknown fault spec keys: {sorted(unknown)}")
        point = spec.get("point")
        if not isinstance(point, str):
            raise FaultConfigError(f"fault spec 'point' must be a string, got {point!r}")

        def _int(name: str) -> int | None:
            value = spec.get(name)
            if value is None:
                return None
            if isinstance(value, bool) or not isinstance(value, int):
                raise FaultConfigError(f"fault spec {name!r} must be an integer, got {value!r}")
            return value

        probability = spec.get("probability")
        if probability is not None and not isinstance(probability, (int, float)):
            raise FaultConfigError(f"fault spec 'probability' must be a number, got {probability!r}")
        delay = spec.get("delay", 0.0)
        if not isinstance(delay, (int, float)):
            raise FaultConfigError(f"fault spec 'delay' must be a number, got {delay!r}")
        return cls(
            point=point,
            at=_int("at"),
            every=_int("every"),
            probability=None if probability is None else float(probability),
            times=_int("times"),
            delay=float(delay),
        )


class FaultInjector:
    """The per-process fault switchboard: specs, hit counters, seeded RNG.

    Hit counts are **per process**: a forked shard worker inherits the
    parent's specs but advances its own counters, so "kill on the 2nd
    update" means the 2nd update *that worker* sees — which is what a
    respawn race needs (the respawned worker starts counting from zero).
    """

    def __init__(self, specs: Iterable[FaultSpec] = (), seed: int | None = None):
        self._lock = threading.Lock()
        self._specs: dict[str, FaultSpec] = {}
        self._hits: dict[str, int] = {}
        self._fired: dict[str, int] = {}
        self._rng = seeded_random(seed)
        self._seed = seed
        for spec in specs:
            self._specs[spec.point] = spec

    def configure(self, specs: Iterable[FaultSpec], seed: int | None = None) -> None:
        """Replace the active specs (and reseed); counters reset."""
        with self._lock:
            self._specs = {spec.point: spec for spec in specs}
            self._hits = {}
            self._fired = {}
            self._seed = seed
            self._rng = seeded_random(seed)

    def clear(self) -> None:
        """Disarm every injection point (production state)."""
        self.configure(())

    @property
    def active(self) -> bool:
        with self._lock:
            return bool(self._specs)

    @property
    def injected_total(self) -> int:
        """Total faults fired by this process (the metrics counter's source)."""
        with self._lock:
            return sum(self._fired.values())

    def counters(self) -> dict[str, int]:
        """Per-point fired counts (for worker stats payloads and tests)."""
        with self._lock:
            return dict(self._fired)

    def should_fire(self, point: str) -> FaultSpec | None:
        """Count one hit at *point*; the spec when the fault fires, else ``None``."""
        with self._lock:
            spec = self._specs.get(point)
            if spec is None:
                return None
            hits = self._hits.get(point, 0) + 1
            self._hits[point] = hits
            fired = self._fired.get(point, 0)
            if spec.times is not None and fired >= spec.times:
                return None
            fire = False
            if spec.at is not None:
                fire = hits == spec.at
            elif spec.every is not None:
                fire = hits % spec.every == 0
            elif spec.probability is not None:
                fire = self._rng.random() < spec.probability
            if not fire:
                return None
            self._fired[point] = fired + 1
            return spec

    def env(self) -> dict[str, str]:
        """The environment variables reproducing this configuration."""
        with self._lock:
            specs = list(self._specs.values())
            seed = self._seed
        payload: list[dict[str, object]] = []
        for spec in specs:
            entry: dict[str, object] = {"point": spec.point}
            for name in ("at", "every", "probability", "times"):
                value = getattr(spec, name)
                if value is not None:
                    entry[name] = value
            if spec.delay:
                entry["delay"] = spec.delay
            payload.append(entry)
        env = {ENV_SPECS: json.dumps(payload)}
        if seed is not None:
            env[ENV_SEED] = str(seed)
        return env


#: The process-wide injector.  Forked workers inherit its state; cleared
#: (the default) it makes every injection point a cheap no-op.
FAULTS = FaultInjector()


def install_from_env(injector: FaultInjector | None = None) -> bool:
    """Arm the injector from ``GDATALOG_FAULTS`` (JSON spec list), if set.

    A no-op when the variable is absent — programmatic configuration (the
    in-process chaos tests, which rely on fork inheritance) is never
    clobbered.  Returns whether anything was installed.
    """
    raw = os.environ.get(ENV_SPECS)
    if not raw:
        return False
    target = FAULTS if injector is None else injector
    try:
        entries = json.loads(raw)
    except json.JSONDecodeError as error:
        raise FaultConfigError(f"invalid {ENV_SPECS} JSON: {error}") from None
    if not isinstance(entries, list):
        raise FaultConfigError(f"{ENV_SPECS} must be a JSON list of spec objects")
    seed_text = os.environ.get(ENV_SEED)
    seed = int(seed_text) if seed_text else None
    target.configure([FaultSpec.from_dict(entry) for entry in entries], seed=seed)
    return True


def should_fire(point: str) -> FaultSpec | None:
    """Module-level shorthand over :data:`FAULTS`."""
    return FAULTS.should_fire(point)


def maybe_fail(point: str, make_error: Callable[[], BaseException]) -> None:
    """Raise ``make_error()`` when *point* fires (e.g. a simulated fsync error)."""
    if FAULTS.should_fire(point) is not None:
        raise make_error()


def maybe_kill(point: str) -> None:
    """Hard-kill this process when *point* fires (simulates ``kill -9``).

    ``os._exit`` skips every atexit/finally handler — exactly what a real
    SIGKILL does, which is the failure the respawn + journal recovery
    paths must survive.
    """
    if FAULTS.should_fire(point) is not None:
        _die()


def _die() -> NoReturn:  # pragma: no cover - exercised in forked workers
    os._exit(KILL_EXIT_CODE)


def maybe_sleep(point: str) -> None:
    """Sleep the spec's ``delay`` when *point* fires (slow-shard simulation)."""
    spec = FAULTS.should_fire(point)
    if spec is not None and spec.delay > 0.0:
        time.sleep(spec.delay)
