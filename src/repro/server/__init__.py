"""The network serving layer: asyncio HTTP/WebSocket front end over shards.

``gdatalog serve`` has two transports sharing one wire protocol
(:mod:`repro.server.protocol`):

* the stdin JSON-lines loop (the default; pipeline-friendly), and
* ``--http HOST:PORT`` — this package: an asyncio HTTP/1.1 + WebSocket
  server (:mod:`repro.server.http`) that routes each request by canonical
  program key to one of N persistent worker processes
  (:mod:`repro.server.shards`, each with an isolated
  :class:`~repro.runtime.service.InferenceService` cache and automatic
  crash respawn), coalesces concurrent exact queries into shared
  :class:`~repro.runtime.batch.QueryBatch` passes
  (:mod:`repro.server.batching`), sheds overload with per-client token
  buckets and bounded shard queues (:mod:`repro.server.admission`), and
  exposes Prometheus metrics (:mod:`repro.server.metrics`).

:mod:`repro.server.client` is the matching minimal asyncio client, used by
the test suite, the bundled load driver, and the CI smoke round-trip.
"""

from repro.server.admission import AdmissionController, Rejection, Ticket, TokenBucket
from repro.server.batching import MicroBatcher
from repro.server.http import InferenceServer, ServerConfig, serve_http
from repro.server.metrics import Histogram, MetricsRegistry
from repro.server.shards import ShardConfig, ShardRouter, WorkerCrashed, canonical_program_key

__all__ = [
    "AdmissionController",
    "Rejection",
    "Ticket",
    "TokenBucket",
    "MicroBatcher",
    "InferenceServer",
    "ServerConfig",
    "serve_http",
    "Histogram",
    "MetricsRegistry",
    "ShardConfig",
    "ShardRouter",
    "WorkerCrashed",
    "canonical_program_key",
]
