"""Sharded worker processes: canonical-program routing, crash respawn.

One :class:`ShardRouter` owns ``N`` persistent worker processes.  Each
worker runs its **own** :class:`~repro.runtime.service.InferenceService`
— its own engine LRU, component cache and slice cache — and requests are
routed by a hash of the *canonical program key* (the same parse-and-sort
canonicalization :meth:`InferenceService.cache_key` uses, so two textual
variants of one program land on the same shard).  The payoff over one
shared cache: a hot program hammering shard 0 can never evict another
program's engines on shard 1, and shards evaluate truly in parallel
(separate processes, no GIL sharing).

Transport is a duplex pipe per worker.  The parent side never blocks the
event loop: a **sender thread** drains an outbound queue and a **reader
thread** resolves :class:`asyncio.Future` completions via
``call_soon_threadsafe``.  A worker crash (EOF/``OSError`` on the pipe, or
a dead PID) fails that worker's in-flight futures with
:class:`WorkerCrashed` — surfaced to clients as a retryable ``503`` — and
the next request to the shard transparently **respawns** a fresh worker
(with a cold cache; correctness is unaffected, only latency).
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import os
import queue
import signal
import threading
from dataclasses import dataclass
from typing import Any

from repro.logic.join import JOIN_STATS
from repro.logic.parser import parse_gdatalog_program
from repro.server import faults

__all__ = ["ShardConfig", "ShardRouter", "WorkerCrashed", "canonical_program_key"]

#: Parent→worker message kinds.
_REQUEST, _STATS, _SHUTDOWN = "request", "stats", "shutdown"


class WorkerCrashed(RuntimeError):
    """A shard worker died with requests in flight (clients should retry)."""


@dataclass(frozen=True)
class ShardConfig:
    """Per-worker :class:`InferenceService` configuration (picklable)."""

    grounder: str = "simple"
    cache_size: int = 32
    factorize: bool = False
    slice: bool = False
    #: Run the static checker on first sighting of each program; error
    #: diagnostics become structured ``ok: false`` responses (HTTP 400).
    validate: bool = True


def canonical_program_key(program_source: str) -> str:
    """SHA-256 of the parsed program's sorted rules (cache-key canonical form).

    Unparseable programs hash their raw text instead: routing must stay
    deterministic so the shard that answers (with a parse error) is stable.
    """
    try:
        program = parse_gdatalog_program(program_source)
        payload = "\n".join(sorted(str(rule) for rule in program))
    except Exception:  # noqa: BLE001 - the worker will report the parse error
        payload = program_source
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _join_stats_snapshot() -> dict[str, int]:
    """The worker process's process-wide join counters as a plain dict."""
    return {
        "index_probes": JOIN_STATS.index_probes,
        "full_scans": JOIN_STATS.full_scans,
        "indexes_built": JOIN_STATS.indexes_built,
        "plans_compiled": JOIN_STATS.plans_compiled,
        "plans_reused": JOIN_STATS.plans_reused,
        "batches_executed": JOIN_STATS.batches_executed,
        "rows_selected": JOIN_STATS.rows_selected,
        "rows_joined": JOIN_STATS.rows_joined,
        "snapshot_copies": JOIN_STATS.snapshot_copies,
    }


def _shard_worker_main(conn, config: ShardConfig) -> None:
    """Worker process entry point: serve pipe messages until shutdown/EOF.

    Lifecycle is controlled entirely by the pipe (shutdown message or EOF
    when the parent dies); stray terminal signals are ignored so a SIGINT
    or SIGTERM aimed at the parent's graceful drain cannot kill a worker
    mid-request.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, signal.SIG_IGN)
    from repro.runtime.service import InferenceService
    from repro.server import faults
    from repro.server.protocol import answer, is_update_request

    # Fork-started workers inherit the parent's armed injector; env specs
    # cover subprocess harnesses and spawn-context platforms.
    faults.install_from_env()
    service = InferenceService(
        cache_size=config.cache_size,
        grounder=config.grounder,
        factorize=config.factorize,
        slice=config.slice,
        validate=config.validate,
    )
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        kind = message[0]
        if kind == _SHUTDOWN:
            break
        seq = message[1]
        if kind == _STATS:
            payload: Any = {
                "pid": os.getpid(),
                "cache_entries": len(service),
                "service": service.stats.snapshot(),
                "join": _join_stats_snapshot(),
                "faults": faults.FAULTS.counters(),
            }
        else:
            # Chaos injection points: a request-scoped hard kill (the crash
            # the respawn + retry-once + journal recovery paths must absorb)
            # and a slow-shard sleep (what the deadline budget must bound).
            # Stats probes skip them so health checks stay truthful.
            faults.maybe_kill("worker.request")
            if isinstance(message[2], dict) and is_update_request(message[2]):
                faults.maybe_kill("worker.update")
            faults.maybe_sleep("worker.slow")
            payload = answer(service, message[2])
        try:
            conn.send((seq, payload))
        except (BrokenPipeError, OSError):
            break
    conn.close()


class _WorkerHandle:
    """Parent-side handle of one worker process (pipe + sender/reader threads)."""

    def __init__(self, index: int, config: ShardConfig, ctx):
        self.index = index
        self._seq = itertools.count()
        self._pending: dict[int, tuple[asyncio.AbstractEventLoop, asyncio.Future]] = {}
        self._pending_lock = threading.Lock()
        self._outbound: queue.Queue = queue.Queue()
        self._dead = False
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self._conn = parent_conn
        self.process = ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, config),
            name=f"gdatalog-shard-{index}",
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._sender = threading.Thread(
            target=self._send_loop, name=f"shard-{index}-sender", daemon=True
        )
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shard-{index}-reader", daemon=True
        )
        self._sender.start()
        self._reader.start()

    @property
    def alive(self) -> bool:
        return not self._dead and self.process.is_alive()

    # -- parent-side threads -------------------------------------------------------

    def _send_loop(self) -> None:
        while True:
            message = self._outbound.get()
            if message is None:
                return
            if faults.should_fire("pipe.send") is not None:
                # Injected parent→worker write failure: same observable
                # outcome as a broken pipe (worker dead, futures failed).
                self._mark_dead()
                return
            try:
                self._conn.send(message)
            except (BrokenPipeError, OSError):
                self._mark_dead()
                return

    def _read_loop(self) -> None:
        while True:
            try:
                seq, payload = self._conn.recv()
            except (EOFError, OSError):
                self._mark_dead()
                return
            if faults.should_fire("pipe.frame") is not None:
                # Injected corrupt/malformed frame from the worker: the only
                # safe reaction is to distrust the pipe entirely.
                self._mark_dead()
                return
            with self._pending_lock:
                slot = self._pending.pop(seq, None)
            if slot is None:
                continue
            loop, future = slot
            loop.call_soon_threadsafe(self._resolve, future, payload)

    @staticmethod
    def _resolve(future: asyncio.Future, payload: Any) -> None:
        if not future.done():
            future.set_result(payload)

    def _mark_dead(self) -> None:
        self._dead = True
        with self._pending_lock:
            pending, self._pending = self._pending, {}
        for loop, future in pending.values():
            loop.call_soon_threadsafe(self._fail, future)

    @staticmethod
    def _fail(future: asyncio.Future) -> None:
        if not future.done():
            future.set_exception(WorkerCrashed("shard worker died with the request in flight"))

    # -- API -----------------------------------------------------------------------

    def submit(self, kind: str, payload: Any, loop: asyncio.AbstractEventLoop) -> asyncio.Future:
        """Queue one message; the returned future resolves with the response."""
        future: asyncio.Future = loop.create_future()
        if self._dead:
            future.set_exception(WorkerCrashed("shard worker is down"))
            return future
        seq = next(self._seq)
        with self._pending_lock:
            self._pending[seq] = (loop, future)
        if kind == _STATS:
            self._outbound.put((_STATS, seq))
        else:
            self._outbound.put((_REQUEST, seq, payload))
        return future

    def stop(self, timeout: float = 5.0) -> None:
        """Graceful shutdown: drain queued sends, then stop the process."""
        self._outbound.put((_SHUTDOWN,))
        self._outbound.put(None)
        self.process.join(timeout=timeout)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=1.0)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(timeout=1.0)
        self._mark_dead()
        try:
            self._conn.close()
        except OSError:
            pass


class ShardRouter:
    """Deterministic program→shard routing over respawning worker processes."""

    def __init__(self, shards: int = 2, config: ShardConfig | None = None):
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        self.num_shards = int(shards)
        self.config = config or ShardConfig()
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context("spawn")
        self._workers: list[_WorkerHandle | None] = [None] * self.num_shards
        #: Times each shard's worker was restarted after a crash.
        self.respawns = [0] * self.num_shards
        # Raw program text → shard index memo (bounded, cleared wholesale):
        # routing must not re-parse the hot program on every request.
        self._route_memo: dict[str, int] = {}
        self._route_memo_limit = 1024
        self._started = False

    # -- lifecycle -----------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker up front (before traffic, so forks are clean)."""
        for index in range(self.num_shards):
            if self._workers[index] is None:
                self._workers[index] = _WorkerHandle(index, self.config, self._ctx)
        self._started = True

    def stop(self, timeout: float = 5.0) -> None:
        for worker in self._workers:
            if worker is not None:
                worker.stop(timeout=timeout)
        self._workers = [None] * self.num_shards
        self._started = False

    def worker_pids(self) -> list[int | None]:
        return [w.process.pid if w is not None else None for w in self._workers]

    def worker_alive(self, shard: int) -> bool:
        worker = self._workers[shard]
        return worker is not None and worker.alive

    def _worker(self, shard: int) -> _WorkerHandle:
        """The shard's live worker, respawning a crashed one on demand."""
        if not self._started:
            raise RuntimeError("ShardRouter.start() must run before submit()")
        worker = self._workers[shard]
        if worker is None or not worker.alive:
            if worker is not None:
                worker.stop(timeout=0.1)
                self.respawns[shard] += 1
            worker = _WorkerHandle(shard, self.config, self._ctx)
            self._workers[shard] = worker
        return worker

    # -- routing -------------------------------------------------------------------

    def shard_for(self, program_source: str) -> int:
        """The deterministic shard index of a program (canonical-key hash)."""
        shard = self._route_memo.get(program_source)
        if shard is None:
            key = canonical_program_key(program_source)
            shard = int(key[:16], 16) % self.num_shards
            if len(self._route_memo) >= self._route_memo_limit:
                self._route_memo.clear()
            self._route_memo[program_source] = shard
        return shard

    # -- submission ----------------------------------------------------------------

    def submit(
        self, shard: int, request: dict, loop: asyncio.AbstractEventLoop | None = None
    ) -> asyncio.Future:
        """Send one protocol request dict to a shard; future → response dict."""
        loop = loop or asyncio.get_running_loop()
        return self._worker(shard).submit(_REQUEST, request, loop)

    async def shard_stats(self, timeout: float = 2.0) -> list[dict | None]:
        """Live per-shard stats snapshots (``None`` for an unresponsive shard)."""
        loop = asyncio.get_running_loop()
        futures = []
        for shard in range(self.num_shards):
            try:
                futures.append(self._worker(shard).submit(_STATS, None, loop))
            except RuntimeError:
                futures.append(None)
        results: list[dict | None] = []
        for future in futures:
            if future is None:
                results.append(None)
                continue
            try:
                results.append(await asyncio.wait_for(future, timeout=timeout))
            except (asyncio.TimeoutError, WorkerCrashed):
                results.append(None)
        return results
