"""The serve wire protocol, shared by the stdin loop and the HTTP server.

One request is one JSON object; one response is one JSON object.  The
request names a program (``program`` inline text or ``program_path``), an
optional database (``database`` / ``database_path``), a ``queries`` list of
atom strings or ``{"type": ...}`` specs (see
:func:`repro.ppdl.queries.query_from_spec`), and optionally ``adaptive``
sampling parameters or a per-request ``slice`` override.  The response is
``{"ok": true, "results": [...]}`` with results aligned to the queries, or
``{"ok": false, "error": "..."}`` — and **always** echoes the client's
``id`` field (or ``null`` when the request was too broken to carry one), so
clients that pipeline requests never lose correlation.

Both transports — the ``gdatalog serve`` stdin JSON-lines loop and the
:mod:`repro.server.http` front end — funnel through :func:`answer`, which
is guaranteed not to raise: a malformed request produces an error response,
never a dead serving loop.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.gdatalog.checker import DiagnosticsError
from repro.ppdl.queries import query_from_spec

__all__ = [
    "RequestError",
    "StreamRegistry",
    "read_request_file",
    "resolve_sources",
    "resolve_stream",
    "validate_queries",
    "is_update_request",
    "is_check_request",
    "handle_check",
    "handle_update",
    "handle_request",
    "answer",
    "answer_line",
    "error_response",
]

#: Queries assumed when a request omits the ``queries`` field.
DEFAULT_QUERIES: tuple[Any, ...] = ({"type": "has_stable_model"},)


class RequestError(ReproError):
    """A malformed serve request: answered with ``ok: false``, never fatal."""


@dataclass
class _StreamState:
    """One named evidence stream: its program and current database text."""

    program: str
    database: str
    updates: int = 0


class StreamRegistry:
    """Named evidence streams for the streaming-update protocol.

    A client opens a stream implicitly by sending an ``update`` (or query)
    request carrying both a ``stream`` name and inline sources; follow-up
    requests may send only the ``stream`` name and their deltas, and the
    registry supplies the program and the *current* (post-all-deltas)
    database.  State lives **in the front end** (HTTP loop / stdin loop),
    never in shard workers: every forwarded request is fully specified, so
    a respawned worker rebuilds correct answers from the request alone.

    LRU-bounded; thread-safe (the HTTP front end touches it from the event
    loop, tests from anywhere).
    """

    def __init__(self, limit: int = 256):
        self._lock = threading.Lock()
        self._streams: OrderedDict[str, _StreamState] = OrderedDict()
        self._limit = max(1, int(limit))

    def get(self, stream: str) -> _StreamState | None:
        with self._lock:
            state = self._streams.get(stream)
            if state is not None:
                self._streams.move_to_end(stream)
            return state

    def record(self, stream: str, program: str, database: str) -> None:
        """Remember the stream's program and post-delta database text."""
        with self._lock:
            state = self._streams.get(stream)
            if state is None:
                self._streams[stream] = _StreamState(program, database, updates=1)
                if len(self._streams) > self._limit:
                    self._streams.popitem(last=False)
            else:
                state.program = program
                state.database = database
                state.updates += 1
                self._streams.move_to_end(stream)

    def __len__(self) -> int:
        with self._lock:
            return len(self._streams)


def read_request_file(path: Any, role: str = "input") -> str:
    """Read a ``program_path`` / ``database_path`` file with readable errors."""
    if not isinstance(path, str) or not path:
        raise RequestError(f"{role} path must be a non-empty string, got {path!r}")
    try:
        return Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        raise RequestError(f"{role} file not found: {path}") from None
    except IsADirectoryError:
        raise RequestError(f"{role} path is a directory, not a file: {path}") from None
    except OSError as error:
        raise RequestError(f"cannot read {role} file {path}: {error.strerror or error}") from None


def resolve_sources(request: Mapping[str, Any]) -> tuple[str, str]:
    """``(program_source, database_source)`` of a request, reading path fields.

    The HTTP front end calls this once per request *before* routing, so a
    request forwarded to a shard worker always carries inline text and is
    routed by the same program the worker will evaluate.
    """
    program = request.get("program")
    if program is None and "program_path" in request:
        program = read_request_file(request["program_path"], role="program")
    if not isinstance(program, str):
        raise RequestError("serve request needs a 'program' or 'program_path' field")
    database = request.get("database")
    if database is None and "database_path" in request:
        database = read_request_file(request["database_path"], role="database")
    if database is None:
        database = ""
    if not isinstance(database, str):
        raise RequestError("serve request 'database' must be a string")
    return program, database


def resolve_stream(
    request: Mapping[str, Any], streams: "StreamRegistry | None"
) -> dict[str, Any]:
    """Fill a ``stream`` request's missing program/database from the registry.

    Returns a (possibly copied) request dict with inline sources.  A request
    that names an unknown stream *and* carries no program of its own is
    malformed — there is nothing to apply its delta or queries to.
    """
    stream = request.get("stream")
    if stream is None:
        return dict(request) if not isinstance(request, dict) else request
    if not isinstance(stream, str) or not stream:
        raise RequestError("serve request 'stream' must be a non-empty string")
    state = streams.get(stream) if streams is not None else None
    filled = dict(request)
    if filled.get("program") is None and "program_path" not in filled:
        if state is None:
            raise RequestError(
                f"unknown stream {stream!r}: the first request of a stream must "
                "carry a 'program' (and optionally 'database')"
            )
        filled["program"] = state.program
    if filled.get("database") is None and "database_path" not in filled and state is not None:
        filled["database"] = state.database
    return filled


def request_queries(request: Mapping[str, Any]) -> list[Any]:
    """The request's query spec list (defaulted, shape-checked)."""
    queries = request.get("queries", list(DEFAULT_QUERIES))
    if isinstance(queries, (str, Mapping)) or not isinstance(queries, (list, tuple)):
        raise RequestError(
            "serve request 'queries' must be a list of atom strings or query specs"
        )
    return list(queries)


def validate_queries(specs: list[Any]) -> None:
    """Reject unparseable query specs *before* they reach a shared batch.

    The HTTP micro-batcher coalesces several clients' queries into one
    :class:`~repro.runtime.batch.QueryBatch` pass; validating per client
    keeps one bad spec from failing its batch-mates.
    """
    for spec in specs:
        try:
            query_from_spec(spec)
        except (ReproError, ValueError, TypeError, KeyError) as error:
            raise RequestError(f"invalid query spec {spec!r}: {error}") from None


def is_update_request(request: Mapping[str, Any]) -> bool:
    """Whether a request is a streaming-update (``op: "update"`` or a ``delta``)."""
    return request.get("op") == "update" or "delta" in request


def is_check_request(request: Mapping[str, Any]) -> bool:
    """Whether a request asks for a static check only (``op: "check"``)."""
    return request.get("op") == "check"


def handle_check(service, request: Mapping[str, Any]) -> dict[str, Any]:
    """Statically check a request's sources without evaluating anything.

    Always ``ok: true`` when the check *ran* — findings are data, not
    protocol failures.  ``clean`` is true when no error-severity
    diagnostic fired; warnings and infos ride along in ``diagnostics``.
    """
    program, database = resolve_sources(request)
    analysis = service.check(program, database)
    return {
        "ok": True,
        "clean": analysis.ok,
        "errors": len(analysis.errors()),
        "warnings": len(analysis.warnings()),
        "diagnostics": [d.as_dict() for d in analysis.diagnostics],
        "strategy": analysis.strategy_summary(),
        "program_digest": analysis.program_digest,
    }


def handle_update(
    service, request: Mapping[str, Any], streams: "StreamRegistry | None" = None
) -> dict[str, Any]:
    """Apply one delta request: maintain the cached entry, optionally query it.

    The response carries the canonical post-delta ``database`` text (the
    client's handle on the updated state) and the maintenance ``update``
    report; when the request also lists ``queries`` they are answered
    against the **post-delta** space in the same round trip.
    """
    request = resolve_stream(request, streams)
    program, database = resolve_sources(request)
    delta_spec = request.get("delta")
    if not isinstance(delta_spec, Mapping):
        raise RequestError(
            "update requests need a 'delta' object like "
            '{"insert": ["p(1)"], "retract": ["q(2)"]}'
        )
    result = service.update(program, database, delta_spec)
    stream = request.get("stream")
    if streams is not None and isinstance(stream, str) and stream:
        streams.record(stream, program, result.database_source)
    response: dict[str, Any] = {
        "ok": True,
        "database": result.database_source,
        "update": result.report.as_dict(),
    }
    if "queries" in request:
        queries = request_queries(request)
        validate_queries(queries)
        response["results"] = service.evaluate(
            program, result.database_source, queries, slice=request.get("slice")
        )
    return response


def handle_request(
    service, request: Mapping[str, Any], streams: "StreamRegistry | None" = None
) -> dict[str, Any]:
    """Answer one request dict against an :class:`InferenceService`.

    Raises (:class:`RequestError` or an engine error) rather than catching:
    :func:`answer` is the never-raises wrapper both transports use.
    """
    if not isinstance(request, Mapping):
        raise RequestError("serve requests must be JSON objects")
    if is_check_request(request):
        return handle_check(service, request)
    if is_update_request(request):
        return handle_update(service, request, streams)
    request = resolve_stream(request, streams)
    program, database = resolve_sources(request)
    stream = request.get("stream")
    if streams is not None and isinstance(stream, str) and stream and streams.get(stream) is None:
        # A query carrying a stream name and inline sources *opens* the
        # stream, so follow-up updates may send just the name and a delta.
        streams.record(stream, program, database)
    queries = request_queries(request)
    if request.get("adaptive"):
        results = [
            service.estimate(
                program,
                database,
                query,
                target_half_width=request.get("half_width", 0.01),
                stratify=bool(request.get("stratify", False)),
                seed=request.get("seed"),
                max_samples=int(request.get("max_samples", 200_000)),
            ).value
            for query in queries
        ]
    else:
        results = service.evaluate(program, database, queries, slice=request.get("slice"))
    return {"ok": True, "results": results}


def error_response(
    message: str,
    request_id: Any = None,
    *,
    kind: str | None = None,
    retryable: bool | None = None,
) -> dict[str, Any]:
    """A protocol error response carrying the (possibly ``None``) request id.

    *kind* is a stable machine-matchable error class (``"deadline"``,
    ``"journal_error"``, ``"worker_crashed"``, ...) and *retryable* tells
    clients whether re-sending the same request can succeed — the contract
    the chaos suite asserts: every injected fault surfaces as a typed
    retryable error, never a silent wrong answer.
    """
    response: dict[str, Any] = {"ok": False, "error": message, "id": request_id}
    if kind is not None:
        response["error_kind"] = kind
    if retryable is not None:
        response["retryable"] = retryable
    return response


def answer(service, request: Any, streams: "StreamRegistry | None" = None) -> dict[str, Any]:
    """Answer one parsed request; **never raises** and always echoes ``id``.

    Any failure — malformed fields, unreadable paths, parse errors, engine
    limits, even an unexpected bug in the evaluation stack — becomes an
    ``ok: false`` response so a single bad request cannot kill a serving
    loop that multiplexes many clients.  *streams* (front-end transports
    only) enables the named-stream shorthand of the update protocol.
    """
    request_id = None
    try:
        if not isinstance(request, Mapping):
            raise RequestError("serve requests must be JSON objects")
        request_id = request.get("id")
        response = handle_request(service, request, streams)
    except DiagnosticsError as error:
        # The validation gate rejected the program: the structured findings
        # travel with the error so clients (and the HTTP 400 payload) can
        # match on codes and spans instead of scraping the message.
        response = error_response(f"{type(error).__name__}: {error}", request_id)
        response["diagnostics"] = [d.as_dict() for d in error.diagnostics]
    except (ReproError, ValueError, TypeError, KeyError) as error:
        response = error_response(f"{type(error).__name__}: {error}", request_id)
    except Exception as error:  # noqa: BLE001 - the loop must survive anything
        response = error_response(
            f"internal error ({type(error).__name__}): {error}", request_id
        )
    response["id"] = request_id
    return response


def answer_line(service, line: str, streams: "StreamRegistry | None" = None) -> dict[str, Any]:
    """Answer one raw JSON-lines request string (the stdin transport)."""
    try:
        request = json.loads(line)
    except json.JSONDecodeError as error:
        return error_response(f"invalid JSON request: {error}")
    return answer(service, request, streams)
