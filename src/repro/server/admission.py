"""Admission control: per-client token buckets, bounded shard queues, drain.

The HTTP front end admits a request **before** spending any work on it.
Three gates, in order:

1. **Draining** — after SIGTERM the server finishes in-flight work but
   admits nothing new: ``503`` with ``Retry-After`` so load balancers fail
   over immediately.
2. **Per-client budget** — a token bucket per client identity (the
   ``X-Client-Id`` header, else the peer address).  A client that bursts
   past its budget gets ``429`` with the exact ``Retry-After`` the bucket
   needs to refill one token; other clients are unaffected.
3. **Per-shard queue bound** — each shard worker admits at most
   ``max_queue`` in-flight requests.  A hot shard sheds load with ``503``
   instead of growing an unbounded queue in front of a single worker
   process (the failure mode of the stdin loop under concurrency).

:meth:`AdmissionController.try_admit` returns either a :class:`Ticket`
(whose ``release()`` must run exactly once when the request completes) or
a :class:`Rejection` carrying the HTTP status and ``Retry-After`` seconds.
All state is lock-guarded; a monotonic clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

from repro.rng import seeded_random

__all__ = ["TokenBucket", "Ticket", "Rejection", "AdmissionController"]


class TokenBucket:
    """A token bucket (``capacity`` burst, ``rate``/second) on a monotonic epoch.

    Refill is computed as ``(now - epoch) * rate`` — one multiplication
    against a fixed reference point — instead of accumulating
    ``elapsed * rate`` micro-increments per request.  Under sustained load
    the per-request increments are tiny floats added to a comparatively
    large balance, and the representation error compounds request after
    request (the classic drift bug: a bucket that slowly leaks or grows
    budget it never had).  Spending is exact by construction: ``spent``
    only ever changes by ``+= 1.0``, and the epoch rebases whenever the
    bucket is observed full, so neither term grows without bound.
    """

    def __init__(self, rate: float, capacity: float, now: float):
        self.rate = float(rate)
        self.capacity = float(capacity)
        #: Start of the current accounting window (monotonic seconds).
        self.epoch = now
        #: Whole tokens taken since the epoch (always an exact float).
        self.spent = 0.0

    def _available(self, now: float) -> float:
        earned = max(0.0, now - self.epoch) * self.rate
        available = self.capacity + earned - self.spent
        if available >= self.capacity:
            # Full again: idle credit beyond capacity is forfeited.  Rebase
            # the epoch so neither `earned` nor `spent` grows unboundedly.
            self.epoch = now
            self.spent = 0.0
            return self.capacity
        return available

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until refill.

        The returned wait is the exact time until one full token is
        available — the ``Retry-After`` a well-behaved client should honor.
        """
        available = self._available(now)
        if available >= 1.0:
            self.spent += 1.0
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return (1.0 - available) / self.rate


@dataclass
class Rejection:
    """An admission refusal: an HTTP status plus a Retry-After hint.

    ``retry_after`` is the *exact* wait (what the JSON body reports);
    ``retry_after_hint`` is the jittered value the emitted ``Retry-After``
    header should use — without jitter, every client rejected in the same
    burst retries in the same instant and the thundering herd repeats.
    """

    status: int  # 429 (client budget) or 503 (queue full / draining)
    reason: str  # "client_budget" | "queue_full" | "draining"
    retry_after: float
    retry_after_hint: float = 0.0

    def __post_init__(self) -> None:
        if not self.retry_after_hint:
            self.retry_after_hint = self.retry_after

    @property
    def message(self) -> str:
        return {
            "client_budget": "client request budget exhausted",
            "queue_full": "shard queue full",
            "draining": "server is draining",
        }.get(self.reason, self.reason)


class Ticket:
    """One admitted request's reservation; ``release()`` exactly once."""

    __slots__ = ("_controller", "_shard", "_released")

    def __init__(self, controller: "AdmissionController", shard: int):
        self._controller = controller
        self._shard = shard
        self._released = False

    @property
    def shard(self) -> int:
        return self._shard

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._shard)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Draining flag + per-client buckets + bounded per-shard in-flight counts."""

    #: At most this many distinct client buckets are retained (LRU): an
    #: adversary cycling client ids cannot grow memory without bound.
    MAX_CLIENTS = 4096

    def __init__(
        self,
        shards: int,
        max_queue: int = 64,
        client_rate: float = 200.0,
        client_burst: float = 400.0,
        clock: Callable[[], float] = time.monotonic,
        retry_jitter: float = 0.25,
        jitter_seed: int | None = None,
    ):
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.client_rate = float(client_rate)
        self.client_burst = max(1.0, float(client_burst))
        #: Fractional spread added to emitted Retry-After hints (0 disables).
        self.retry_jitter = max(0.0, float(retry_jitter))
        self._jitter_rng = seeded_random(jitter_seed)
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = [0] * shards
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._draining = False

    def _jittered(self, wait: float) -> float:
        """A Retry-After hint spread over [wait, wait * (1 + retry_jitter)]."""
        if self.retry_jitter <= 0.0:
            return wait
        return wait * (1.0 + self.retry_jitter * self._jitter_rng.random())

    # -- drain ---------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        self._draining = True

    def inflight(self, shard: int | None = None) -> int:
        with self._lock:
            if shard is None:
                return sum(self._inflight)
            return self._inflight[shard]

    # -- admission -----------------------------------------------------------------

    def try_admit(self, client: str, shard: int) -> Ticket | Rejection:
        if self._draining:
            return Rejection(
                status=503, reason="draining", retry_after=1.0,
                retry_after_hint=self._jittered(1.0),
            )
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.client_rate, self.client_burst, now)
                self._buckets[client] = bucket
                if len(self._buckets) > self.MAX_CLIENTS:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            wait = bucket.try_take(now)
            if wait > 0.0:
                retry = 1.0 if wait == float("inf") else wait
                return Rejection(
                    status=429, reason="client_budget", retry_after=retry,
                    retry_after_hint=self._jittered(retry),
                )
            if self._inflight[shard] >= self.max_queue:
                # The token was spent; that is fine — the client *did* send
                # the request, and refunding would let a single client spin
                # on a saturated shard for free.
                return Rejection(
                    status=503, reason="queue_full", retry_after=0.5,
                    retry_after_hint=self._jittered(0.5),
                )
            self._inflight[shard] += 1
            return Ticket(self, shard)

    def _release(self, shard: int) -> None:
        with self._lock:
            self._inflight[shard] -= 1
