"""Admission control: per-client token buckets, bounded shard queues, drain.

The HTTP front end admits a request **before** spending any work on it.
Three gates, in order:

1. **Draining** — after SIGTERM the server finishes in-flight work but
   admits nothing new: ``503`` with ``Retry-After`` so load balancers fail
   over immediately.
2. **Per-client budget** — a token bucket per client identity (the
   ``X-Client-Id`` header, else the peer address).  A client that bursts
   past its budget gets ``429`` with the exact ``Retry-After`` the bucket
   needs to refill one token; other clients are unaffected.
3. **Per-shard queue bound** — each shard worker admits at most
   ``max_queue`` in-flight requests.  A hot shard sheds load with ``503``
   instead of growing an unbounded queue in front of a single worker
   process (the failure mode of the stdin loop under concurrency).

:meth:`AdmissionController.try_admit` returns either a :class:`Ticket`
(whose ``release()`` must run exactly once when the request completes) or
a :class:`Rejection` carrying the HTTP status and ``Retry-After`` seconds.
All state is lock-guarded; a monotonic clock is injectable for tests.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable

__all__ = ["TokenBucket", "Ticket", "Rejection", "AdmissionController"]


class TokenBucket:
    """A standard token bucket: ``capacity`` burst, ``rate`` tokens/second."""

    def __init__(self, rate: float, capacity: float, now: float):
        self.rate = float(rate)
        self.capacity = float(capacity)
        self.tokens = float(capacity)
        self.updated = now

    def try_take(self, now: float) -> float:
        """Take one token; returns 0.0 on success, else seconds until refill.

        The returned wait is the exact time until one full token is
        available — the ``Retry-After`` a well-behaved client should honor.
        """
        elapsed = max(0.0, now - self.updated)
        self.tokens = min(self.capacity, self.tokens + elapsed * self.rate)
        self.updated = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return 0.0
        if self.rate <= 0.0:
            return float("inf")
        return (1.0 - self.tokens) / self.rate


@dataclass
class Rejection:
    """An admission refusal: an HTTP status plus a Retry-After hint."""

    status: int  # 429 (client budget) or 503 (queue full / draining)
    reason: str  # "client_budget" | "queue_full" | "draining"
    retry_after: float

    @property
    def message(self) -> str:
        return {
            "client_budget": "client request budget exhausted",
            "queue_full": "shard queue full",
            "draining": "server is draining",
        }.get(self.reason, self.reason)


class Ticket:
    """One admitted request's reservation; ``release()`` exactly once."""

    __slots__ = ("_controller", "_shard", "_released")

    def __init__(self, controller: "AdmissionController", shard: int):
        self._controller = controller
        self._shard = shard
        self._released = False

    @property
    def shard(self) -> int:
        return self._shard

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._shard)

    def __enter__(self) -> "Ticket":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()


class AdmissionController:
    """Draining flag + per-client buckets + bounded per-shard in-flight counts."""

    #: At most this many distinct client buckets are retained (LRU): an
    #: adversary cycling client ids cannot grow memory without bound.
    MAX_CLIENTS = 4096

    def __init__(
        self,
        shards: int,
        max_queue: int = 64,
        client_rate: float = 200.0,
        client_burst: float = 400.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if shards < 1:
            raise ValueError(f"shards must be at least 1, got {shards}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        self.max_queue = int(max_queue)
        self.client_rate = float(client_rate)
        self.client_burst = max(1.0, float(client_burst))
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight = [0] * shards
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()
        self._draining = False

    # -- drain ---------------------------------------------------------------------

    @property
    def draining(self) -> bool:
        return self._draining

    def begin_drain(self) -> None:
        self._draining = True

    def inflight(self, shard: int | None = None) -> int:
        with self._lock:
            if shard is None:
                return sum(self._inflight)
            return self._inflight[shard]

    # -- admission -----------------------------------------------------------------

    def try_admit(self, client: str, shard: int) -> Ticket | Rejection:
        if self._draining:
            return Rejection(status=503, reason="draining", retry_after=1.0)
        now = self._clock()
        with self._lock:
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = TokenBucket(self.client_rate, self.client_burst, now)
                self._buckets[client] = bucket
                if len(self._buckets) > self.MAX_CLIENTS:
                    self._buckets.popitem(last=False)
            else:
                self._buckets.move_to_end(client)
            wait = bucket.try_take(now)
            if wait > 0.0:
                retry = 1.0 if wait == float("inf") else wait
                return Rejection(status=429, reason="client_budget", retry_after=retry)
            if self._inflight[shard] >= self.max_queue:
                # The token was spent; that is fine — the client *did* send
                # the request, and refunding would let a single client spin
                # on a saturated shard for free.
                return Rejection(status=503, reason="queue_full", retry_after=0.5)
            self._inflight[shard] += 1
            return Ticket(self, shard)

    def _release(self, shard: int) -> None:
        with self._lock:
            self._inflight[shard] -= 1
