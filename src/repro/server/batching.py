"""Cross-request micro-batching: concurrent queries, one outcome pass.

Under concurrency, many clients ask the *same* (program, database) —
that is the whole point of the engine cache — but each request still pays
its own :class:`~repro.runtime.batch.QueryBatch` pass over the outcome
space, plus one pipe round-trip to the shard worker.  The
:class:`MicroBatcher` holds the first exact query against a (program,
database, slice) group for a short window (default 2 ms); every compatible
request arriving inside the window appends its query specs to the group.
On flush the group becomes **one** combined protocol request — one pipe
message, one cache lookup, one ``QueryBatch`` pass in the worker — and the
result vector is sliced back per requester.

``QueryBatch`` accumulates each query's mass independently with
``math.fsum`` over the same outcome enumeration order, so batched answers
are **bit-identical** to per-request evaluation (the PR 2 property tests
pin this); coalescing is therefore invisible to clients except as lower
latency under load.  Query specs are validated per client *before*
coalescing, so one malformed spec cannot poison its batch-mates; a failure
of the combined request (e.g. a program parse error) by construction
affects only clients that sent that same program.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.server.metrics import MetricsRegistry

__all__ = ["MicroBatcher", "BatchFailed"]


class BatchFailed(RuntimeError):
    """The combined request answered ``ok: false``; carries the error text.

    When the worker's response included structured checker findings (the
    validation gate's :class:`~repro.gdatalog.checker.DiagnosticsError`),
    they ride along in :attr:`diagnostics` so the HTTP 400 payload keeps
    the codes and spans instead of just the flattened message.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = diagnostics


class _Group:
    """Queries accumulated for one (shard, program, database, slice) key."""

    __slots__ = ("shard", "request_core", "specs", "waiters", "timer")

    def __init__(self, shard: int, request_core: dict):
        self.shard = shard
        self.request_core = request_core
        self.specs: list[Any] = []
        #: ``(start, count, future)`` per coalesced client request.
        self.waiters: list[tuple[int, int, asyncio.Future]] = []
        self.timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce same-group exact queries inside a short window."""

    def __init__(
        self,
        router,
        window: float = 0.002,
        max_batch: int = 64,
        metrics: MetricsRegistry | None = None,
    ):
        self.router = router
        self.window = max(0.0, float(window))
        self.max_batch = max(1, int(max_batch))
        self.metrics = metrics
        self._groups: dict[tuple, _Group] = {}

    async def submit(
        self,
        shard: int,
        program: str,
        database: str,
        specs: list[Any],
        slice_: Any = None,
    ) -> list[float]:
        """The results for *specs*, possibly answered by a shared batch pass."""
        request_core = {"program": program, "database": database}
        if slice_ is not None:
            request_core["slice"] = bool(slice_)
        if self.window <= 0.0:
            return await self._evaluate(shard, request_core, specs)
        loop = asyncio.get_running_loop()
        key = (shard, program, database, request_core.get("slice"))
        group = self._groups.get(key)
        if group is None:
            group = _Group(shard, request_core)
            self._groups[key] = group
            group.timer = loop.call_later(self.window, self._flush, key)
        future: asyncio.Future = loop.create_future()
        group.waiters.append((len(group.specs), len(specs), future))
        group.specs.extend(specs)
        if len(group.specs) >= self.max_batch:
            self._flush(key)
        return await future

    # -- flushing ------------------------------------------------------------------

    def _flush(self, key: tuple) -> None:
        group = self._groups.pop(key, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        if self.metrics is not None:
            self.metrics.inc("gdatalog_microbatch_batches_total")
            self.metrics.inc(
                "gdatalog_microbatch_requests_total", amount=len(group.waiters)
            )
            if len(group.waiters) > 1:
                self.metrics.inc(
                    "gdatalog_microbatch_coalesced_total", amount=len(group.waiters) - 1
                )
        asyncio.ensure_future(self._run_group(group))

    async def _run_group(self, group: _Group) -> None:
        try:
            results = await self._evaluate(group.shard, group.request_core, group.specs)
        except Exception as error:  # noqa: BLE001 - fan the failure out per waiter
            for _, _, future in group.waiters:
                if not future.done():
                    future.set_exception(error)
            return
        for start, count, future in group.waiters:
            if not future.done():
                future.set_result(results[start : start + count])

    async def _evaluate(self, shard: int, request_core: dict, specs: list[Any]) -> list[float]:
        """One protocol round-trip to the shard for a (possibly merged) batch."""
        request = dict(request_core)
        request["queries"] = list(specs)
        response = await self.router.submit(shard, request)
        if not response.get("ok"):
            raise BatchFailed(
                str(response.get("error", "batch evaluation failed")),
                response.get("diagnostics"),
            )
        results = response.get("results")
        if not isinstance(results, list) or len(results) != len(specs):
            raise BatchFailed(
                f"shard returned {0 if not isinstance(results, list) else len(results)} "
                f"results for {len(specs)} queries"
            )
        return results
