"""Asyncio HTTP/1.1 + WebSocket front end for the inference service.

Pure stdlib (``asyncio`` streams, no third-party HTTP framework): the
server speaks enough HTTP/1.1 for production load balancers — keep-alive,
``Content-Length`` bodies, ``Retry-After``, readable JSON errors — plus
RFC 6455 WebSockets for streaming clients.  Routes:

* ``POST /v1/query``  — one exact request (the stdin JSON-lines schema);
  eligible for the cross-request micro-batch window.
* ``POST /v1/batch``  — an explicit multi-query request, dispatched
  directly (it already is a batch).
* ``POST /v1/sample`` — adaptive Monte-Carlo estimation (``adaptive`` is
  forced on).
* ``POST /v1/update`` — streaming-evidence delta (``{"delta": {"insert":
  [...], "retract": [...]}}``): the shard owning the program hash
  delta-maintains its cached engine and answers with the canonical
  post-delta ``database`` text (plus post-delta query results when the
  request lists ``queries``).  Requests may name a ``stream`` instead of
  re-sending sources; stream state lives in the front end, so shard
  workers stay stateless and a respawned worker rebuilds correctly from
  the forwarded request alone.
* ``GET /healthz``    — liveness/readiness (``503`` while draining).
* ``GET /metrics``    — Prometheus text: request/latency histograms,
  admission rejections, micro-batch volumes, and live per-shard cache +
  join-engine counters.
* ``GET /v1/ws``      — WebSocket; each text frame is one JSON request,
  each response frame echoes the request ``id``.

Requests are admitted (token buckets + bounded shard queues, see
:mod:`repro.server.admission`), routed by canonical program key to a
persistent worker process (:mod:`repro.server.shards`), and exact queries
are coalesced into shared :class:`QueryBatch` passes
(:mod:`repro.server.batching`).  SIGTERM/SIGINT triggers a graceful drain:
stop accepting, finish in-flight work, stop the workers, exit.
"""

from __future__ import annotations

import asyncio
import base64
import hashlib
import json
import signal
import sys
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.server import faults
from repro.server.admission import AdmissionController, Rejection
from repro.server.batching import BatchFailed, MicroBatcher
from repro.server.journal import DEFAULT_MAX_BYTES, JournalError, StreamJournal
from repro.server.metrics import MetricsRegistry
from repro.server.protocol import (
    RequestError,
    StreamRegistry,
    error_response,
    is_update_request,
    request_queries,
    resolve_sources,
    resolve_stream,
    validate_queries,
)
from repro.server.shards import ShardConfig, ShardRouter, WorkerCrashed

__all__ = ["ServerConfig", "InferenceServer", "serve_http"]

_WS_GUID = "258EAFA5-E914-47DA-95CA-C5AB0DC85B11"
_STATUS_PHRASES = {
    200: "OK",
    101: "Switching Protocols",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class ServerConfig:
    """Everything the ``gdatalog serve --http`` front end can tune."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Persistent worker processes; each owns an isolated engine cache.
    shards: int = 2
    cache_size: int = 32
    grounder: str = "simple"
    factorize: bool = False
    slice: bool = False
    #: Micro-batch window in seconds (0 disables coalescing).
    batch_window: float = 0.002
    max_batch: int = 64
    #: Maximum in-flight requests per shard before 503 load shedding.
    max_queue: int = 64
    #: Per-client token bucket: sustained requests/second and burst size.
    client_rate: float = 200.0
    client_burst: float = 400.0
    #: Upper bound on graceful-drain wait after SIGTERM.
    drain_timeout: float = 30.0
    max_body_bytes: int = 4 * 1024 * 1024
    #: Static-check programs on first sighting; failures answer 400 with
    #: structured diagnostics instead of a bare engine error.
    validate: bool = True
    #: Write-ahead journal directory for named streams (None disables
    #: durability); on boot the journal is replayed so every stream resumes
    #: at bit-identical post-delta state.
    journal_dir: str | None = None
    #: Journal fsync policy: "always" | "batch" | "never".
    journal_fsync: str = "always"
    #: Journal size that triggers snapshot compaction.
    journal_max_bytes: int = DEFAULT_MAX_BYTES
    #: Per-request deadline in seconds (None disables): an expired request
    #: answers 504 with a typed retryable error and its partial work is
    #: discarded (no stream/journal state is recorded).
    request_timeout: float | None = None

    def shard_config(self) -> ShardConfig:
        return ShardConfig(
            grounder=self.grounder,
            cache_size=self.cache_size,
            factorize=self.factorize,
            slice=self.slice,
            validate=self.validate,
        )


@dataclass
class _HttpRequest:
    method: str
    path: str
    version: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)


async def _read_http_request(
    reader: asyncio.StreamReader, max_body: int
) -> _HttpRequest | None:
    """Parse one request head+body; ``None`` on a cleanly closed connection."""
    try:
        line = await reader.readline()
    except (asyncio.IncompleteReadError, ConnectionError, ValueError):
        return None
    if not line or not line.strip():
        return None
    try:
        method, path, version = line.decode("latin-1").split(None, 2)
    except ValueError:
        raise RequestError("malformed HTTP request line") from None
    headers: dict[str, str] = {}
    for _ in range(128):
        header_line = await reader.readline()
        if header_line in (b"\r\n", b"\n", b""):
            break
        name, _, value = header_line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    else:
        raise RequestError("too many HTTP headers")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise RequestError("malformed Content-Length header") from None
        if length > max_body:
            raise RequestError(f"request body exceeds {max_body} bytes")
        body = await reader.readexactly(length)
    elif headers.get("transfer-encoding"):
        raise RequestError("chunked request bodies are not supported; send Content-Length")
    return _HttpRequest(method.upper(), path, version.strip(), headers, body)


def _response_bytes(
    status: int,
    body: bytes,
    content_type: str = "application/json",
    extra_headers: Mapping[str, str] | None = None,
    keep_alive: bool = True,
) -> bytes:
    phrase = _STATUS_PHRASES.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


def _ws_frame(opcode: int, payload: bytes) -> bytes:
    """One server→client (unmasked) WebSocket frame."""
    header = bytearray([0x80 | opcode])
    length = len(payload)
    if length < 126:
        header.append(length)
    elif length < 1 << 16:
        header.append(126)
        header += length.to_bytes(2, "big")
    else:
        header.append(127)
        header += length.to_bytes(8, "big")
    return bytes(header) + payload


async def _read_ws_frame(
    reader: asyncio.StreamReader, max_payload: int
) -> tuple[int, bool, bytes] | None:
    """``(opcode, fin, payload)`` of one client frame; ``None`` on EOF."""
    try:
        first = await reader.readexactly(2)
    except (asyncio.IncompleteReadError, ConnectionError):
        return None
    fin = bool(first[0] & 0x80)
    opcode = first[0] & 0x0F
    masked = bool(first[1] & 0x80)
    length = first[1] & 0x7F
    if length == 126:
        length = int.from_bytes(await reader.readexactly(2), "big")
    elif length == 127:
        length = int.from_bytes(await reader.readexactly(8), "big")
    if length > max_payload:
        raise RequestError(f"WebSocket frame exceeds {max_payload} bytes")
    mask = await reader.readexactly(4) if masked else b""
    payload = await reader.readexactly(length)
    if masked:
        payload = bytes(byte ^ mask[index % 4] for index, byte in enumerate(payload))
    return opcode, fin, payload


class InferenceServer:
    """The asyncio server: admission → routing → (micro-)batched evaluation."""

    def __init__(self, config: ServerConfig | None = None):
        self.config = config or ServerConfig()
        self.router = ShardRouter(self.config.shards, self.config.shard_config())
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(
            shards=self.config.shards,
            max_queue=self.config.max_queue,
            client_rate=self.config.client_rate,
            client_burst=self.config.client_burst,
        )
        self.batcher = MicroBatcher(
            self.router,
            window=self.config.batch_window,
            max_batch=self.config.max_batch,
            metrics=self.metrics,
        )
        #: Named evidence streams (front-end state; workers stay stateless).
        self.streams = StreamRegistry()
        # Env-armed chaos specs (subprocess harnesses); a no-op otherwise.
        faults.install_from_env()
        #: Durable write-ahead journal — opening it replays any prior
        #: history, so recovered streams are live before the first request.
        self.journal: StreamJournal | None = None
        if self.config.journal_dir:
            self.journal = StreamJournal(
                self.config.journal_dir,
                fsync=self.config.journal_fsync,
                max_bytes=self.config.journal_max_bytes,
            )
            for recovered in self.journal.recovered_streams():
                self.streams.record(recovered.name, recovered.program, recovered.database)
        #: Idempotency-key → response LRU: a client retry that raced a lost
        #: ack replays the recorded response instead of re-applying.
        self._idempotency: OrderedDict[str, dict] = OrderedDict()
        self._idempotency_limit = 1024
        self._server: asyncio.base_events.Server | None = None
        self._inflight = 0
        self._drain_requested = asyncio.Event()
        self._drained = asyncio.Event()
        self._describe_metrics()

    def _describe_metrics(self) -> None:
        self.metrics.describe("gdatalog_requests_total", "Requests answered, by route and status")
        self.metrics.describe("gdatalog_request_seconds", "Request latency, by route")
        self.metrics.describe("gdatalog_rejected_total", "Admission rejections, by reason")
        self.metrics.describe(
            "gdatalog_microbatch_batches_total", "Combined QueryBatch passes dispatched"
        )
        self.metrics.describe(
            "gdatalog_microbatch_requests_total", "Client requests entering the batch window"
        )
        self.metrics.describe(
            "gdatalog_microbatch_coalesced_total",
            "Client requests that shared another request's batch pass",
        )
        self.metrics.describe("gdatalog_worker_respawns_total", "Crashed shard workers respawned")
        self.metrics.describe(
            "gdatalog_updates_applied_total", "Streaming fact deltas applied via /v1/update"
        )
        self.metrics.describe(
            "gdatalog_subtrees_invalidated_total",
            "Chase subtrees (outcomes/components) re-chased by streaming updates",
        )
        self.metrics.describe(
            "gdatalog_subtrees_reused_total",
            "Chase subtrees (outcomes/components) reused unchanged by streaming updates",
        )
        self.metrics.describe(
            "gdatalog_chase_reuse_ratio",
            "Share of chase subtrees reused across all applied updates",
        )
        self.metrics.describe("gdatalog_service_cache", "Per-shard InferenceService counters")
        self.metrics.describe("gdatalog_join_counters", "Per-shard join-engine JOIN_STATS counters")
        self.metrics.describe("gdatalog_shard_up", "1 if the shard worker answered the last probe")
        self.metrics.describe("gdatalog_shard_cache_entries", "Engines cached per shard")
        self.metrics.describe(
            "gdatalog_journal_records_total", "Records appended to the stream write-ahead journal"
        )
        self.metrics.describe(
            "gdatalog_journal_truncated_total", "Torn journal tails truncated on open"
        )
        self.metrics.describe(
            "gdatalog_recoveries_total", "Named streams restored by boot-time journal replay"
        )
        self.metrics.describe(
            "gdatalog_faults_injected_total",
            "Faults fired by the deterministic injection harness (front end + live workers)",
        )

    # -- lifecycle -----------------------------------------------------------------

    @property
    def port(self) -> int:
        """The bound port (useful with ``port=0``)."""
        assert self._server is not None and self._server.sockets
        return self._server.sockets[0].getsockname()[1]

    @property
    def draining(self) -> bool:
        return self.admission.draining

    async def start(self) -> None:
        """Fork the shard workers, then start accepting connections."""
        self.router.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=self.config.max_body_bytes,
        )

    async def wait_ready(self, timeout: float = 10.0) -> None:
        """Block until every shard worker answers a stats probe, or raise.

        The CI startup guard: a hung worker (import deadlock, fork gone
        wrong) fails fast here instead of stalling the whole pipeline.
        """
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"shard workers not ready within {timeout:.1f}s "
                    f"(pids {self.router.worker_pids()})"
                )
            stats = await self.router.shard_stats(timeout=min(remaining, 2.0))
            if all(snapshot is not None for snapshot in stats):
                return
            await asyncio.sleep(0.05)

    def begin_drain(self) -> None:
        """Stop admitting, close the listener; in-flight requests finish."""
        self.admission.begin_drain()
        self._drain_requested.set()
        if self._server is not None:
            self._server.close()
        if self._inflight == 0:
            self._drained.set()

    async def drain(self, timeout: float | None = None) -> bool:
        """Wait for in-flight work to finish; ``False`` on timeout."""
        timeout = self.config.drain_timeout if timeout is None else timeout
        try:
            await asyncio.wait_for(self._drained.wait(), timeout=timeout)
            return True
        except asyncio.TimeoutError:
            return False

    async def stop(self, drain: bool = True, timeout: float | None = None) -> bool:
        """Drain (optionally), close the listener, stop the workers."""
        self.begin_drain()
        drained = await self.drain(timeout) if drain else False
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self.router.stop()
        if self.journal is not None:
            self.journal.close()
        return drained or not drain

    async def run(self) -> None:
        """Serve until SIGTERM/SIGINT, then drain gracefully (the CLI path)."""
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, self.begin_drain)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
        await self.start()
        print(
            f"serving on http://{self.config.host}:{self.port} "
            f"({self.config.shards} shard(s), batch window {self.config.batch_window * 1000:.1f} ms)",
            file=sys.stderr,
            flush=True,
        )
        await self._drain_requested.wait()
        # Bounded drain: a hung in-flight request must not stall exit (the
        # CI guard relies on SIGTERM always terminating the process).
        drained = await self.drain(self.config.drain_timeout)
        await self.stop(drain=False)
        requests = int(
            sum(
                self.metrics.counter_value("gdatalog_requests_total", {"route": route, "status": status})
                for route in ("query", "batch", "sample", "update", "check", "ws")
                for status in ("200", "400", "429", "503")
            )
        )
        print(
            f"drained {'cleanly' if drained else 'with a timeout'}; "
            f"served {requests} request(s)",
            file=sys.stderr,
            flush=True,
        )

    # -- request accounting --------------------------------------------------------

    def _enter_request(self) -> None:
        self._inflight += 1

    def _exit_request(self) -> None:
        self._inflight -= 1
        if self._inflight == 0 and self.admission.draining:
            self._drained.set()

    # -- connection handling -------------------------------------------------------

    def _client_identity(self, request: _HttpRequest, writer: asyncio.StreamWriter) -> str:
        client = request.header("x-client-id")
        if client:
            return client
        peer = writer.get_extra_info("peername")
        return str(peer[0]) if isinstance(peer, tuple) and peer else "unknown"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await _read_http_request(reader, self.config.max_body_bytes)
                except RequestError as error:
                    body = json.dumps(error_response(str(error))).encode("utf-8")
                    writer.write(_response_bytes(400, body, keep_alive=False))
                    await writer.drain()
                    break
                except asyncio.IncompleteReadError:
                    break
                if request is None:
                    break
                if (
                    request.header("upgrade").lower() == "websocket"
                    and request.path.split("?")[0] == "/v1/ws"
                ):
                    await self._websocket_session(request, reader, writer)
                    break
                keep_alive = (
                    not self.draining
                    and request.header("connection").lower() != "close"
                    and request.version != "HTTP/1.0"
                )
                status, payload, extra = await self._dispatch(request, writer)
                if isinstance(payload, bytes):
                    body, content_type = payload, "text/plain; version=0.0.4"
                else:
                    body = json.dumps(payload).encode("utf-8")
                    content_type = "application/json"
                writer.write(
                    _response_bytes(status, body, content_type, extra, keep_alive)
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except asyncio.CancelledError:
            # Loop shutdown cancels idle keep-alive connections; completing
            # normally here keeps asyncio's stream teardown quiet.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _dispatch(
        self, request: _HttpRequest, writer: asyncio.StreamWriter
    ) -> tuple[int, Any, dict[str, str]]:
        """Route one HTTP request → (status, JSON payload or raw bytes, headers)."""
        path = request.path.split("?")[0]
        started = time.monotonic()
        if path == "/healthz" and request.method == "GET":
            if self.draining:
                return 503, {"ok": False, "draining": True}, {"Retry-After": "1"}
            return (
                200,
                {
                    "ok": True,
                    "shards": self.config.shards,
                    "draining": False,
                    "inflight": self.admission.inflight(),
                },
                {},
            )
        if path == "/metrics" and request.method == "GET":
            return 200, await self._render_metrics(), {}
        route = {
            "/v1/query": "query",
            "/v1/batch": "batch",
            "/v1/sample": "sample",
            "/v1/update": "update",
            "/v1/check": "check",
        }.get(path)
        if route is None:
            return 404, error_response(f"no such route: {path}"), {}
        if request.method != "POST":
            return 405, error_response(f"{path} requires POST"), {"Allow": "POST"}
        try:
            payload = json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            return 400, error_response(f"invalid JSON request: {error}"), {}
        client = self._client_identity(request, writer)
        status, response, extra = await self._serve_payload(payload, client, route)
        elapsed = time.monotonic() - started
        self.metrics.inc(
            "gdatalog_requests_total", {"route": route, "status": str(status)}
        )
        self.metrics.observe("gdatalog_request_seconds", elapsed, {"route": route})
        return status, response, extra

    async def _serve_payload(
        self, payload: Any, client: str, route: str
    ) -> tuple[int, dict, dict[str, str]]:
        """Admit, route, and answer one protocol request (HTTP or WS)."""
        if not isinstance(payload, dict):
            return 400, error_response(
                "serve requests must be JSON objects", kind="bad_request", retryable=False
            ), {}
        request_id = payload.get("id")
        try:
            payload = resolve_stream(payload, self.streams)
            program, database = resolve_sources(payload)
        except RequestError as error:
            return 400, error_response(
                str(error), request_id, kind="bad_request", retryable=False
            ), {}
        shard = self.router.shard_for(program)
        admitted = self.admission.try_admit(client, shard)
        if isinstance(admitted, Rejection):
            self.metrics.inc("gdatalog_rejected_total", {"reason": admitted.reason})
            response = error_response(
                admitted.message, request_id, kind=admitted.reason, retryable=True
            )
            response["retry_after"] = round(admitted.retry_after, 3)
            return (
                admitted.status,
                response,
                {"Retry-After": str(max(1, int(admitted.retry_after_hint + 0.999)))},
            )
        self._enter_request()
        try:
            with admitted:
                work = self._execute(payload, route, program, database, shard)
                if self.config.request_timeout is not None:
                    try:
                        response = await asyncio.wait_for(
                            work, timeout=self.config.request_timeout
                        )
                    except asyncio.TimeoutError:
                        # Partial-work cleanup is implicit in the write order:
                        # stream registry, journal and idempotency records are
                        # written only after the worker answered, so a request
                        # cancelled mid-flight leaves no half-applied state —
                        # the retry re-runs it from scratch.
                        self.metrics.inc("gdatalog_rejected_total", {"reason": "deadline"})
                        response = error_response(
                            f"request exceeded its {self.config.request_timeout:.3f}s "
                            "deadline (no state was recorded; safe to retry)",
                            request_id,
                            kind="deadline",
                            retryable=True,
                        )
                        response["retry_after"] = 1.0
                        return 504, response, {"Retry-After": "1"}
                else:
                    response = await work
        except RequestError as error:
            return 400, error_response(
                str(error), request_id, kind="bad_request", retryable=False
            ), {}
        except BatchFailed as error:
            response = error_response(str(error), request_id, kind="bad_request", retryable=False)
            if error.diagnostics:
                response["diagnostics"] = error.diagnostics
            return 400, response, {}
        except JournalError as error:
            # The update may have reached the worker, but it was never
            # acknowledged nor recorded in the stream registry: retrying is
            # safe (set-semantics delta + log-hash dedup) and required.
            self.metrics.inc("gdatalog_rejected_total", {"reason": "journal_error"})
            response = error_response(
                f"durable journal write failed: {error}", request_id,
                kind="journal_error", retryable=True,
            )
            response["retry_after"] = 1.0
            return 503, response, {"Retry-After": "1"}
        except WorkerCrashed:
            self.metrics.inc("gdatalog_rejected_total", {"reason": "worker_crashed"})
            response = error_response(
                "shard worker crashed; please retry", request_id,
                kind="worker_crashed", retryable=True,
            )
            response["retry_after"] = 1.0
            return 503, response, {"Retry-After": "1"}
        except Exception as error:  # noqa: BLE001 - a bug must answer, not hang up
            return 500, error_response(
                f"internal error ({type(error).__name__}): {error}", request_id,
                kind="internal", retryable=False,
            ), {}
        finally:
            self._exit_request()
        response["id"] = request_id
        status = 200 if response.get("ok") else 400
        return status, response, {}

    async def _execute(
        self, payload: dict, route: str, program: str, database: str, shard: int
    ) -> dict:
        """Dispatch one admitted request (the deadline-bounded inner work)."""
        stream = payload.get("stream")
        if isinstance(stream, str) and stream and self.streams.get(stream) is None:
            # First sighting of a named stream opens it (query or update),
            # so follow-up requests may carry just the name and a delta —
            # journaled first so a crash cannot forget an open stream.
            self._open_stream(stream, program, database)
        check = route == "check" or payload.get("op") == "check"
        update = not check and (route == "update" or is_update_request(payload))
        adaptive = not check and not update and (
            route == "sample" or bool(payload.get("adaptive"))
        )
        if check:
            forwarded = self._forwarded(payload, program, database)
            forwarded.pop("stream", None)
            forwarded["op"] = "check"
            return await self.router.submit(shard, forwarded)
        if update:
            return await self._handle_update(payload, program, database, shard)
        if adaptive:
            forwarded = self._forwarded(payload, program, database)
            forwarded["adaptive"] = True
            return await self.router.submit(shard, forwarded)
        if route == "batch":
            forwarded = self._forwarded(payload, program, database)
            return await self.router.submit(shard, forwarded)
        specs = request_queries(payload)
        validate_queries(specs)
        results = await self.batcher.submit(
            shard, program, database, specs, payload.get("slice")
        )
        return {"ok": True, "results": results}

    @staticmethod
    def _forwarded(payload: dict, program: str, database: str) -> dict:
        """A worker-bound copy of the request with inline sources only."""
        forwarded = dict(payload)
        forwarded["program"] = program
        forwarded["database"] = database
        forwarded.pop("program_path", None)
        forwarded.pop("database_path", None)
        return forwarded

    def _open_stream(self, stream: str, program: str, database: str) -> None:
        """Open a named stream: journal its sources (when durable), register it."""
        if self.journal is not None:
            self.journal.record_open(stream, program, database)
        self.streams.record(stream, program, database)

    async def _handle_update(
        self, payload: dict, program: str, database: str, shard: int
    ) -> dict:
        """One update: idempotency replay, worker apply, journal, registry.

        Write order is the durability contract (see
        :mod:`repro.server.journal`): worker apply → journal append →
        stream registry → idempotency record → client ack.  Any failure
        before the ack leaves the registry at the pre-delta state and the
        client retries; set-semantics deltas plus log-hash dedup make the
        retry exactly-once in effect.
        """
        idempotency_key = payload.get("idempotency_key")
        if idempotency_key is not None and not isinstance(idempotency_key, str):
            raise RequestError("'idempotency_key' must be a string")
        if idempotency_key:
            cached = self._idempotency.get(idempotency_key)
            if cached is not None:
                self._idempotency.move_to_end(idempotency_key)
                response = dict(cached)
                response["replayed"] = True
                return response
        forwarded = self._forwarded(payload, program, database)
        forwarded.pop("stream", None)
        forwarded.pop("idempotency_key", None)
        forwarded["op"] = "update"
        response = await self._submit_update(shard, forwarded)
        if response.get("ok"):
            stream = payload.get("stream")
            database_after = response.get("database", "")
            if isinstance(stream, str) and stream:
                if self.journal is not None:
                    self.journal.record_delta(
                        stream, forwarded.get("delta") or {}, database_after=database_after
                    )
                self.streams.record(stream, program, database_after)
            self._record_update(response.get("update") or {})
            if idempotency_key:
                self._idempotency[idempotency_key] = {
                    key: value for key, value in response.items() if key != "id"
                }
                if len(self._idempotency) > self._idempotency_limit:
                    self._idempotency.popitem(last=False)
        return response

    async def _submit_update(self, shard: int, forwarded: dict) -> dict:
        """Forward one update to its shard, retrying once across a worker crash.

        Safe because forwarded updates are fully specified (inline program,
        database and delta — never a stream reference): re-answering on the
        respawned worker recomputes the same post-delta state, just from a
        cold cache.
        """
        try:
            return await self.router.submit(shard, forwarded)
        except WorkerCrashed:
            self.metrics.inc("gdatalog_rejected_total", {"reason": "worker_crashed_retried"})
            return await self.router.submit(shard, forwarded)

    def _record_update(self, report: Mapping[str, Any]) -> None:
        """Roll one update report into the streaming-update metrics."""
        invalidated = int(report.get("invalidated_subtrees", 0) or 0)
        reused = int(report.get("reused_subtrees", 0) or 0)
        self.metrics.inc("gdatalog_updates_applied_total")
        # Zero-amount increments still register the series, so all three
        # counters appear on /metrics from the first applied update.
        self.metrics.inc("gdatalog_subtrees_invalidated_total", amount=invalidated)
        self.metrics.inc("gdatalog_subtrees_reused_total", amount=reused)
        total_invalidated = self.metrics.counter_value("gdatalog_subtrees_invalidated_total")
        total_reused = self.metrics.counter_value("gdatalog_subtrees_reused_total")
        total = total_invalidated + total_reused
        self.metrics.set_gauge(
            "gdatalog_chase_reuse_ratio", total_reused / total if total else 0.0
        )

    # -- metrics -------------------------------------------------------------------

    async def _render_metrics(self) -> bytes:
        """Prometheus text, including live per-shard worker snapshots."""
        snapshots = await self.router.shard_stats(timeout=2.0)
        for shard, snapshot in enumerate(snapshots):
            labels = {"shard": str(shard)}
            self.metrics.set_gauge("gdatalog_shard_up", 0 if snapshot is None else 1, labels)
            self.metrics.set_gauge(
                "gdatalog_worker_respawns_total", self.router.respawns[shard], labels
            )
            if snapshot is None:
                continue
            self.metrics.set_gauge(
                "gdatalog_shard_cache_entries", snapshot.get("cache_entries", 0), labels
            )
            for counter, value in snapshot.get("service", {}).items():
                self.metrics.set_gauge(
                    "gdatalog_service_cache", value, {"shard": str(shard), "counter": counter}
                )
            for counter, value in snapshot.get("join", {}).items():
                self.metrics.set_gauge(
                    "gdatalog_join_counters", value, {"shard": str(shard), "counter": counter}
                )
        if self.journal is not None:
            stats = self.journal.stats()
            self.metrics.set_counter(
                "gdatalog_journal_records_total", stats["records_appended"]
            )
            self.metrics.set_counter(
                "gdatalog_journal_truncated_total", stats["truncations"]
            )
            self.metrics.set_counter("gdatalog_recoveries_total", stats["recoveries"])
        # Faults fired in this process plus every live worker's count.  A
        # killed worker takes its tally with it — the metric undercounts by
        # exactly the fault that killed it, which the respawn counter shows.
        faults_total = faults.FAULTS.injected_total
        for snapshot in snapshots:
            if snapshot is not None:
                faults_total += sum(snapshot.get("faults", {}).values())
        if faults_total or faults.FAULTS.active:
            self.metrics.set_counter("gdatalog_faults_injected_total", faults_total)
        return self.metrics.render().encode("utf-8")

    # -- websocket -----------------------------------------------------------------

    async def _websocket_session(
        self, request: _HttpRequest, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        key = request.header("sec-websocket-key")
        if not key:
            writer.write(
                _response_bytes(
                    400,
                    json.dumps(error_response("missing Sec-WebSocket-Key")).encode("utf-8"),
                    keep_alive=False,
                )
            )
            await writer.drain()
            return
        accept = base64.b64encode(
            hashlib.sha1((key + _WS_GUID).encode("latin-1")).digest()
        ).decode("latin-1")
        writer.write(
            (
                "HTTP/1.1 101 Switching Protocols\r\n"
                "Upgrade: websocket\r\n"
                "Connection: Upgrade\r\n"
                f"Sec-WebSocket-Accept: {accept}\r\n\r\n"
            ).encode("latin-1")
        )
        await writer.drain()
        client = self._client_identity(request, writer)
        fragments: list[bytes] = []
        while True:
            try:
                frame = await _read_ws_frame(reader, self.config.max_body_bytes)
            except RequestError:
                writer.write(_ws_frame(0x8, (1009).to_bytes(2, "big")))
                await writer.drain()
                return
            if frame is None:
                return
            opcode, fin, payload = frame
            if opcode == 0x8:  # close: echo and finish
                writer.write(_ws_frame(0x8, payload[:2]))
                await writer.drain()
                return
            if opcode == 0x9:  # ping → pong
                writer.write(_ws_frame(0xA, payload))
                await writer.drain()
                continue
            if opcode in (0x1, 0x2, 0x0):
                fragments.append(payload)
                if not fin:
                    continue
                message = b"".join(fragments)
                fragments = []
                response = await self._serve_ws_message(message, client)
                writer.write(_ws_frame(0x1, json.dumps(response).encode("utf-8")))
                await writer.drain()

    async def _serve_ws_message(self, message: bytes, client: str) -> dict:
        """One WebSocket text frame = one protocol request (id echoed)."""
        started = time.monotonic()
        try:
            payload = json.loads(message.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            status, response = 400, error_response(f"invalid JSON request: {error}")
        else:
            status, response, _ = await self._serve_payload(payload, client, "ws")
            # WebSockets carry no HTTP status line; embed the admission
            # verdict so clients can back off exactly like HTTP ones.
            if status != 200:
                response.setdefault("status", status)
        self.metrics.inc("gdatalog_requests_total", {"route": "ws", "status": str(status)})
        self.metrics.observe("gdatalog_request_seconds", time.monotonic() - started, {"route": "ws"})
        return response


async def serve_http(config: ServerConfig) -> None:
    """Run an :class:`InferenceServer` until SIGTERM/SIGINT (the CLI entry)."""
    server = InferenceServer(config)
    await server.run()
