"""Prometheus-text-format metrics for the inference server.

A tiny, dependency-free subset of the Prometheus client model: labelled
counters, labelled gauges, and fixed-bucket cumulative histograms, rendered
in the text exposition format by :meth:`MetricsRegistry.render`.  The
registry is lock-guarded — the asyncio event loop observes latencies while
shard reader threads and the ``/metrics`` renderer read concurrently.

The server publishes, per scrape:

* ``gdatalog_requests_total{route,status}`` and
  ``gdatalog_request_seconds{route}`` latency histograms;
* ``gdatalog_rejected_total{reason}`` admission-control rejections;
* ``gdatalog_microbatch_*`` coalescing volumes;
* per-shard service-cache counters (hits/misses/slice/component/evictions,
  from :meth:`ServiceStats.snapshot`), join-engine ``JOIN_STATS`` counters,
  and worker respawn counts — gathered live from the shard workers.
"""

from __future__ import annotations

import math
import threading
from typing import Iterable, Mapping

__all__ = ["Histogram", "MetricsRegistry", "LATENCY_BUCKETS"]

#: Request-latency bucket upper bounds, in seconds (log-ish spacing from
#: 1 ms to 10 s; +Inf is implicit).
LATENCY_BUCKETS: tuple[float, ...] = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value) == int(value):
        return str(int(value))
    return repr(float(value))


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_labels(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label(str(value))}"' for name, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Histogram:
    """A cumulative fixed-bucket histogram (thread-safe).

    Tracks per-bucket counts plus ``sum``/``count``, and can report
    quantiles (bucket-upper-bound approximation) for human-facing summaries
    like the load driver's p50/p99 table.
    """

    def __init__(self, buckets: Iterable[float] = LATENCY_BUCKETS):
        self.buckets: tuple[float, ...] = tuple(sorted(buckets))
        self._counts = [0] * (len(self.buckets) + 1)  # +Inf is the last slot
        self.sum = 0.0
        self.count = 0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            slot = len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    slot = index
                    break
            self._counts[slot] += 1
            self.sum += value
            self.count += 1

    def snapshot(self) -> tuple[list[int], float, int]:
        """(per-bucket counts, sum, count) under the lock."""
        with self._lock:
            return list(self._counts), self.sum, self.count

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper bound of the bucket holding rank q.

        Values beyond the last finite bucket report that bound (the text
        format has no better answer for the +Inf bucket either).
        """
        counts, _, total = self.snapshot()
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for index, bound in enumerate(self.buckets):
            cumulative += counts[index]
            if cumulative >= rank:
                return bound
        return self.buckets[-1]


class MetricsRegistry:
    """Named counters, gauges and histograms, rendered as Prometheus text."""

    def __init__(self, namespace: str = "gdatalog"):
        self.namespace = namespace
        self._lock = threading.Lock()
        self._counters: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._gauges: dict[str, dict[tuple[tuple[str, str], ...], float]] = {}
        self._histograms: dict[str, dict[tuple[tuple[str, str], ...], Histogram]] = {}
        self._help: dict[str, str] = {}

    # -- updates -------------------------------------------------------------------

    @staticmethod
    def _key(labels: Mapping[str, str] | None) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((str(k), str(v)) for k, v in (labels or {}).items()))

    def describe(self, name: str, help_text: str) -> None:
        with self._lock:
            self._help[name] = help_text

    def inc(self, name: str, labels: Mapping[str, str] | None = None, amount: float = 1) -> None:
        with self._lock:
            series = self._counters.setdefault(name, {})
            key = self._key(labels)
            series[key] = series.get(key, 0) + amount

    def set_gauge(self, name: str, value: float, labels: Mapping[str, str] | None = None) -> None:
        with self._lock:
            self._gauges.setdefault(name, {})[self._key(labels)] = value

    def set_counter(self, name: str, value: float, labels: Mapping[str, str] | None = None) -> None:
        """Overwrite a counter series with an externally-tracked cumulative total.

        For monotone totals owned elsewhere (the journal's append/truncate
        counts, the fault injector's fired count): the owner counts, the
        registry only renders — scraping must not race an owner that keeps
        its own lock.
        """
        with self._lock:
            self._counters.setdefault(name, {})[self._key(labels)] = value

    def histogram(self, name: str, labels: Mapping[str, str] | None = None) -> Histogram:
        """The (created-on-first-use) histogram for a label set."""
        with self._lock:
            series = self._histograms.setdefault(name, {})
            key = self._key(labels)
            if key not in series:
                series[key] = Histogram()
            return series[key]

    def observe(self, name: str, value: float, labels: Mapping[str, str] | None = None) -> None:
        self.histogram(name, labels).observe(value)

    def counter_value(self, name: str, labels: Mapping[str, str] | None = None) -> float:
        with self._lock:
            return self._counters.get(name, {}).get(self._key(labels), 0)

    # -- rendering -----------------------------------------------------------------

    def render(self) -> str:
        """The registry in the Prometheus text exposition format."""
        with self._lock:
            counters = {name: dict(series) for name, series in self._counters.items()}
            gauges = {name: dict(series) for name, series in self._gauges.items()}
            histograms = {
                name: dict(series) for name, series in self._histograms.items()
            }
            help_texts = dict(self._help)
        lines: list[str] = []

        def emit_header(name: str, kind: str) -> None:
            if name in help_texts:
                lines.append(f"# HELP {name} {help_texts[name]}")
            lines.append(f"# TYPE {name} {kind}")

        for name in sorted(counters):
            emit_header(name, "counter")
            for key, value in sorted(counters[name].items()):
                lines.append(f"{name}{_format_labels(dict(key))} {_format_value(value)}")
        for name in sorted(gauges):
            emit_header(name, "gauge")
            for key, value in sorted(gauges[name].items()):
                lines.append(f"{name}{_format_labels(dict(key))} {_format_value(value)}")
        for name in sorted(histograms):
            emit_header(name, "histogram")
            for key, histogram in sorted(histograms[name].items()):
                labels = dict(key)
                counts, total_sum, total_count = histogram.snapshot()
                cumulative = 0
                for index, bound in enumerate(histogram.buckets):
                    cumulative += counts[index]
                    bucket_labels = dict(labels)
                    bucket_labels["le"] = _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels(bucket_labels)} {cumulative}"
                    )
                bucket_labels = dict(labels)
                bucket_labels["le"] = "+Inf"
                lines.append(f"{name}_bucket{_format_labels(bucket_labels)} {total_count}")
                lines.append(f"{name}_sum{_format_labels(labels)} {repr(total_sum)}")
                lines.append(f"{name}_count{_format_labels(labels)} {total_count}")
        return "\n".join(lines) + "\n"
