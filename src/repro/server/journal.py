"""Crash-consistent write-ahead journal for named evidence streams.

``gdatalog serve --http --journal DIR`` must survive ``kill -9``: every
acknowledged update to a named stream is durable, and a restarted server
replays the journal to **bit-identical** post-delta state — the same
canonical database text, hence the same cache keys and the same seeded
estimates an uninterrupted server would produce.

Format (single file ``streams.wal`` under the journal directory)::

    MAGIC ("GDWAL1\\n")
    record*        where record = >I payload-length | >I CRC32(payload) | payload

The payload is canonical JSON (sorted keys, no whitespace) of one of:

* ``{"kind": "open", "stream", "program", "database"}`` — a stream's
  canonical sources at open (or re-open with changed sources);
* ``{"kind": "delta", "stream", "delta": {...,"log_hash"}}`` — one
  applied :class:`~repro.logic.deltas.DbDelta` in its hash-carrying
  journal form (:meth:`DbDelta.journal_record`), verified on replay;
* ``{"kind": "snapshot", ...}`` — an ``open`` plus the stream's update
  count, written by compaction.

Durability policy and invariants:

* **Write order**: the server journals an update *after* the shard worker
  applied it but *before* acknowledging the client.  A crash between
  apply and journal loses nothing the client was told succeeded; the
  client retries and the set-semantics delta (plus ``log_hash`` dedup
  here and idempotency keys upstream) makes the retry a no-op.
* **Torn tails**: a crash mid-append leaves a short or CRC-broken final
  record.  :meth:`StreamJournal` scans on open and truncates the file at
  the last fully-verified record — the journal is always a *prefix* of
  acknowledged history, never a corrupted suffix.
* **fsync policy**: ``always`` (fsync per append — the default and the
  only policy that survives power loss), ``batch`` (fsync every
  :data:`BATCH_SYNC_EVERY` appends — survives process crash, bounded
  loss on power failure) or ``never`` (the OS decides).
* **Compaction**: when the file exceeds ``max_bytes`` the journal
  rewrites itself as one snapshot record per live stream into a temp
  file and atomically ``os.replace``\\ s it — readers never observe a
  half-compacted journal.
* **Failed is failed**: any append error (including injected torn/fsync
  faults) marks the journal failed; further appends raise
  :class:`JournalError` (surfaced as a retryable 503) until a fresh
  :class:`StreamJournal` re-opens and truncates.  A journal that might
  have lost a write must not keep acknowledging new ones.

Single-writer: one server process owns a journal directory at a time.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib
from dataclasses import dataclass, replace
from pathlib import Path
from typing import IO, Mapping

from repro.exceptions import ReproError, ValidationError
from repro.logic.database import Database
from repro.logic.deltas import DbDelta
from repro.logic.parser import parse_database
from repro.server import faults

__all__ = [
    "JournalError",
    "RecoveredStream",
    "StreamJournal",
    "FSYNC_POLICIES",
    "DEFAULT_MAX_BYTES",
]

MAGIC = b"GDWAL1\n"
_HEADER = struct.Struct(">II")
#: Accepted ``--journal-fsync`` values, strongest first.
FSYNC_POLICIES = ("always", "batch", "never")
#: Appends between fsyncs under the ``batch`` policy.
BATCH_SYNC_EVERY = 16
DEFAULT_MAX_BYTES = 64 * 1024 * 1024
#: Replay refuses records claiming to be longer than this — a corrupt
#: length field must not allocate gigabytes before the CRC check.
_MAX_RECORD_BYTES = 256 * 1024 * 1024


class JournalError(ReproError):
    """A journal append/open failure: the write is NOT durable; retry applies."""


@dataclass
class RecoveredStream:
    """One stream's journaled state: canonical sources plus update history."""

    name: str
    program: str
    database: str
    updates: int = 0
    last_delta_hash: str | None = None


def _canonical_post_delta(database_source: str, delta: DbDelta) -> str:
    """The canonical post-delta database text, bit-identical to ``update()``.

    Delegates to :meth:`InferenceService.canonical_database_source` (lazy
    import — the journal must not drag the engine stack into every
    importer) so replayed state and served state can never drift apart.
    """
    from repro.runtime.service import InferenceService

    database = parse_database(database_source) if database_source.strip() else Database()
    return InferenceService.canonical_database_source(delta.apply(database))


class StreamJournal:
    """The append/replay engine over one ``streams.wal`` file."""

    def __init__(
        self,
        directory: str | Path,
        fsync: str = "always",
        max_bytes: int = DEFAULT_MAX_BYTES,
    ):
        if fsync not in FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r} (expected one of {', '.join(FSYNC_POLICIES)})"
            )
        if max_bytes < 4096:
            raise JournalError(f"journal max_bytes must be at least 4096, got {max_bytes}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / "streams.wal"
        self.fsync_policy = fsync
        self.max_bytes = int(max_bytes)
        self._lock = threading.RLock()
        self._streams: dict[str, RecoveredStream] = {}
        self._file: IO[bytes] | None = None
        self._size = 0
        self._appends_since_sync = 0
        self._failed = False
        # Counters (externally owned; /metrics renders them via set_counter).
        self.records_appended = 0
        self.records_replayed = 0
        self.truncations = 0
        self.recoveries = 0
        self.compactions = 0
        self.dedup_skipped = 0
        self._open_and_recover()

    # -- open / recovery -----------------------------------------------------------

    def _open_and_recover(self) -> None:
        """Scan the file, truncate any torn tail, materialize stream states."""
        existed = self.path.exists()
        if existed:
            try:
                data = self.path.read_bytes()
            except OSError as error:
                raise JournalError(f"cannot read journal {self.path}: {error}") from error
            if not data.startswith(MAGIC):
                # Refuse to truncate a file we did not write: silently
                # destroying a foreign file is worse than failing to boot.
                raise JournalError(f"{self.path} is not a gdatalog journal (bad magic)")
            offset = len(MAGIC)
            while offset < len(data):
                if offset + _HEADER.size > len(data):
                    break  # torn header
                length, crc = _HEADER.unpack_from(data, offset)
                start = offset + _HEADER.size
                end = start + length
                if length > _MAX_RECORD_BYTES or end > len(data):
                    break  # torn or insane payload
                payload = data[start:end]
                if zlib.crc32(payload) != crc:
                    break  # bit rot / injected corruption
                try:
                    record = json.loads(payload.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError):
                    break
                if not self._apply_record(record):
                    break  # semantically corrupt (hash mismatch, unknown kind)
                self.records_replayed += 1
                offset = end
            if offset < len(data):
                try:
                    with open(self.path, "r+b") as handle:
                        handle.truncate(offset)
                        handle.flush()
                        if self.fsync_policy != "never":
                            os.fsync(handle.fileno())
                except OSError as error:
                    raise JournalError(
                        f"cannot truncate torn journal tail in {self.path}: {error}"
                    ) from error
                self.truncations += 1
            self._size = offset
            if self.records_replayed:
                self.recoveries = len(self._streams)
        try:
            self._file = open(self.path, "ab")
            if not existed:
                self._file.write(MAGIC)
                self._file.flush()
                if self.fsync_policy != "never":
                    os.fsync(self._file.fileno())
                self._size = len(MAGIC)
        except OSError as error:
            raise JournalError(f"cannot open journal {self.path}: {error}") from error

    def _apply_record(self, record: object) -> bool:
        """Fold one replayed record into the stream states; ``False`` = corrupt."""
        if not isinstance(record, Mapping):
            return False
        kind = record.get("kind")
        stream = record.get("stream")
        if not isinstance(stream, str) or not stream:
            return False
        if kind in ("open", "snapshot"):
            program = record.get("program")
            database = record.get("database")
            if not isinstance(program, str) or not isinstance(database, str):
                return False
            updates = record.get("updates", 0)
            last_hash = record.get("last_delta_hash")
            if not isinstance(updates, int) or updates < 0:
                return False
            if last_hash is not None and not isinstance(last_hash, str):
                return False
            self._streams[stream] = RecoveredStream(
                name=stream,
                program=program,
                database=database,
                updates=updates,
                last_delta_hash=last_hash,
            )
            return True
        if kind == "delta":
            state = self._streams.get(stream)
            if state is None:
                return False  # a delta for an unopened stream cannot be ours
            try:
                delta = DbDelta.from_journal_record(record.get("delta"))
                state.database = _canonical_post_delta(state.database, delta)
            except (ValidationError, ReproError, TypeError, KeyError):
                return False
            state.updates += 1
            state.last_delta_hash = delta.log_hash()
            return True
        return False

    def recovered_streams(self) -> list[RecoveredStream]:
        """Copies of every live stream state, sorted by name (boot seeding)."""
        with self._lock:
            return [replace(self._streams[name]) for name in sorted(self._streams)]

    # -- appends -------------------------------------------------------------------

    def record_open(self, stream: str, program: str, database: str) -> bool:
        """Journal a stream's sources at open; ``False`` when already current."""
        with self._lock:
            state = self._streams.get(stream)
            if state is not None and state.program == program and state.database == database:
                self.dedup_skipped += 1
                return False
            self._append({"kind": "open", "stream": stream, "program": program, "database": database})
            self._streams[stream] = RecoveredStream(name=stream, program=program, database=database)
            self._maybe_compact()
            return True

    def record_delta(
        self,
        stream: str,
        delta: DbDelta | Mapping[str, object],
        database_after: str | None = None,
    ) -> bool:
        """Journal one applied delta; ``False`` when deduplicated by log hash.

        *database_after* (the worker's canonical post-delta text) is
        cross-checked against the journal's own replay of the delta: a
        divergence means recovery would lie, so it fails loudly instead of
        journaling state that cannot be reproduced.
        """
        with self._lock:
            state = self._streams.get(stream)
            if state is None:
                raise JournalError(
                    f"cannot journal a delta for unopened stream {stream!r} "
                    "(record_open must precede record_delta)"
                )
            if not isinstance(delta, DbDelta):
                delta = DbDelta.from_spec(delta)
            log_hash = delta.log_hash()
            post = _canonical_post_delta(state.database, delta)
            if database_after is not None and post != database_after:
                raise JournalError(
                    f"journal replay for stream {stream!r} diverges from the served "
                    "post-delta state; refusing to journal an unrecoverable record"
                )
            if state.last_delta_hash == log_hash and state.database == post:
                # The immediately-repeated delta (client retry after a lost
                # ack) is a no-op by set semantics: skip the duplicate record.
                self.dedup_skipped += 1
                return False
            self._append({"kind": "delta", "stream": stream, "delta": delta.journal_record()})
            state.database = post
            state.updates += 1
            state.last_delta_hash = log_hash
            self._maybe_compact()
            return True

    def _append(self, record: Mapping[str, object]) -> None:
        """Frame, checksum and write one record under the active fsync policy."""
        if self._failed:
            raise JournalError(
                "journal is failed after an earlier write error; restart the "
                "server (journal re-open truncates and recovers) before new updates"
            )
        if self._file is None:
            raise JournalError("journal is closed")
        payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
        header = _HEADER.pack(len(payload), zlib.crc32(payload))
        if faults.should_fire("journal.corrupt") is not None:
            # Silent on-disk corruption: the CRC was computed over the clean
            # payload, so the damage surfaces only at the next open's scan.
            payload = payload[:-1] + bytes([payload[-1] ^ 0xFF])
        try:
            if faults.should_fire("journal.torn") is not None:
                # Simulated crash mid-append: half a payload hits the disk
                # and this journal never writes again (the process "died").
                self._file.write(header + payload[: max(1, len(payload) // 2)])
                self._file.flush()
                self._failed = True
                raise JournalError("injected torn append (simulated crash mid-write)")
            self._file.write(header + payload)
            self._file.flush()
            self._sync()
        except OSError as error:
            self._failed = True
            raise JournalError(f"journal append failed: {error}") from error
        self._size += _HEADER.size + len(payload)
        self.records_appended += 1

    def _sync(self) -> None:
        """Apply the fsync policy after one append (fault-injectable)."""
        if self._file is None or self.fsync_policy == "never":
            return
        self._appends_since_sync += 1
        if self.fsync_policy == "batch" and self._appends_since_sync < BATCH_SYNC_EVERY:
            return
        faults.maybe_fail("journal.fsync", lambda: OSError("injected fsync failure"))
        os.fsync(self._file.fileno())
        self._appends_since_sync = 0

    # -- compaction ----------------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Rewrite as snapshots when past ``max_bytes`` (atomic rename)."""
        if self._size <= self.max_bytes or self._file is None:
            return
        buffer = bytearray(MAGIC)
        for name in sorted(self._streams):
            state = self._streams[name]
            record: dict[str, object] = {
                "kind": "snapshot",
                "stream": name,
                "program": state.program,
                "database": state.database,
                "updates": state.updates,
                "last_delta_hash": state.last_delta_hash,
            }
            payload = json.dumps(record, sort_keys=True, separators=(",", ":")).encode("utf-8")
            buffer += _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        tmp_path = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(bytes(buffer))
                handle.flush()
                if self.fsync_policy != "never":
                    os.fsync(handle.fileno())
            self._file.close()
            os.replace(tmp_path, self.path)
            self._fsync_directory()
            self._file = open(self.path, "ab")
        except OSError as error:
            self._failed = True
            raise JournalError(f"journal compaction failed: {error}") from error
        self._size = len(buffer)
        self._appends_since_sync = 0
        self.compactions += 1

    def _fsync_directory(self) -> None:
        """Best-effort directory fsync so the rename itself is durable."""
        if self.fsync_policy == "never":
            return
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform-dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform-dependent
            return
        finally:
            os.close(fd)

    # -- introspection / lifecycle -------------------------------------------------

    @property
    def failed(self) -> bool:
        return self._failed

    def stats(self) -> dict[str, int]:
        """Counter snapshot for ``/metrics`` and tests."""
        with self._lock:
            return {
                "records_appended": self.records_appended,
                "records_replayed": self.records_replayed,
                "truncations": self.truncations,
                "recoveries": self.recoveries,
                "compactions": self.compactions,
                "dedup_skipped": self.dedup_skipped,
                "streams": len(self._streams),
                "size_bytes": self._size,
            }

    def close(self) -> None:
        """Flush, fsync (per policy) and close; idempotent."""
        with self._lock:
            if self._file is None:
                return
            try:
                self._file.flush()
                if self.fsync_policy != "never" and not self._failed:
                    os.fsync(self._file.fileno())
            except OSError:  # pragma: no cover - nothing actionable at close
                self._failed = True
            finally:
                try:
                    self._file.close()
                finally:
                    self._file = None
