"""Built-in discrete parameterized distributions.

All distributions follow the convention of the paper's appendix (the biased
die example): an invalid parameter tuple does not raise, it collapses the
distribution onto a designated *fallback outcome* (``0`` unless stated
otherwise) with probability 1.  This keeps the semantics total, exactly as
the paper's ``Die⟨p̄⟩`` does.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.distributions.base import Outcome, ParameterizedDistribution

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.rng import Generator

__all__ = [
    "FlipDistribution",
    "CategoricalDistribution",
    "DieDistribution",
    "UniformIntDistribution",
    "BinomialDistribution",
    "GeometricDistribution",
    "PoissonDistribution",
    "ConstantDistribution",
]

_EPSILON = 1e-12


class FlipDistribution(ParameterizedDistribution):
    """``Flip⟨p⟩``: 1 with probability ``p`` and 0 with probability ``1 - p``.

    This is the distribution used throughout the paper (network resilience,
    coin, dime/quarter examples).
    """

    name = "flip"
    parameter_dimension = 1

    def params_valid(self, params: Sequence[float]) -> bool:
        return len(params) == 1 and 0.0 <= params[0] <= 1.0

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        p = float(params[0])
        if outcome == 1:
            return p
        if outcome == 0:
            return 1.0 - p
        return 0.0

    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        if not self.params_valid(params):
            return [0]
        p = float(params[0])
        outcomes: list[Outcome] = []
        if 1.0 - p > _EPSILON:
            outcomes.append(0)
        if p > _EPSILON:
            outcomes.append(1)
        return outcomes

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return True


class CategoricalDistribution(ParameterizedDistribution):
    """``Categorical⟨p1, ..., pk⟩``: outcome ``i`` (1-based) with probability ``p_i``.

    If the weights do not sum to 1 (within tolerance) or any weight is
    negative, the distribution collapses to the fallback outcome 0 —
    mirroring the biased-die example in the paper's appendix.
    """

    name = "categorical"
    parameter_dimension = None  # variadic

    def params_valid(self, params: Sequence[float]) -> bool:
        if not params:
            return False
        if any(p < 0.0 for p in params):
            return False
        return math.isclose(sum(params), 1.0, abs_tol=1e-9)

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        if isinstance(outcome, bool) or not isinstance(outcome, int):
            return 0.0
        if 1 <= outcome <= len(params):
            return float(params[outcome - 1])
        return 0.0

    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        if not self.params_valid(params):
            return [0]
        return [i + 1 for i, p in enumerate(params) if p > _EPSILON]

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return True


class DieDistribution(CategoricalDistribution):
    """``Die⟨p1, ..., p6⟩``: the paper's appendix example of a biased die.

    Exactly a 6-ary categorical distribution with the fallback outcome 0 for
    incorrect parameter instantiations.
    """

    name = "die"
    parameter_dimension = 6

    def params_valid(self, params: Sequence[float]) -> bool:
        return len(params) == 6 and super().params_valid(params)


class UniformIntDistribution(ParameterizedDistribution):
    """``UniformInt⟨lo, hi⟩``: uniform over the integers ``lo..hi`` (inclusive)."""

    name = "uniform_int"
    parameter_dimension = 2

    def params_valid(self, params: Sequence[float]) -> bool:
        if len(params) != 2:
            return False
        lo, hi = params
        return float(lo).is_integer() and float(hi).is_integer() and lo <= hi

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        lo, hi = int(params[0]), int(params[1])
        if isinstance(outcome, bool) or not float(outcome).is_integer():
            return 0.0
        if lo <= int(outcome) <= hi:
            return 1.0 / (hi - lo + 1)
        return 0.0

    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        if not self.params_valid(params):
            return [0]
        return list(range(int(params[0]), int(params[1]) + 1))

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return True


class BinomialDistribution(ParameterizedDistribution):
    """``Binomial⟨n, p⟩``: number of successes in ``n`` independent ``p``-trials."""

    name = "binomial"
    parameter_dimension = 2

    def params_valid(self, params: Sequence[float]) -> bool:
        if len(params) != 2:
            return False
        n, p = params
        return float(n).is_integer() and n >= 0 and 0.0 <= p <= 1.0

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        n, p = int(params[0]), float(params[1])
        if isinstance(outcome, bool) or not float(outcome).is_integer():
            return 0.0
        k = int(outcome)
        if not 0 <= k <= n:
            return 0.0
        return float(math.comb(n, k) * (p**k) * ((1.0 - p) ** (n - k)))

    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        if not self.params_valid(params):
            return [0]
        n = int(params[0])
        return [k for k in range(n + 1) if self.pmf(params, k) > _EPSILON]

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return True


class GeometricDistribution(ParameterizedDistribution):
    """``Geometric⟨p⟩``: number of failures before the first success (support ``0, 1, 2, ...``)."""

    name = "geometric"
    parameter_dimension = 1

    def params_valid(self, params: Sequence[float]) -> bool:
        return len(params) == 1 and 0.0 < params[0] <= 1.0

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        p = float(params[0])
        if isinstance(outcome, bool) or not float(outcome).is_integer():
            return 0.0
        k = int(outcome)
        if k < 0:
            return 0.0
        return float(((1.0 - p) ** k) * p)

    def support(self, params: Sequence[float]) -> Iterator[Outcome]:
        if not self.params_valid(params):
            yield 0
            return
        if params[0] == 1.0:
            yield 0
            return
        k = 0
        while True:
            yield k
            k += 1

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return not self.params_valid(params) or params[0] == 1.0

    def sample(self, params: Sequence[float], rng: "Generator") -> Outcome:
        if not self.params_valid(params):
            return 0
        return int(rng.geometric(float(params[0])) - 1)


class PoissonDistribution(ParameterizedDistribution):
    """``Poisson⟨λ⟩``: Poisson-distributed non-negative integer counts."""

    name = "poisson"
    parameter_dimension = 1

    def params_valid(self, params: Sequence[float]) -> bool:
        return len(params) == 1 and params[0] > 0.0

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        lam = float(params[0])
        if isinstance(outcome, bool) or not float(outcome).is_integer():
            return 0.0
        k = int(outcome)
        if k < 0:
            return 0.0
        return float(math.exp(-lam) * lam**k / math.factorial(k))

    def support(self, params: Sequence[float]) -> Iterator[Outcome]:
        if not self.params_valid(params):
            yield 0
            return
        k = 0
        while True:
            yield k
            k += 1

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return not self.params_valid(params)

    def sample(self, params: Sequence[float], rng: "Generator") -> Outcome:
        if not self.params_valid(params):
            return 0
        return int(rng.poisson(float(params[0])))


class ConstantDistribution(ParameterizedDistribution):
    """``Constant⟨c⟩``: the Dirac distribution placing all mass on ``c``.

    Useful for deterministic value invention and as a degenerate baseline in
    tests and ablations.
    """

    name = "constant"
    parameter_dimension = 1

    def params_valid(self, params: Sequence[float]) -> bool:
        return len(params) == 1

    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        if not self.params_valid(params):
            return 1.0 if outcome == 0 else 0.0
        value = params[0]
        return 1.0 if float(outcome) == float(value) else 0.0

    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        if not self.params_valid(params):
            return [0]
        value = params[0]
        return [int(value) if float(value).is_integer() else float(value)]

    def has_finite_support(self, params: Sequence[float]) -> bool:
        return True
