"""Registry mapping Δ-term distribution names to distribution objects.

A :class:`DistributionRegistry` plays the role of the finite set Δ fixed in
Section 3 of the paper.  Programs carry a registry so that Δ-terms such as
``flip<0.1>[X, Y]`` can be resolved to concrete pmf / support / sampling
implementations.
"""

from __future__ import annotations

from typing import Iterator

from repro.distributions.base import ParameterizedDistribution
from repro.distributions.discrete import (
    BinomialDistribution,
    CategoricalDistribution,
    ConstantDistribution,
    DieDistribution,
    FlipDistribution,
    GeometricDistribution,
    PoissonDistribution,
    UniformIntDistribution,
)
from repro.exceptions import DistributionError

__all__ = ["DistributionRegistry", "default_registry"]


class DistributionRegistry:
    """A named collection of parameterized distributions (the set Δ)."""

    def __init__(self, distributions: list[ParameterizedDistribution] | None = None):
        self._distributions: dict[str, ParameterizedDistribution] = {}
        for distribution in distributions or []:
            self.register(distribution)

    def register(self, distribution: ParameterizedDistribution) -> "DistributionRegistry":
        """Register a distribution under its canonical name (case-insensitive)."""
        key = distribution.name.lower()
        if key in self._distributions and type(self._distributions[key]) is not type(distribution):
            raise DistributionError(f"distribution name {key!r} already registered")
        self._distributions[key] = distribution
        return self

    def knows(self, name: str) -> bool:
        return name.lower() in self._distributions

    def get(self, name: str) -> ParameterizedDistribution:
        try:
            return self._distributions[name.lower()]
        except KeyError as exc:
            raise DistributionError(
                f"unknown distribution {name!r}; known: {sorted(self._distributions)}"
            ) from exc

    def names(self) -> list[str]:
        return sorted(self._distributions)

    def __iter__(self) -> Iterator[ParameterizedDistribution]:
        return iter(self._distributions.values())

    def __len__(self) -> int:
        return len(self._distributions)

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.knows(name)

    def copy(self) -> "DistributionRegistry":
        registry = DistributionRegistry()
        registry._distributions = dict(self._distributions)
        return registry


def default_registry() -> DistributionRegistry:
    """A fresh registry containing every built-in distribution."""
    return DistributionRegistry(
        [
            FlipDistribution(),
            CategoricalDistribution(),
            DieDistribution(),
            UniformIntDistribution(),
            BinomialDistribution(),
            GeometricDistribution(),
            PoissonDistribution(),
            ConstantDistribution(),
        ]
    )
