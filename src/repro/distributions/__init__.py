"""Parameterized discrete distributions (the set Δ) and their registry."""

from repro.distributions.base import Outcome, ParameterizedDistribution
from repro.distributions.discrete import (
    BinomialDistribution,
    CategoricalDistribution,
    ConstantDistribution,
    DieDistribution,
    FlipDistribution,
    GeometricDistribution,
    PoissonDistribution,
    UniformIntDistribution,
)
from repro.distributions.registry import DistributionRegistry, default_registry

__all__ = [
    "Outcome",
    "ParameterizedDistribution",
    "BinomialDistribution",
    "CategoricalDistribution",
    "ConstantDistribution",
    "DieDistribution",
    "FlipDistribution",
    "GeometricDistribution",
    "PoissonDistribution",
    "UniformIntDistribution",
    "DistributionRegistry",
    "default_registry",
]
