"""Parameterized numerical discrete probability distributions (the set Δ).

Following Section 2 of the paper, a parameterized probability distribution
``δ`` of parameter dimension ``k`` maps every parameter tuple ``p̄ ∈ R^k`` to
a discrete probability distribution ``δ⟨p̄⟩`` over a sample space ``Ω ⊆ R``.

A :class:`ParameterizedDistribution` exposes exactly the three operations the
semantics needs:

* ``pmf(params, outcome)`` — the probability ``δ⟨p̄⟩(o)``;
* ``support(params)`` — the outcomes with positive probability, in a
  deterministic order (needed for exhaustive chase enumeration).  Infinite
  supports are exposed lazily and flagged via :meth:`has_finite_support`;
* ``sample(params, rng)`` — draw an outcome (used by Monte-Carlo inference).

Outcomes are Python numbers (``int``/``float``/``bool``); the translation to
:class:`~repro.logic.terms.Constant` happens in the chase.

Mirroring the die example of the paper's appendix, invalid parameter tuples
do not raise during ``pmf``/``support``; instead each distribution declares a
``fallback_outcome`` (the appendix uses ``0``) that receives probability 1
when the parameters are invalid.  Construction-time validation is available
via :meth:`validate_params` for callers that prefer strictness.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.exceptions import DistributionError

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.rng import Generator

__all__ = ["Outcome", "ParameterizedDistribution"]

#: The numeric payload of a sampled value.
Outcome = int | float | bool


class ParameterizedDistribution(abc.ABC):
    """Abstract base class for the members of Δ."""

    #: Canonical lowercase name used in Δ-terms (``flip``, ``categorical``, ...).
    name: str = "distribution"
    #: Number of parameters the distribution expects; ``None`` means variadic.
    parameter_dimension: int | None = None
    #: Whether the distribution is discrete (continuous ones are future work).
    is_continuous: bool = False

    # -- interface -----------------------------------------------------------

    @abc.abstractmethod
    def pmf(self, params: Sequence[float], outcome: Outcome) -> float:
        """The probability ``δ⟨p̄⟩(o)``; 0.0 for outcomes outside the support."""

    @abc.abstractmethod
    def support(self, params: Sequence[float]) -> Iterable[Outcome]:
        """The outcomes with positive probability, deterministically ordered.

        For infinite supports (e.g. Poisson) this is a lazy, monotone
        enumeration; callers must combine it with a mass tolerance.
        """

    @abc.abstractmethod
    def has_finite_support(self, params: Sequence[float]) -> bool:
        """Whether :meth:`support` terminates for these parameters."""

    def sample(self, params: Sequence[float], rng: "Generator") -> Outcome:
        """Draw one outcome according to ``δ⟨p̄⟩`` (default: inverse-CDF over support)."""
        target = float(rng.random())
        cumulative = 0.0
        last: Outcome | None = None
        for outcome in self.support(params):
            cumulative += self.pmf(params, outcome)
            last = outcome
            if target < cumulative:
                return outcome
        if last is None:
            raise DistributionError(f"{self.name}: empty support for parameters {list(params)}")
        return last

    # -- shared helpers -------------------------------------------------------

    def validate_params(self, params: Sequence[float]) -> None:
        """Raise :class:`DistributionError` on a malformed parameter tuple."""
        if self.parameter_dimension is not None and len(params) != self.parameter_dimension:
            raise DistributionError(
                f"{self.name} expects {self.parameter_dimension} parameter(s), got {len(params)}"
            )
        if not self.params_valid(params):
            raise DistributionError(f"{self.name}: invalid parameters {list(params)}")

    def params_valid(self, params: Sequence[float]) -> bool:
        """Whether the parameter tuple instantiates a proper distribution."""
        if self.parameter_dimension is not None and len(params) != self.parameter_dimension:
            return False
        return True

    def truncated_support(
        self, params: Sequence[float], mass_tolerance: float = 0.0, max_outcomes: int | None = None
    ) -> tuple[list[Outcome], float]:
        """A finite prefix of the support covering at least ``1 - mass_tolerance`` mass.

        Returns ``(outcomes, covered_mass)``.  For finite supports the whole
        support is returned regardless of the tolerance.
        """
        outcomes: list[Outcome] = []
        covered = 0.0
        finite = self.has_finite_support(params)
        for i, outcome in enumerate(self.support(params)):
            outcomes.append(outcome)
            covered += self.pmf(params, outcome)
            if not finite:
                if covered >= 1.0 - mass_tolerance:
                    break
                if max_outcomes is not None and i + 1 >= max_outcomes:
                    break
        return outcomes, min(covered, 1.0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"
