"""repro — Generative Datalog with Stable Negation (PODS 2023 reproduction).

A from-scratch implementation of generative Datalog¬[Δ]: a probabilistic
extension of Datalog with sampling Δ-terms in rule heads and negation as
failure under the stable model semantics.  The package provides

* a logical substrate (terms, atoms, rules, programs, databases, a parser),
* a stable-model engine (grounding, GL reduct, well-founded semantics,
  enumeration),
* parameterized discrete distributions,
* the GDatalog¬[Δ] core: translation to TGD¬, the simple and perfect
  grounders, the chase, exact output probability spaces and Monte-Carlo
  sampling,
* a PPDL layer (constraints and conditioning),
* baselines (BCKOV positive semantics, a ProbLog-style engine, credal
  probabilistic ASP), and
* workload generators and analysis helpers used by the benchmark harness.

Quickstart::

    from repro import GDatalogEngine

    PROGRAM = '''
    infected(Y, 1) :- seed(Y).
    infected(Y, flip<0.1>[X, Y]) :- infected(X, 1), connected(X, Y).
    uninfected(X) :- router(X), not infected(X, 1).
    :- uninfected(X), uninfected(Y), connected(X, Y).
    '''
    DATABASE = '''
    router(1). router(2). router(3).
    seed(1).
    connected(1, 2). connected(2, 1). connected(1, 3).
    connected(3, 1). connected(2, 3). connected(3, 2).
    '''
    engine = GDatalogEngine.from_source(PROGRAM, DATABASE)
    print(engine.probability_has_stable_model())   # ≈ 0.19 (Example 3.10)
"""

from repro.distributions import DistributionRegistry, ParameterizedDistribution, default_registry
from repro.gdatalog import (
    ChaseConfig,
    DeltaTerm,
    GDatalogEngine,
    GDatalogProgram,
    GDatalogRule,
    MonteCarloSampler,
    OutputSpace,
    PerfectGrounder,
    PossibleOutcome,
    SimpleGrounder,
    translate_program,
)
from repro.logic import (
    Atom,
    Constant,
    Database,
    DatalogProgram,
    Predicate,
    Rule,
    Variable,
    atom,
    fact,
    parse_database,
    parse_datalog_program,
    parse_gdatalog_program,
)
from repro.stable import StableModelSolver, stable_models

__version__ = "1.0.0"

__all__ = [
    "DistributionRegistry",
    "ParameterizedDistribution",
    "default_registry",
    "ChaseConfig",
    "DeltaTerm",
    "GDatalogEngine",
    "GDatalogProgram",
    "GDatalogRule",
    "MonteCarloSampler",
    "OutputSpace",
    "PerfectGrounder",
    "PossibleOutcome",
    "SimpleGrounder",
    "translate_program",
    "Atom",
    "Constant",
    "Database",
    "DatalogProgram",
    "Predicate",
    "Rule",
    "Variable",
    "atom",
    "fact",
    "parse_database",
    "parse_datalog_program",
    "parse_gdatalog_program",
    "StableModelSolver",
    "stable_models",
    "__version__",
]
