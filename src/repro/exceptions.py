"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses are used
where a caller may reasonably want to distinguish failure modes (parse
errors vs. semantic validation vs. solver limits).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SourceSpan:
    """A 1-based source position range attached to diagnostics and errors.

    ``line``/``column`` locate the first character of the offending
    construct; ``end_line``/``end_column`` (when known) locate the
    character *after* its last one.
    """

    line: int
    column: int
    end_line: int | None = None
    end_column: int | None = None

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"

    def as_dict(self) -> dict[str, int | None]:
        return {
            "line": self.line,
            "column": self.column,
            "end_line": self.end_line,
            "end_column": self.end_column,
        }


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Raised when the textual Datalog / GDatalog syntax cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)

    @property
    def span(self) -> SourceSpan | None:
        if self.line is None:
            return None
        return SourceSpan(self.line, self.column if self.column is not None else 1)


class ValidationError(ReproError, ValueError):
    """Raised when a rule or program violates a syntactic restriction.

    Examples: unsafe rules (a head or negative-body variable that does not
    occur in the positive body), Δ-terms in body position, unknown
    distribution names, or arity mismatches.

    Also derives from :class:`ValueError`: validation failures on
    user-input paths were historically raised as bare ``ValueError``, and
    the dual base keeps ``except ValueError`` call sites working while the
    structured hierarchy (and optional :class:`SourceSpan`) is adopted.
    """

    def __init__(self, message: str, span: SourceSpan | None = None):
        self.span = span
        super().__init__(message)

    def with_span(self, span: SourceSpan | None) -> "ValidationError":
        """A copy of this error carrying *span* (kept if already present)."""
        if self.span is not None or span is None:
            return self
        replacement = type(self)(str(self), span)
        replacement.__cause__ = self.__cause__
        return replacement


class StratificationError(ReproError):
    """Raised when stratified negation is required but the program is not stratified."""


class GroundingError(ReproError):
    """Raised when grounding a program fails (e.g. inconsistent AtR sets)."""


class SolverError(ReproError):
    """Raised when stable-model computation cannot proceed."""


class SolverLimitError(SolverError):
    """Raised when a configured search limit of the stable-model solver is exceeded."""


class ChaseLimitError(ReproError):
    """Raised when the chase exceeds its configured depth/outcome limits in strict mode."""


class InferenceError(ReproError):
    """Raised for invalid probabilistic queries (e.g. conditioning on a zero-probability event)."""


class DistributionError(ReproError):
    """Raised when a distribution is instantiated with invalid parameters."""
