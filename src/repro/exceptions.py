"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses are used
where a caller may reasonably want to distinguish failure modes (parse
errors vs. semantic validation vs. solver limits).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ReproError):
    """Raised when the textual Datalog / GDatalog syntax cannot be parsed.

    Attributes
    ----------
    line, column:
        1-based position of the offending token, when available.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column})" if column is not None else ")")
        super().__init__(message + location)


class ValidationError(ReproError):
    """Raised when a rule or program violates a syntactic restriction.

    Examples: unsafe rules (a head or negative-body variable that does not
    occur in the positive body), Δ-terms in body position, unknown
    distribution names, or arity mismatches.
    """


class StratificationError(ReproError):
    """Raised when stratified negation is required but the program is not stratified."""


class GroundingError(ReproError):
    """Raised when grounding a program fails (e.g. inconsistent AtR sets)."""


class SolverError(ReproError):
    """Raised when stable-model computation cannot proceed."""


class SolverLimitError(SolverError):
    """Raised when a configured search limit of the stable-model solver is exceeded."""


class ChaseLimitError(ReproError):
    """Raised when the chase exceeds its configured depth/outcome limits in strict mode."""


class InferenceError(ReproError):
    """Raised for invalid probabilistic queries (e.g. conditioning on a zero-probability event)."""


class DistributionError(ReproError):
    """Raised when a distribution is instantiated with invalid parameters."""
