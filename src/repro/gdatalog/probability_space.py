"""The output probability space of a GDatalog¬[Δ] program (Definition 3.8).

The sample space is the set of possible outcomes; the σ-algebra is generated
by the error event ``Ω∞`` and the maximal sets of finite outcomes inducing
the same set of stable models; the measure of a finite outcome is
``Pr(Σ) = ∏ δ⟨p̄⟩(o)``.

Two representations implement the common :class:`AbstractSpace` interface:

* :class:`OutputSpace` materializes the finite part of the space (as
  produced by the chase) as an explicit outcome list;
* :class:`~repro.gdatalog.factorize.ProductSpace` represents the space of a
  program that decomposes into independent components as a *product* of
  per-component :class:`OutputSpace` objects, enumerating joint outcomes
  lazily.

All probability masses are accumulated with :func:`math.fsum` (exactly
rounded summation), so renormalization near zero-mass evidence does not
drift, and conditioning treats masses within :data:`ZERO_MASS_EPSILON` of
zero as genuine zero-probability events instead of renormalizing by a
denormal and emitting probabilities greater than one.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from repro.exceptions import InferenceError
from repro.gdatalog.outcomes import PossibleOutcome
from repro.logic.atoms import Atom

__all__ = ["Event", "AbstractSpace", "OutputSpace", "ZERO_MASS_EPSILON"]

#: A set of stable models (each a frozenset of atoms), used as event identity.
ModelSet = frozenset[frozenset[Atom]]

#: Masses at most this close to zero are treated as zero-probability events:
#: conditioning on them raises :class:`InferenceError` instead of dividing by
#: a denormal (which loses all relative precision and can emit outcome
#: probabilities above one).
ZERO_MASS_EPSILON = 1e-12


@dataclass(frozen=True)
class Event:
    """A basic event: all finite outcomes inducing the same set of stable models.

    Product spaces combine events of their components without materializing
    the joint outcomes; such events carry an empty ``outcomes`` tuple.
    """

    model_set: ModelSet
    outcomes: tuple[PossibleOutcome, ...]
    probability: float

    @property
    def has_stable_model(self) -> bool:
        return bool(self.model_set)

    def __len__(self) -> int:
        return len(self.outcomes)


class AbstractSpace(abc.ABC):
    """The query interface shared by every representation of ``Π_G(D)``.

    Concrete spaces provide iteration over finite outcomes, the error mass,
    event grouping, and the three probability primitives (``probability``,
    ``marginal``, ``conditional``); the derived queries below are expressed
    in terms of those.  ``merge`` combines disjoint partial spaces of the
    same representation.
    """

    # -- representation hooks -----------------------------------------------------

    @property
    @abc.abstractmethod
    def error_probability(self) -> float:
        """The mass of the error event ``Ω∞`` (infinite / truncated outcomes)."""

    @property
    @abc.abstractmethod
    def finite_probability(self) -> float:
        """``P(Ω^fin)``: total mass of the finite outcomes."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[PossibleOutcome]:
        """Iterate over the finite possible outcomes (lazily where possible)."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """The number of finite possible outcomes."""

    @abc.abstractmethod
    def events(self) -> list[Event]:
        """The basic events: maximal outcome sets with equal stable-model sets."""

    @abc.abstractmethod
    def probability(self, predicate: Callable[[PossibleOutcome], bool]) -> float:
        """Probability of the set of finite outcomes satisfying *predicate*."""

    @abc.abstractmethod
    def marginal(self, atom: Atom, mode: str = "brave") -> float:
        """Probability that *atom* holds in some (brave) / every (cautious) stable model."""

    @abc.abstractmethod
    def conditional(
        self,
        predicate: Callable[[PossibleOutcome], bool],
        epsilon: float = ZERO_MASS_EPSILON,
    ) -> "AbstractSpace":
        """The sub-space obtained by conditioning on an event of positive probability.

        Event masses at most *epsilon* raise :class:`InferenceError`; callers
        conditioning on legitimately tiny but exactly-representable evidence
        (e.g. a conjunction of many dyadic choices) may pass a smaller
        *epsilon*, down to ``0.0`` for the strict positive-mass check.
        """

    @classmethod
    @abc.abstractmethod
    def merge(cls, spaces: Iterable["AbstractSpace"]) -> "AbstractSpace":
        """The union of disjoint partial spaces of this representation."""

    # -- derived queries -----------------------------------------------------------

    def total_probability(self) -> float:
        """Finite mass plus error mass (should be ≈ 1 up to truncation error)."""
        return self.finite_probability + self.error_probability

    def probability_has_stable_model(self) -> float:
        """Probability of the event "the program has some stable model"."""
        return self.probability(lambda o: o.has_stable_model)

    def probability_no_stable_model(self) -> float:
        """Probability of the event "the program has no stable model"."""
        return self.probability(lambda o: not o.has_stable_model)

    def distribution_over_model_sets(self) -> dict[ModelSet, float]:
        """``I ↦ P({Σ finite : sms(Σ) = I})``."""
        return {event.model_set: event.probability for event in self.events()}

    def as_good_as(self, other: "AbstractSpace", tolerance: float = 1e-9) -> bool:
        """Whether this space is *as good as* *other* (Definition 3.11).

        For every set of stable models ``I``, the mass this space assigns to
        ``{Σ finite : sms(Σ) = I}`` must be at least the mass *other* assigns.
        """
        mine = self.distribution_over_model_sets()
        theirs = other.distribution_over_model_sets()
        for model_set in set(mine) | set(theirs):
            if mine.get(model_set, 0.0) + tolerance < theirs.get(model_set, 0.0):
                return False
        return True

    def summary(self) -> str:
        """A human-readable multi-line summary of the space."""
        lines = [
            f"possible outcomes (finite): {len(self)}",
            f"finite probability mass:    {self.finite_probability:.6f}",
            f"error-event mass:           {self.error_probability:.6f}",
            f"P(has stable model):        {self.probability_has_stable_model():.6f}",
        ]
        for i, event in enumerate(self.events()):
            label = f"{len(event.model_set)} stable model(s)" if event.model_set else "no stable model"
            lines.append(f"  event {i}: p={event.probability:.6f}  [{label}]")
        return "\n".join(lines)


class OutputSpace(AbstractSpace):
    """The (finite part of the) probability space ``Π_G(D)``, fully materialized."""

    def __init__(
        self,
        outcomes: Iterable[PossibleOutcome],
        error_probability: float = 0.0,
        visible_only: bool = True,
    ):
        self._outcomes: tuple[PossibleOutcome, ...] = tuple(outcomes)
        self._error_probability = float(error_probability)
        self._visible_only = visible_only

    @classmethod
    def merge(cls, spaces: Iterable["OutputSpace"]) -> "OutputSpace":
        """The union of disjoint partial spaces.

        Outcomes are concatenated and re-sorted into the canonical
        ``choice_key`` order the sequential chase produces, and the error
        masses add up.  Callers are responsible for the partial spaces
        covering *disjoint* sets of outcomes (e.g. separate chase subtrees,
        or shards of a partitioned workload).
        """
        outcomes: list[PossibleOutcome] = []
        error_masses: list[float] = []
        visible_only = True
        for space in spaces:
            outcomes.extend(space._outcomes)
            error_masses.append(space._error_probability)
            visible_only = visible_only and space._visible_only
        outcomes.sort(key=lambda o: o.choice_key)
        return cls(outcomes, error_probability=math.fsum(error_masses), visible_only=visible_only)

    # -- basic accounting ------------------------------------------------------

    @property
    def outcomes(self) -> tuple[PossibleOutcome, ...]:
        """The finite possible outcomes ``Ω^fin``."""
        return self._outcomes

    @property
    def error_probability(self) -> float:
        """The mass of the error event ``Ω∞`` (infinite / truncated outcomes)."""
        return self._error_probability

    @property
    def finite_probability(self) -> float:
        """``P(Ω^fin)``: total mass of the finite outcomes."""
        return math.fsum(o.probability for o in self._outcomes)

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[PossibleOutcome]:
        return iter(self._outcomes)

    # -- events ------------------------------------------------------------------

    def _model_set_of(self, outcome: PossibleOutcome) -> ModelSet:
        if self._visible_only:
            return outcome.visible_stable_models()
        return outcome.stable_models

    def events(self) -> list[Event]:
        """The basic events: maximal sets of finite outcomes with equal stable-model sets."""
        grouped: dict[ModelSet, list[PossibleOutcome]] = {}
        for outcome in self._outcomes:
            grouped.setdefault(self._model_set_of(outcome), []).append(outcome)
        events = [
            Event(model_set, tuple(members), math.fsum(o.probability for o in members))
            for model_set, members in grouped.items()
        ]
        events.sort(key=lambda e: (-e.probability, len(e.model_set)))
        return events

    # -- probability queries --------------------------------------------------------

    def probability(self, predicate: Callable[[PossibleOutcome], bool]) -> float:
        """Probability of the set of finite outcomes satisfying *predicate*."""
        return math.fsum(o.probability for o in self._outcomes if predicate(o))

    def marginal(self, atom: Atom, mode: str = "brave") -> float:
        """Probability that *atom* holds in some (brave) / every (cautious) stable model.

        Outcomes without stable models never satisfy either condition (there
        is no model for the atom to hold in).
        """
        if mode not in ("brave", "cautious"):
            raise InferenceError(f"marginal mode must be 'brave' or 'cautious', got {mode!r}")

        def satisfied(outcome: PossibleOutcome) -> bool:
            models = outcome.stable_models
            if not models:
                return False
            if mode == "brave":
                return any(atom in model for model in models)
            return all(atom in model for model in models)

        return self.probability(satisfied)

    def conditional(
        self,
        predicate: Callable[[PossibleOutcome], bool],
        epsilon: float = ZERO_MASS_EPSILON,
    ) -> "OutputSpace":
        """The sub-space obtained by conditioning on an event of positive probability.

        Probabilities of the retained outcomes are renormalized by the event
        mass (the error event is discarded — conditioning is only defined on
        finite outcomes, as in the PPDL constraint semantics).  Event masses
        at most *epsilon* (default :data:`ZERO_MASS_EPSILON`) are treated as
        zero-probability events: renormalizing by a float artifact loses all
        relative precision and can emit probabilities above one, so they
        raise :class:`InferenceError`.  Pass a smaller *epsilon* when the
        evidence is legitimately tiny but exactly representable.
        """
        selected = [o for o in self._outcomes if predicate(o)]
        mass = math.fsum(o.probability for o in selected)
        if mass <= epsilon:
            raise InferenceError(
                "cannot condition on an event of probability zero "
                f"(mass {mass:.3e} is within {max(epsilon, 0.0):.0e} of zero)"
            )
        rescaled = [o.with_probability(o.probability / mass) for o in selected]
        return OutputSpace(rescaled, error_probability=0.0, visible_only=self._visible_only)

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> str:
        """A human-readable multi-line summary of the space."""
        lines = [
            f"possible outcomes (finite): {len(self._outcomes)}",
            f"finite probability mass:    {self.finite_probability:.6f}",
            f"error-event mass:           {self._error_probability:.6f}",
            f"P(has stable model):        {self.probability_has_stable_model():.6f}",
        ]
        for i, event in enumerate(self.events()):
            label = f"{len(event.model_set)} stable model(s)" if event.model_set else "no stable model"
            lines.append(f"  event {i}: p={event.probability:.6f}  [{label}, {len(event)} outcome(s)]")
        return "\n".join(lines)
