"""The output probability space of a GDatalog¬[Δ] program (Definition 3.8).

The sample space is the set of possible outcomes; the σ-algebra is generated
by the error event ``Ω∞`` and the maximal sets of finite outcomes inducing
the same set of stable models; the measure of a finite outcome is
``Pr(Σ) = ∏ δ⟨p̄⟩(o)``.

:class:`OutputSpace` materializes the finite part of this space (as produced
by the chase) and exposes the queries the examples, the PPDL layer and the
benchmarks need: event probabilities, marginals, the distribution over sets
of stable models and the "as good as" comparison of Definition 3.11.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping

from repro.exceptions import InferenceError
from repro.gdatalog.outcomes import PossibleOutcome
from repro.logic.atoms import Atom

__all__ = ["Event", "OutputSpace"]

#: A set of stable models (each a frozenset of atoms), used as event identity.
ModelSet = frozenset[frozenset[Atom]]


@dataclass(frozen=True)
class Event:
    """A basic event: all finite outcomes inducing the same set of stable models."""

    model_set: ModelSet
    outcomes: tuple[PossibleOutcome, ...]
    probability: float

    @property
    def has_stable_model(self) -> bool:
        return bool(self.model_set)

    def __len__(self) -> int:
        return len(self.outcomes)


class OutputSpace:
    """The (finite part of the) probability space ``Π_G(D)``."""

    def __init__(
        self,
        outcomes: Iterable[PossibleOutcome],
        error_probability: float = 0.0,
        visible_only: bool = True,
    ):
        self._outcomes: tuple[PossibleOutcome, ...] = tuple(outcomes)
        self._error_probability = float(error_probability)
        self._visible_only = visible_only

    @classmethod
    def merge(cls, spaces: Iterable["OutputSpace"]) -> "OutputSpace":
        """The union of disjoint partial spaces.

        Outcomes are concatenated and re-sorted into the canonical
        ``choice_key`` order the sequential chase produces, and the error
        masses add up.  Callers are responsible for the partial spaces
        covering *disjoint* sets of outcomes (e.g. separate chase subtrees,
        or shards of a partitioned workload).
        """
        outcomes: list[PossibleOutcome] = []
        error_probability = 0.0
        visible_only = True
        for space in spaces:
            outcomes.extend(space._outcomes)
            error_probability += space._error_probability
            visible_only = visible_only and space._visible_only
        outcomes.sort(key=lambda o: o.choice_key)
        return cls(outcomes, error_probability=error_probability, visible_only=visible_only)

    # -- basic accounting ------------------------------------------------------

    @property
    def outcomes(self) -> tuple[PossibleOutcome, ...]:
        """The finite possible outcomes ``Ω^fin``."""
        return self._outcomes

    @property
    def error_probability(self) -> float:
        """The mass of the error event ``Ω∞`` (infinite / truncated outcomes)."""
        return self._error_probability

    @property
    def finite_probability(self) -> float:
        """``P(Ω^fin)``: total mass of the finite outcomes."""
        return sum(o.probability for o in self._outcomes)

    def total_probability(self) -> float:
        """Finite mass plus error mass (should be ≈ 1 up to truncation error)."""
        return self.finite_probability + self._error_probability

    def __len__(self) -> int:
        return len(self._outcomes)

    def __iter__(self) -> Iterator[PossibleOutcome]:
        return iter(self._outcomes)

    # -- events ------------------------------------------------------------------

    def _model_set_of(self, outcome: PossibleOutcome) -> ModelSet:
        if self._visible_only:
            return outcome.visible_stable_models()
        return outcome.stable_models

    def events(self) -> list[Event]:
        """The basic events: maximal sets of finite outcomes with equal stable-model sets."""
        grouped: dict[ModelSet, list[PossibleOutcome]] = {}
        for outcome in self._outcomes:
            grouped.setdefault(self._model_set_of(outcome), []).append(outcome)
        events = [
            Event(model_set, tuple(members), sum(o.probability for o in members))
            for model_set, members in grouped.items()
        ]
        events.sort(key=lambda e: (-e.probability, len(e.model_set)))
        return events

    def distribution_over_model_sets(self) -> dict[ModelSet, float]:
        """``I ↦ P({Σ finite : sms(Σ) = I})``."""
        return {event.model_set: event.probability for event in self.events()}

    # -- probability queries --------------------------------------------------------

    def probability(self, predicate: Callable[[PossibleOutcome], bool]) -> float:
        """Probability of the set of finite outcomes satisfying *predicate*."""
        return sum(o.probability for o in self._outcomes if predicate(o))

    def probability_has_stable_model(self) -> float:
        """Probability of the event "the program has some stable model"."""
        return self.probability(lambda o: o.has_stable_model)

    def probability_no_stable_model(self) -> float:
        """Probability of the event "the program has no stable model"."""
        return self.probability(lambda o: not o.has_stable_model)

    def marginal(self, atom: Atom, mode: str = "brave") -> float:
        """Probability that *atom* holds in some (brave) / every (cautious) stable model.

        Outcomes without stable models never satisfy either condition (there
        is no model for the atom to hold in).
        """
        if mode not in ("brave", "cautious"):
            raise InferenceError(f"marginal mode must be 'brave' or 'cautious', got {mode!r}")

        def satisfied(outcome: PossibleOutcome) -> bool:
            models = outcome.stable_models
            if not models:
                return False
            if mode == "brave":
                return any(atom in model for model in models)
            return all(atom in model for model in models)

        return self.probability(satisfied)

    def conditional(self, predicate: Callable[[PossibleOutcome], bool]) -> "OutputSpace":
        """The sub-space obtained by conditioning on an event of positive probability.

        Probabilities of the retained outcomes are renormalized by the event
        mass (the error event is discarded — conditioning is only defined on
        finite outcomes, as in the PPDL constraint semantics).
        """
        selected = [o for o in self._outcomes if predicate(o)]
        mass = sum(o.probability for o in selected)
        if mass <= 0.0:
            raise InferenceError("cannot condition on an event of probability zero")
        rescaled = [o.with_probability(o.probability / mass) for o in selected]
        return OutputSpace(rescaled, error_probability=0.0, visible_only=self._visible_only)

    # -- comparison of semantics (Definition 3.11) -------------------------------------

    def as_good_as(self, other: "OutputSpace", tolerance: float = 1e-9) -> bool:
        """Whether this space is *as good as* *other*.

        For every set of stable models ``I``, the mass this space assigns to
        ``{Σ finite : sms(Σ) = I}`` must be at least the mass *other* assigns.
        """
        mine = self.distribution_over_model_sets()
        theirs = other.distribution_over_model_sets()
        for model_set in set(mine) | set(theirs):
            if mine.get(model_set, 0.0) + tolerance < theirs.get(model_set, 0.0):
                return False
        return True

    # -- reporting -----------------------------------------------------------------------

    def summary(self) -> str:
        """A human-readable multi-line summary of the space."""
        lines = [
            f"possible outcomes (finite): {len(self._outcomes)}",
            f"finite probability mass:    {self.finite_probability:.6f}",
            f"error-event mass:           {self._error_probability:.6f}",
            f"P(has stable model):        {self.probability_has_stable_model():.6f}",
        ]
        for i, event in enumerate(self.events()):
            label = f"{len(event.model_set)} stable model(s)" if event.model_set else "no stable model"
            lines.append(f"  event {i}: p={event.probability:.6f}  [{label}, {len(event)} outcome(s)]")
        return "\n".join(lines)
