"""Monte-Carlo (forward-sampling) inference for GDatalog¬[Δ] programs.

Exhaustive chase enumeration is exponential in the number of probabilistic
choices; the sampler instead follows single chase paths, resolving each
trigger by drawing from the corresponding distribution.  Every sampled path
ends at a possible outcome with exactly its semantic probability (or in the
error event if the depth limit is hit), so empirical frequencies of outcome
properties are unbiased estimators of the exact event probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ValidationError
from repro.rng import default_rng, sqrt

from repro.gdatalog.chase import ChaseConfig, ChaseEngine
from repro.gdatalog.grounders import Grounder
from repro.gdatalog.outcomes import PossibleOutcome

__all__ = ["Estimate", "SampleStats", "MonteCarloSampler"]


@dataclass(frozen=True)
class Estimate:
    """A Monte-Carlo estimate with its standard error and sample size."""

    value: float
    standard_error: float
    samples: int

    def confidence_interval(self, z: float = 1.96, method: str = "normal") -> tuple[float, float]:
        """A confidence interval (95% by default).

        ``method="normal"`` is the classic Wald interval ``p̂ ± z·SE``.
        At an empirical proportion of exactly 0 or 1 (every Bernoulli
        sample agreed) the Wald interval collapses to a zero-width point,
        which badly understates the uncertainty of small runs — in that
        degenerate case the Wilson-score interval is returned instead
        (matching :meth:`half_width`'s default).  ``method="wilson"``
        always returns the Wilson-score interval, which stays strictly
        inside ``(0, 1)`` and keeps a positive width at the boundaries —
        the adaptive driver in :mod:`repro.runtime.adaptive` stops on its
        half-width for exactly this reason.
        """
        if method == "normal":
            if self.value <= 0.0 or self.value >= 1.0:
                return self.wilson_interval(z)
            return (self.value - z * self.standard_error, self.value + z * self.standard_error)
        if method == "wilson":
            return self.wilson_interval(z)
        raise ValidationError(f"confidence interval method must be 'normal' or 'wilson', got {method!r}")

    def wilson_interval(self, z: float = 1.96) -> tuple[float, float]:
        """The Wilson-score interval for a Bernoulli proportion.

        Non-degenerate at ``p̂ ∈ {0, 1}``: with *n* samples and zero
        successes the upper bound is ``z²/(n+z²)`` rather than 0.
        """
        n = self.samples
        if n <= 0:
            return (0.0, 1.0)
        p = min(max(self.value, 0.0), 1.0)
        z2 = z * z
        denominator = 1.0 + z2 / n
        center = (p + z2 / (2.0 * n)) / denominator
        spread = (z / denominator) * float(sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)))
        return (max(center - spread, 0.0), min(center + spread, 1.0))

    def half_width(self, z: float = 1.96, method: str = "wilson") -> float:
        """Half the width of the confidence interval (Wilson by default)."""
        low, high = self.confidence_interval(z, method=method)
        return (high - low) / 2.0

    def __str__(self) -> str:
        return f"{self.value:.6f} ± {self.standard_error:.6f} (n={self.samples})"


@dataclass
class SampleStats:
    """Aggregate statistics of one sampling run."""

    samples: int
    error_samples: int
    has_stable_model: int
    mean_depth: float

    @property
    def error_rate(self) -> float:
        return self.error_samples / self.samples if self.samples else 0.0


class MonteCarloSampler:
    """Forward sampler over the chase of a fixed grounder."""

    def __init__(self, grounder: Grounder, config: ChaseConfig | None = None, seed: int | None = None):
        self._engine = ChaseEngine(grounder, config or ChaseConfig())
        self._rng = default_rng(seed)

    # -- sampling --------------------------------------------------------------

    def sample_outcome(self) -> PossibleOutcome | None:
        """Draw one possible outcome; ``None`` signals the error event (depth limit)."""
        outcome, _depth = self._engine.sample_path(self._rng)
        return outcome

    def sample_outcomes(self, n: int) -> list[PossibleOutcome | None]:
        """Draw *n* independent outcomes."""
        return [self.sample_outcome() for _ in range(n)]

    # -- estimation ---------------------------------------------------------------

    def estimate(
        self, predicate: Callable[[PossibleOutcome], bool], n: int = 1000
    ) -> Estimate:
        """Estimate the probability of the event defined by *predicate*.

        Error-event samples count as *not* satisfying the predicate, matching
        the exact semantics where events are subsets of the finite outcomes.
        """
        successes = 0
        for _ in range(n):
            outcome = self.sample_outcome()
            if outcome is not None and predicate(outcome):
                successes += 1
        p_hat = successes / n
        standard_error = float(sqrt(max(p_hat * (1.0 - p_hat), 1e-300) / n))
        return Estimate(p_hat, standard_error, n)

    def estimate_has_stable_model(self, n: int = 1000) -> Estimate:
        """Estimate P("the program has some stable model")."""
        return self.estimate(lambda outcome: outcome.has_stable_model, n=n)

    def estimate_marginal(self, atom, mode: str = "brave", n: int = 1000) -> Estimate:
        """Estimate the brave/cautious marginal probability of an atom."""

        def satisfied(outcome: PossibleOutcome) -> bool:
            models = outcome.stable_models
            if not models:
                return False
            if mode == "brave":
                return any(atom in model for model in models)
            return all(atom in model for model in models)

        return self.estimate(satisfied, n=n)

    def run_stats(self, n: int = 1000) -> SampleStats:
        """Draw *n* samples and return aggregate statistics."""
        error_samples = 0
        stable = 0
        depths: list[int] = []
        for _ in range(n):
            outcome, depth = self._engine.sample_path(self._rng)
            depths.append(depth)
            if outcome is None:
                error_samples += 1
            elif outcome.has_stable_model:
                stable += 1
        return SampleStats(
            samples=n,
            error_samples=error_samples,
            has_stable_model=stable,
            mean_depth=(sum(depths) / len(depths)) if depths else 0.0,
        )
