"""High-level facade for generative Datalog¬ inference.

:class:`GDatalogEngine` wires the pieces together: parse or accept a
GDatalog¬[Δ] program and a database, translate to ``Σ_Π``, pick a grounder,
run the chase (exact) or the sampler (Monte-Carlo), and answer probabilistic
queries.

Typical usage::

    engine = GDatalogEngine.from_source(PROGRAM_TEXT, DATABASE_TEXT, grounder="simple")
    space = engine.output_space()
    space.probability_has_stable_model()
    engine.marginal("infected(2, 1)")
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property
from typing import TYPE_CHECKING, Callable, Iterable

if TYPE_CHECKING:
    from repro.gdatalog.checker import ProgramAnalysis

from repro.exceptions import GroundingError, ValidationError
from repro.gdatalog.chase import ChaseConfig, ChaseEngine, ChaseResult
from repro.gdatalog.factorize import factorized_space
from repro.gdatalog.grounders import Grounder, grounder_name, make_grounder
from repro.gdatalog.outcomes import PossibleOutcome
from repro.gdatalog.probability_space import AbstractSpace, OutputSpace
from repro.gdatalog.relevance import QuerySlice, atoms_for_queries, compute_slice
from repro.gdatalog.sampler import Estimate, MonteCarloSampler
from repro.gdatalog.syntax import GDatalogProgram, desugar_constraints
from repro.gdatalog.translate import TranslatedProgram, translate_program
from repro.logic.atoms import Atom
from repro.logic.database import Database
from repro.logic.parser import parse_atom, parse_database, parse_gdatalog_program

__all__ = ["GDatalogEngine", "cache_profile_lines"]


class GDatalogEngine:
    """Exact and approximate inference for a GDatalog¬[Δ] program on a database."""

    def __init__(
        self,
        program: GDatalogProgram,
        database: Database | Iterable[Atom] = (),
        grounder: str | Grounder = "simple",
        chase_config: ChaseConfig | None = None,
        constraint_mode: str = "native",
        require_edb_database: bool = False,
        analysis: "ProgramAnalysis | None" = None,
    ):
        if constraint_mode not in ("native", "desugar"):
            raise ValidationError(f"constraint_mode must be 'native' or 'desugar', got {constraint_mode!r}")
        self.program = desugar_constraints(program) if constraint_mode == "desugar" else program
        self.database = database if isinstance(database, Database) else Database(database)
        if require_edb_database:
            # Definition-level strictness: a database of edb(Π) only.  The
            # paper's own Example 3.6 places the intensional fact
            # Infected(1, 1) in the database, so the permissive behaviour is
            # the default.
            self._validate_database()
        self.chase_config = chase_config or ChaseConfig()
        #: The query-relevant slice applied to this engine (``None`` when
        #: slicing was not requested; ``is_full`` when it cut nothing).
        self.query_slice: QuerySlice | None = None
        if self.chase_config.slice_for_query is not None:
            permanent = analysis.permanent_seeds if analysis is not None else None
            self.query_slice = compute_slice(
                self.program,
                self.database,
                self.chase_config.slice_for_query,
                permanent=permanent,
            )
            if not self.query_slice.is_full:
                self.program = self.query_slice.program
                self.database = self.query_slice.database
        if analysis is not None and analysis.program.rules == self.program.rules:
            # A precomputed analysis is only valid for this exact rule set;
            # when slicing or desugaring rewrote the program, the engine
            # derives its own lazily instead.
            self.analysis = analysis
        self.translated: TranslatedProgram = translate_program(self.program)
        self.grounder: Grounder = make_grounder(grounder, self.translated, self.database)
        try:
            self._grounder_name: str | None = grounder_name(grounder)
        except GroundingError:
            # A custom grounder family cannot be rebuilt over a sliced
            # program; sliced() then falls back to the full engine.
            self._grounder_name = None

    # -- constructors ------------------------------------------------------------

    @classmethod
    def from_source(
        cls,
        program_source: str,
        database_source: str = "",
        grounder: str | Grounder = "simple",
        chase_config: ChaseConfig | None = None,
        constraint_mode: str = "native",
        registry=None,
        require_edb_database: bool = False,
    ) -> "GDatalogEngine":
        """Build an engine from textual program and database sources."""
        program = parse_gdatalog_program(program_source, registry=registry)
        database = parse_database(database_source) if database_source.strip() else Database()
        return cls(
            program,
            database,
            grounder=grounder,
            chase_config=chase_config,
            constraint_mode=constraint_mode,
            require_edb_database=require_edb_database,
        )

    # -- validation ----------------------------------------------------------------

    def _validate_database(self) -> None:
        """The database must range over ``edb(Π)`` only (Definition of ``Π[D]``)."""
        intensional = {p for p in self.program.intensional_predicates()}
        offending = sorted(
            str(a) for a in self.database.facts if a.predicate in intensional
        )
        if offending:
            raise ValidationError(
                "database facts must use extensional predicates only; "
                f"intensional facts found: {offending}"
            )

    # -- static analysis ------------------------------------------------------------

    @cached_property
    def analysis(self) -> "ProgramAnalysis":
        """The static :class:`~repro.gdatalog.checker.ProgramAnalysis` of this engine.

        Computed lazily (or supplied precomputed via the constructor); its
        memoised strategy inputs — factorization decomposition, permanent
        slice seeds, choice cone — replace the per-request derivations in
        :meth:`output_space`, :meth:`sliced` and :meth:`updated`.
        """
        from repro.gdatalog.checker import analyze_program

        return analyze_program(self.program, self.database)

    # -- exact inference --------------------------------------------------------------

    @cached_property
    def chase_result(self) -> ChaseResult:
        """The exhaustive chase (cached; rerun by constructing a new engine)."""
        return ChaseEngine(self.grounder, self.chase_config).run()

    def output_space(self, workers: int | None = None) -> AbstractSpace:
        """The output probability space ``Π_G(D)`` restricted to finite outcomes.

        With :attr:`ChaseConfig.factorize` set, the ground program is
        decomposed into independent components and the result is a lazy
        :class:`~repro.gdatalog.factorize.ProductSpace`; connected (or
        otherwise ineligible) programs fall back to the flat
        :class:`OutputSpace` transparently.  *workers* routes the chase —
        per component when factorized, per subtree otherwise — through the
        parallel runtime.
        """
        if self.chase_config.factorize:
            space = self._factorized_space(workers=workers)
            if space is not None:
                return space
        if workers is not None and workers > 1:
            return self.parallel_output_space(workers=workers)
        result = self.chase_result
        return OutputSpace(result.outcomes, error_probability=result.error_probability)

    def _factorized_space(self, workers: int | None = None):
        """The cached factorized space, or ``None`` when the program is connected."""
        if "factorized" not in self.__dict__:
            decomposition = self.analysis.decomposition(
                self.translated, self.database, self.chase_config
            )
            self.__dict__["factorized"] = (
                None
                if decomposition is None
                else factorized_space(
                    self.grounder,
                    self.chase_config,
                    workers=workers,
                    decomposition=decomposition,
                )
            )
        return self.__dict__["factorized"]

    # -- streaming updates ---------------------------------------------------------

    def updated(self, delta) -> "GDatalogEngine":
        """The engine of the post-delta database, reusing this engine's chase work.

        *delta* is a :class:`~repro.logic.deltas.DbDelta` (or a wire spec
        like ``{"insert": ["lap(7, 3)"], "retract": [...]}``).  The returned
        engine answers every query bit-identically to a from-scratch engine
        over the updated database; how much chase structure was reused is
        recorded on its :attr:`last_update_report` (see
        :mod:`repro.gdatalog.incremental` for the patch/component/rebuild
        modes).  This engine is not mutated and stays valid for the
        pre-delta state.
        """
        from repro.gdatalog.incremental import maintain_engine

        new_engine, _space, report = maintain_engine(self, delta)
        new_engine.last_update_report = report
        return new_engine

    #: The :class:`~repro.gdatalog.incremental.UpdateReport` of the
    #: :meth:`updated` call that produced this engine (``None`` for engines
    #: built from scratch).
    last_update_report = None

    # -- query-relevant slicing -----------------------------------------------------

    def sliced(self, queries: Iterable) -> "GDatalogEngine":
        """An engine restricted to the query-relevant slice of the batch.

        *queries* accepts the same forms as :meth:`evaluate_queries`; the
        slice is the union over the batch (one sliced chase answers every
        query in it).  Returns ``self`` — reusing any already-cached chase —
        when the batch contains a generic query, when nothing can be cut,
        or when the grounder is a custom family that cannot be rebuilt, so
        callers never need a fallback path of their own.  Sliced engines
        are memoized on the relevant predicate set: repeated queries into
        the same slice reuse one engine (and its cached chase).
        """
        from repro.ppdl.queries import query_from_spec

        if self._grounder_name is None:
            return self
        resolved = [query_from_spec(q) for q in queries]
        seeds = atoms_for_queries(resolved)
        if seeds is None:
            return self
        slice_ = compute_slice(
            self.program, self.database, seeds, permanent=self.analysis.permanent_seeds
        )
        if slice_.is_full:
            return self
        cache: dict = self.__dict__.setdefault("_sliced_engines", {})
        cached = cache.get(slice_.predicates)
        if cached is not None:
            return cached
        engine = GDatalogEngine(
            slice_.program,
            slice_.database,
            grounder=self._grounder_name,
            chase_config=replace(self.chase_config, slice_for_query=None),
        )
        engine.query_slice = slice_
        cache[slice_.predicates] = engine
        return engine

    def possible_outcomes(self) -> list[PossibleOutcome]:
        """``Ω^fin``: the finite possible outcomes, materialized.

        Built from :meth:`output_space`, so a factorized engine enumerates
        the joint outcomes of its components instead of re-running the flat
        exponential chase.  (Materializing is still ``∏ |Ω_i|`` work —
        that is what listing every outcome costs.)
        """
        return list(self.output_space())

    def probability_has_stable_model(self, slice: bool = False) -> float:
        """P("Π[D] has some stable model").

        With *slice* only the model-killing core (constraints, negative
        cycles, inexact choices and their cones) is chased; everything else
        is a factor of exactly 1.
        """
        if slice:
            from repro.ppdl.queries import HasStableModelQuery

            return self.sliced([HasStableModelQuery()]).output_space().probability_has_stable_model()
        return self.output_space().probability_has_stable_model()

    def marginal(self, atom: Atom | str, mode: str = "brave", slice: bool = False) -> float:
        """Brave/cautious marginal probability of an atom (string or object).

        With *slice* only the query-relevant part of the program is chased
        (bit-identical answer; see :mod:`repro.gdatalog.relevance`).
        """
        resolved = parse_atom(atom) if isinstance(atom, str) else atom
        if slice:
            from repro.ppdl.queries import AtomQuery

            return self.sliced([AtomQuery(resolved, mode)]).output_space().marginal(
                resolved, mode=mode
            )
        return self.output_space().marginal(resolved, mode=mode)

    def probability(self, predicate: Callable[[PossibleOutcome], bool]) -> float:
        """Probability of an arbitrary outcome-level event."""
        return self.output_space().probability(predicate)

    # -- runtime integration (parallel / batched / adaptive) -----------------------

    def parallel_output_space(self, workers: int | None = None, **explorer_options) -> OutputSpace:
        """``Π_G(D)`` computed by the multi-worker explorer (identical space).

        Extra keyword arguments are forwarded to
        :class:`~repro.runtime.pool.ParallelChaseExplorer`.  Imported lazily
        so the core engine stays importable without the runtime package.
        """
        from repro.runtime.pool import ParallelChaseExplorer

        explorer = ParallelChaseExplorer(
            self.grounder, self.chase_config, workers=workers, **explorer_options
        )
        return explorer.output_space()

    def evaluate_queries(
        self, queries, workers: int | None = None, slice: bool = False
    ) -> list[float]:
        """Answer many queries in one outcome scan (optionally chased in parallel).

        *queries* may be :class:`~repro.ppdl.queries.Query` objects, atom
        strings or wire-format specs (see
        :func:`~repro.ppdl.queries.query_from_spec`).  With *slice* the
        chase is restricted to the union of the batch's query-relevant
        slices (transparent fallback when nothing can be cut).
        """
        from repro.ppdl.queries import query_from_spec
        from repro.runtime.batch import QueryBatch

        resolved = [query_from_spec(q) for q in queries]
        target = self.sliced(resolved) if slice else self
        batch = QueryBatch(resolved)
        return batch.evaluate(target.output_space(workers=workers))

    # -- approximate inference ------------------------------------------------------------

    def sampler(self, seed: int | None = None) -> MonteCarloSampler:
        """A Monte-Carlo sampler sharing this engine's grounder and chase configuration."""
        return MonteCarloSampler(self.grounder, self.chase_config, seed=seed)

    def estimate_has_stable_model(
        self, n: int = 1000, seed: int | None = None, slice: bool = False
    ) -> Estimate:
        """Monte-Carlo estimate of P("Π[D] has some stable model").

        With *slice* the sampler walks only the model-killing core, so each
        path resolves only the triggers that can influence the answer.
        """
        if slice:
            from repro.ppdl.queries import HasStableModelQuery

            return self.sliced([HasStableModelQuery()]).estimate_has_stable_model(n=n, seed=seed)
        return self.sampler(seed=seed).estimate_has_stable_model(n=n)

    def estimate_marginal(
        self,
        atom: Atom | str,
        mode: str = "brave",
        n: int = 1000,
        seed: int | None = None,
        slice: bool = False,
    ) -> Estimate:
        """Monte-Carlo estimate of an atom marginal.

        With *slice* sample paths resolve only the query-relevant triggers
        (irrelevant choices are a factor of 1 and are never drawn).
        """
        resolved = parse_atom(atom) if isinstance(atom, str) else atom
        if slice:
            from repro.ppdl.queries import AtomQuery

            return self.sliced([AtomQuery(resolved, mode)]).estimate_marginal(
                resolved, mode=mode, n=n, seed=seed
            )
        return self.sampler(seed=seed).estimate_marginal(resolved, mode=mode, n=n)

    def adaptive_estimate(
        self,
        query,
        target_half_width: float = 0.01,
        stratify: bool = False,
        seed: int | None = None,
        slice: bool = False,
        **driver_options,
    ):
        """Adaptive Monte-Carlo estimate stopped at a target Wilson half-width.

        *query* accepts the same forms as :meth:`evaluate_queries`; extra
        keyword arguments reach
        :class:`~repro.runtime.adaptive.AdaptiveSampler`.  With *slice* the
        driver samples the query-relevant slice only.
        """
        from repro.ppdl.queries import query_from_spec
        from repro.runtime.adaptive import AdaptiveSampler

        resolved = query_from_spec(query)
        engine = self.sliced([resolved]) if slice else self
        driver = AdaptiveSampler(
            engine.grounder,
            engine.chase_config,
            target_half_width=target_half_width,
            stratify=stratify,
            seed=seed,
            **driver_options,
        )
        return driver.estimate(resolved)

    # -- reporting -------------------------------------------------------------------------

    def report(self) -> str:
        """A human-readable report of the exact output space."""
        space = self.output_space()
        header = [
            f"program rules:   {len(self.program)}",
            f"database facts:  {len(self.database)}",
            f"grounder:        {type(self.grounder).__name__}",
        ]
        return "\n".join(header) + "\n" + space.summary()

    def profile_summary(self) -> str:
        """A multi-line profile of the cached chase run.

        Reports the chase tree size, how grounding work was split between
        incremental state extensions and from-scratch fixpoints, grounding
        wall-clock time, the shared stable-model solver's memo-cache hit
        rate and the intern-table sizes.  Triggers the chase if it has not
        run yet.  A factorized engine reports its component split instead of
        running the flat chase (which would be exponential in the number of
        components — exactly what factorization avoids).
        """
        if self.chase_config.factorize:
            space = self._factorized_space()
            if space is not None:
                lines = [
                    "-- chase profile (factorized) --",
                    f"independent components:   {len(space.components)}",
                    f"component outcomes:       {' + '.join(str(len(c)) for c in space.components)}",
                    f"joint outcomes (lazy):    {len(space)}",
                ]
                lines += cache_profile_lines()
                return "\n".join(lines)
        result = self.chase_result
        stats = result.stats
        lines = ["-- chase profile --"]
        if stats is not None:
            lines += [
                f"mode:                     {'incremental' if self.chase_config.incremental else 'from-scratch'}",
                f"nodes visited:            {stats.nodes_visited}",
                f"nodes expanded:           {stats.nodes_expanded}",
                f"leaves:                   {stats.leaves}",
                f"grounding time:           {stats.grounding_seconds:.3f}s",
                f"incremental extensions:   {stats.incremental_extensions}",
                f"from-scratch groundings:  {stats.full_groundings}",
                f"join probes/scans:        {stats.join_index_probes}/{stats.join_full_scans}",
                f"join plans comp./reused:  {stats.join_plans_compiled}/{stats.join_plans_reused}",
                f"columnar batches:         {stats.columnar_batches}",
                f"columnar rows sel./join:  {stats.columnar_rows_selected}/{stats.columnar_rows_joined}",
                f"columnar COW copies:      {stats.columnar_snapshot_copies}",
            ]
        lines += cache_profile_lines()
        return "\n".join(lines)


def cache_profile_lines() -> list[str]:
    """The process-wide cache sections of the profile report.

    Shared by :meth:`GDatalogEngine.profile_summary` and the CLI's
    ``sample --profile`` path (which never runs the exhaustive chase).
    """
    from repro.logic.columnar import columnar_stats, use_columnar
    from repro.logic.intern import intern_stats
    from repro.logic.join import join_stats
    from repro.stable.solver import solver_cache_stats

    solver = solver_cache_stats()
    solver_total = solver["hits"] + solver["misses"]
    hit_rate = solver["hits"] / solver_total if solver_total else 0.0
    interned = intern_stats()
    joins = join_stats()
    columnar = columnar_stats()
    return [
        "-- solver memo cache --",
        f"entries:                  {solver['entries']}",
        f"hits/misses:              {solver['hits']}/{solver['misses']} ({hit_rate:.1%} hit rate)",
        "-- intern tables --",
        f"atoms/rules interned:     {interned['atoms']}/{interned['rules']}",
        "-- join engine (process-wide) --",
        f"index probes/full scans:  {joins.index_probes}/{joins.full_scans}",
        f"plans compiled/reused:    {joins.plans_compiled}/{joins.plans_reused}",
        f"arg indexes built:        {joins.indexes_built}",
        "-- columnar core (process-wide) --",
        f"enabled:                  {use_columnar()}",
        f"batches executed:         {joins.batches_executed}",
        f"rows selected/joined:     {joins.rows_selected}/{joins.rows_joined}",
        f"COW snapshot copies:      {joins.snapshot_copies}",
        f"constants/plans interned: {columnar['constants']}/{columnar['plans']}",
    ]
