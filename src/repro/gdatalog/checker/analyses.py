"""Object-level analyses over a constructed GDatalog¬[Δ] program.

Each pass returns a list of :class:`Diagnostic` records; the
:class:`SpanIndex` (populated by source-level checking) supplies source
spans when available, so the same passes serve both ``check_source``
(spans) and ``analyze_program`` (no spans).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.exceptions import SourceSpan, ValidationError
from repro.gdatalog.checker.diagnostics import CODES, Diagnostic, Severity
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule
from repro.logic.atoms import Atom, Predicate
from repro.logic.database import Database
from repro.logic.rules import FALSE_PREDICATE
from repro.logic.terms import Variable

__all__ = [
    "SpanIndex",
    "diag",
    "stratification_diagnostics",
    "schema_diagnostics",
    "derivability_diagnostics",
    "unused_diagnostics",
    "choice_structure",
    "choice_diagnostics",
    "cost_smell_diagnostics",
    "derivable_predicates",
]


@dataclass
class SpanIndex:
    """Source spans recovered during parsing, keyed for the analyses.

    All maps are best-effort: an empty index (the ``analyze_program``
    path) simply yields span-less diagnostics.
    """

    rule_spans: dict[GDatalogRule, SourceSpan] = field(default_factory=dict)
    predicate_spans: dict[str, SourceSpan] = field(default_factory=dict)
    fact_spans: dict[Atom, SourceSpan] = field(default_factory=dict)

    def for_rule(self, rule_: GDatalogRule) -> SourceSpan | None:
        return self.rule_spans.get(rule_)

    def for_predicate(self, name: str) -> SourceSpan | None:
        """Lookup by ``name/arity`` (preferred) or bare name."""
        span = self.predicate_spans.get(name)
        if span is None and "/" in name:
            span = self.predicate_spans.get(name.rsplit("/", 1)[0])
        return span

    def for_fact(self, fact: Atom) -> SourceSpan | None:
        return self.fact_spans.get(fact)


def diag(
    code: str,
    message: str,
    span: SourceSpan | None = None,
    origin: str = "program",
    predicate: str | None = None,
    rule: str | None = None,
) -> Diagnostic:
    """Build a :class:`Diagnostic` with the code's registered severity."""
    severity = CODES[code][0]
    return Diagnostic(code, severity, message, span=span, origin=origin,
                      predicate=predicate, rule=rule)


# ---------------------------------------------------------------------------
# Stratification (GDL010)
# ---------------------------------------------------------------------------


def stratification_diagnostics(
    program: GDatalogProgram, spans: SpanIndex
) -> list[Diagnostic]:
    graph = program.predicate_graph()
    witness = graph.negative_cycle_witness()
    if witness is None:
        return []
    path = f"{witness[0]} -[not]-> " + " -> ".join(str(p) for p in witness[1:])
    span = None
    culprit = None
    for rule_ in program.rules:
        if rule_.is_constraint:
            continue
        if rule_.head.predicate == witness[1] and any(
            a.predicate == witness[0] for a in rule_.negative_body
        ):
            span = spans.for_rule(rule_)
            culprit = str(rule_)
            break
    return [
        diag(
            "GDL010",
            f"program is not stratified: a cycle traverses a negative edge ({path})",
            span=span,
            rule=culprit,
        )
    ]


# ---------------------------------------------------------------------------
# Schema consistency (GDL020, GDL021)
# ---------------------------------------------------------------------------


def schema_diagnostics(
    program: GDatalogProgram, database: Database | None, spans: SpanIndex
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    arities: dict[str, set[int]] = {}
    for predicate in program.predicates():
        arities.setdefault(predicate.name, set()).add(predicate.arity)
    if database is not None:
        for fact in database.facts:
            arities.setdefault(fact.predicate.name, set()).add(fact.predicate.arity)
    for name in sorted(arities):
        seen = arities[name]
        if len(seen) > 1:
            listed = ", ".join(str(a) for a in sorted(seen))
            diagnostics.append(
                diag(
                    "GDL020",
                    f"predicate {name!r} is used with {len(seen)} different arities ({listed})",
                    span=spans.for_predicate(name),
                    predicate=name,
                )
            )
    if database is not None:
        intensional = program.intensional_predicates()
        flagged: set[Predicate] = set()
        for fact in sorted(database.facts, key=str):
            if fact.predicate in intensional and fact.predicate not in flagged:
                flagged.add(fact.predicate)
                diagnostics.append(
                    diag(
                        "GDL021",
                        f"database asserts facts for derived predicate "
                        f"{fact.predicate} (e.g. {fact}); rule derivations and "
                        f"asserted facts will mix",
                        span=spans.for_fact(fact),
                        origin="database",
                        predicate=fact.predicate.name,
                    )
                )
    return diagnostics


# ---------------------------------------------------------------------------
# Derivability: dead predicates and rules (GDL022, GDL023), unused (GDL024)
# ---------------------------------------------------------------------------


def derivable_predicates(
    program: GDatalogProgram, database: Database | None
) -> frozenset[Predicate]:
    """The least fixpoint of "may have a non-empty extension".

    Seeds are the database predicates (or, when no database is supplied,
    every extensional predicate — absence of facts cannot be judged
    then); a head joins when every *positive* body predicate is derivable
    (negative literals can always hold, so they never block).
    """
    derivable: set[Predicate] = set()
    if database is None:
        derivable |= set(program.extensional_predicates())
    else:
        derivable |= {fact.predicate for fact in database.facts}
    rules = [r for r in program.rules if not r.is_constraint]
    changed = True
    while changed:
        changed = False
        for rule_ in rules:
            if rule_.head.predicate in derivable:
                continue
            if all(a.predicate in derivable for a in rule_.positive_body):
                derivable.add(rule_.head.predicate)
                changed = True
    return frozenset(derivable)


def derivability_diagnostics(
    program: GDatalogProgram, database: Database | None, spans: SpanIndex
) -> list[Diagnostic]:
    derivable = derivable_predicates(program, database)
    diagnostics: list[Diagnostic] = []
    dead_predicates: set[Predicate] = set()
    for rule_ in program.rules:
        for atom_ in rule_.positive_body:
            if atom_.predicate not in derivable:
                dead_predicates.add(atom_.predicate)
    for predicate in sorted(dead_predicates, key=str):
        reason = (
            "no facts and no rule can derive it"
            if database is not None
            else "no rule can derive it"
        )
        diagnostics.append(
            diag(
                "GDL022",
                f"predicate {predicate} can never hold ({reason}); "
                f"every rule using it positively is dead",
                span=spans.for_predicate(str(predicate)),
                predicate=predicate.name,
            )
        )
    for rule_ in program.rules:
        dead_in_rule = sorted(
            {str(a.predicate) for a in rule_.positive_body if a.predicate not in derivable}
        )
        if dead_in_rule:
            kind = "constraint" if rule_.is_constraint else "rule"
            diagnostics.append(
                diag(
                    "GDL023",
                    f"dead {kind} {rule_}: positive body predicate(s) "
                    f"{', '.join(dead_in_rule)} can never hold",
                    span=spans.for_rule(rule_),
                    rule=str(rule_),
                )
            )
    return diagnostics


def unused_diagnostics(program: GDatalogProgram, spans: SpanIndex) -> list[Diagnostic]:
    used: set[Predicate] = set()
    for rule_ in program.rules:
        for atom_ in rule_.positive_body + rule_.negative_body:
            used.add(atom_.predicate)
    diagnostics: list[Diagnostic] = []
    for predicate in sorted(program.intensional_predicates() - used, key=str):
        if predicate == FALSE_PREDICATE or predicate.name.startswith("__"):
            continue
        diagnostics.append(
            diag(
                "GDL024",
                f"predicate {predicate} is derived but never used in any rule body "
                f"(query output?)",
                span=spans.for_predicate(str(predicate)),
                predicate=predicate.name,
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Choice structure (GDL030)
# ---------------------------------------------------------------------------


def _branching_log2(rule_: GDatalogRule, program: GDatalogProgram) -> float:
    """log2 of the rule's per-trigger branch count (lower bound 1 bit per Δ-term)."""
    total = 0.0
    registry = program.registry
    for _position, delta in rule_.delta_terms():
        size = 2.0
        if not any(isinstance(term, Variable) for term in delta.parameters):
            try:
                params = delta.parameter_values()
                distribution = registry.get(delta.distribution.lower())
                if distribution.has_finite_support(params):
                    size = float(max(2, len(list(distribution.support(params)))))
            except Exception:  # noqa: BLE001 - estimates must never fail a check
                size = 2.0
        total += math.log2(size)
    return total


def choice_structure(
    program: GDatalogProgram,
) -> tuple[tuple[tuple[Predicate, ...], ...], dict[tuple[Predicate, ...], float]]:
    """Groups of generative rules whose choice cones overlap.

    Returns ``(groups, log2_estimates)``: each group is the sorted tuple
    of head predicates of a maximal set of generative rules with pairwise
    connected (overlapping) forward cones, and its estimate is the summed
    per-trigger branching in bits — the ``2^n`` joint outcome growth that
    factorization cannot split.
    """
    generative = [r for r in program.rules if not r.is_constraint and r.is_generative]
    if not generative:
        return (), {}
    graph = program.predicate_graph()
    cones = [graph.forward_closure({r.head.predicate}) for r in generative]

    parent = list(range(len(generative)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for i in range(len(generative)):
        for j in range(i + 1, len(generative)):
            if cones[i] & cones[j]:
                ri, rj = find(i), find(j)
                if ri != rj:
                    parent[rj] = ri

    members: dict[int, list[int]] = {}
    for i in range(len(generative)):
        members.setdefault(find(i), []).append(i)

    groups: list[tuple[Predicate, ...]] = []
    estimates: dict[tuple[Predicate, ...], float] = {}
    for indices in members.values():
        if len(indices) < 2:
            continue
        heads = tuple(sorted({generative[i].head.predicate for i in indices}, key=str))
        estimate = sum(_branching_log2(generative[i], program) for i in indices)
        groups.append(heads)
        estimates[heads] = estimates.get(heads, 0.0) + estimate
    groups_sorted = tuple(sorted(set(groups), key=lambda g: tuple(str(p) for p in g)))
    return groups_sorted, estimates


def choice_diagnostics(
    program: GDatalogProgram, spans: SpanIndex
) -> list[Diagnostic]:
    groups, estimates = choice_structure(program)
    diagnostics: list[Diagnostic] = []
    for heads in groups:
        names = ", ".join(str(p) for p in heads)
        bits = estimates.get(heads, 0.0)
        span = None
        for rule_ in program.rules:
            if not rule_.is_constraint and rule_.is_generative and rule_.head.predicate in heads:
                span = spans.for_rule(rule_)
                break
        diagnostics.append(
            diag(
                "GDL030",
                f"{len(heads)} probabilistic choice predicate(s) share derivation "
                f"cones ({names}): the joint outcome space grows as 2^n "
                f"(>= 2^{bits:.1f} joint branches per trigger family) and "
                f"factorization cannot separate them",
                span=span,
                predicate=str(heads[0]),
            )
        )
    return diagnostics


# ---------------------------------------------------------------------------
# Cost smells (GDL040, GDL041)
# ---------------------------------------------------------------------------


def _variable_groups(atoms: Iterable[Atom]) -> list[set[int]]:
    """Union-find the body atoms on shared variables; returns index groups."""
    atoms = list(atoms)
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    by_variable: dict[Variable, int] = {}
    for index, atom_ in enumerate(atoms):
        for variable in atom_.variables():
            if variable in by_variable:
                ri, rj = find(by_variable[variable]), find(index)
                if ri != rj:
                    parent[rj] = ri
            else:
                by_variable[variable] = index
    groups: dict[int, set[int]] = {}
    for index in range(len(atoms)):
        groups.setdefault(find(index), set()).add(index)
    return list(groups.values())


def cost_smell_diagnostics(
    program: GDatalogProgram, spans: SpanIndex
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    for rule_ in program.rules:
        positive = list(rule_.positive_body)
        if len(positive) < 2:
            continue
        groups = _variable_groups(positive)
        open_groups = [
            g for g in groups if any(positive[i].variables() for i in g)
        ]
        if len(open_groups) >= 2:
            diagnostics.append(
                diag(
                    "GDL040",
                    f"cross-product body in {rule_}: {len(open_groups)} "
                    f"variable-disjoint groups of positive atoms multiply "
                    f"into a cartesian join",
                    span=spans.for_rule(rule_),
                    rule=str(rule_),
                )
            )
        if len(groups) < 2:
            continue
        group_of: dict[int, int] = {}
        for gid, g in enumerate(groups):
            for i in g:
                group_of[i] = gid
        var_group: dict[Variable, int] = {}
        for index, atom_ in enumerate(positive):
            for variable in atom_.variables():
                var_group[variable] = group_of[index]
        for negated in rule_.negative_body:
            touched = {var_group[v] for v in negated.variables() if v in var_group}
            if len(touched) >= 2:
                diagnostics.append(
                    diag(
                        "GDL041",
                        f"negated atom {negated} in {rule_} joins "
                        f"{len(touched)} otherwise-disconnected body groups: "
                        f"the negation check runs on their cartesian product",
                        span=spans.for_rule(rule_),
                        rule=str(rule_),
                    )
                )
    return diagnostics
