"""Static program checker for GDatalog¬[Δ]: diagnostics and pre-analysis.

Two entry points:

* :func:`check_source` — full source-level check: parses with
  per-statement error recovery, attaches source spans to every
  diagnostic, and returns a :class:`ProgramAnalysis`.
* :func:`analyze_program` — object-level analysis of an
  already-constructed :class:`~repro.gdatalog.syntax.GDatalogProgram`
  (no spans); the engine and service use it to pre-select execution
  strategies ahead of the first chase.

Diagnostics carry stable ``GDLxxx`` codes (see
:data:`~repro.gdatalog.checker.diagnostics.CODES`), a severity, and the
source span when the source text is available.
"""

from repro.gdatalog.checker.analysis import ProgramAnalysis, analyze_program, check_source
from repro.gdatalog.checker.diagnostics import (
    CODES,
    Diagnostic,
    DiagnosticsError,
    Severity,
    render_diagnostics,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "DiagnosticsError",
    "ProgramAnalysis",
    "Severity",
    "analyze_program",
    "check_source",
    "render_diagnostics",
]
