"""Structured diagnostics: stable codes, severities, rendering.

Every finding of the static checker is a :class:`Diagnostic` with a
stable ``GDLxxx`` code, so tooling (CI manifests, editors, the serve
protocol's 400 responses) can match on codes rather than message text.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.exceptions import SourceSpan, ValidationError

__all__ = [
    "Severity",
    "Diagnostic",
    "DiagnosticsError",
    "CODES",
    "render_diagnostics",
]


class Severity(enum.Enum):
    """Diagnostic severity; ``ERROR`` means the program cannot be evaluated."""

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    def __str__(self) -> str:
        return self.value


#: Stable diagnostic codes and their one-line titles.  Codes are grouped:
#: 00x syntax/safety, 01x stratification, 02x schema, 03x choice structure,
#: 04x cost smells.  Codes are never reused; retired codes stay reserved.
CODES: dict[str, tuple[Severity, str]] = {
    "GDL000": (Severity.ERROR, "syntax error"),
    "GDL001": (Severity.ERROR, "unsafe head variable"),
    "GDL002": (Severity.ERROR, "unsafe negated variable"),
    "GDL003": (Severity.ERROR, "invalid Δ-term"),
    # Not an error: GDatalog¬ evaluates under stable-model semantics, so
    # negative cycles are legal (the paper's fair-coin program depends on
    # one) — but they force the cycle's SCC into every query slice and can
    # kill models, so the checker surfaces them with a witness path.
    "GDL010": (Severity.WARNING, "program is not stratified"),
    "GDL020": (Severity.WARNING, "arity clash"),
    "GDL021": (Severity.WARNING, "fact asserted for derived predicate"),
    "GDL022": (Severity.WARNING, "underivable predicate"),
    "GDL023": (Severity.WARNING, "dead rule"),
    "GDL024": (Severity.INFO, "unused predicate"),
    "GDL030": (Severity.WARNING, "dependent probabilistic choices"),
    "GDL040": (Severity.WARNING, "cross-product body"),
    "GDL041": (Severity.WARNING, "negation joins disconnected body groups"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, severity, message and source location.

    ``origin`` distinguishes findings about the program text from findings
    about the database text (both can carry spans into their respective
    sources).
    """

    code: str
    severity: Severity
    message: str
    span: SourceSpan | None = None
    origin: str = "program"
    predicate: str | None = None
    rule: str | None = field(default=None)

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValidationError(f"unknown diagnostic code {self.code!r}")

    @property
    def title(self) -> str:
        return CODES[self.code][1]

    def render(self, filename: str = "<program>") -> str:
        """Lint-style one-liner: ``file:line:col: severity GDLxxx: message``."""
        location = filename
        if self.span is not None:
            location = f"{filename}:{self.span.line}:{self.span.column}"
        return f"{location}: {self.severity} {self.code}: {self.message}"

    def as_dict(self) -> dict[str, object]:
        payload: dict[str, object] = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
            "origin": self.origin,
        }
        if self.span is not None:
            payload["span"] = self.span.as_dict()
        if self.predicate is not None:
            payload["predicate"] = self.predicate
        if self.rule is not None:
            payload["rule"] = self.rule
        return payload


def render_diagnostics(
    diagnostics: tuple[Diagnostic, ...] | list[Diagnostic],
    filename: str = "<program>",
    database_filename: str = "<database>",
) -> str:
    """Render a batch of diagnostics, one lint-style line each."""
    return "\n".join(
        d.render(database_filename if d.origin == "database" else filename)
        for d in diagnostics
    )


class DiagnosticsError(ValidationError):
    """A validation failure carrying the full structured diagnostics list.

    Raised by the service's validation gate; the serve protocol serialises
    :attr:`diagnostics` into the ``ok: false`` (HTTP 400) response.
    """

    def __init__(self, message: str, diagnostics: tuple[Diagnostic, ...] = ()):
        self.diagnostics = tuple(diagnostics)
        first_span = next((d.span for d in self.diagnostics if d.span is not None), None)
        super().__init__(message, span=first_span)

    def with_span(self, span: SourceSpan | None) -> "DiagnosticsError":
        return self
