"""`ProgramAnalysis`: the checker's summary, cached strategy inputs included.

``check_source`` is the source-level entry point (per-statement error
recovery, spans); ``analyze_program`` is the object-level one used by the
engine and service.  Both produce a :class:`ProgramAnalysis` whose
derived strategy inputs — choice cone, permanent slice seeds, per-query
slice cones, delta patchability, factorization decomposition — are
computed once and reused instead of re-derived per request.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterable, Sequence

from repro.exceptions import ParseError, SourceSpan, ValidationError
from repro.gdatalog.checker.analyses import (
    SpanIndex,
    choice_diagnostics,
    choice_structure,
    cost_smell_diagnostics,
    derivability_diagnostics,
    diag,
    schema_diagnostics,
    stratification_diagnostics,
    unused_diagnostics,
)
from repro.gdatalog.checker.diagnostics import Diagnostic, DiagnosticsError, Severity
from repro.gdatalog.delta_terms import DeltaTerm
from repro.gdatalog.relevance import permanent_seeds as compute_permanent_seeds
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule, HeadAtom
from repro.logic.atoms import Atom, Predicate
from repro.logic.database import Database
from repro.logic.parser import (
    ParsedAtom,
    ParsedDeltaTerm,
    ParsedRule,
    parse_statement_tokens,
    split_statements,
    tokenize,
)
from repro.logic.terms import Variable

__all__ = ["ProgramAnalysis", "analyze_program", "check_source"]


def _sort_key(diagnostic: Diagnostic) -> tuple:
    span = diagnostic.span
    return (
        diagnostic.origin != "program",
        span.line if span is not None else 10**9,
        span.column if span is not None else 10**9,
        diagnostic.code,
        diagnostic.message,
    )


class ProgramAnalysis:
    """The checker's verdict plus precomputed strategy-selection inputs.

    The strategy inputs mirror exactly what the runtime derives on its
    own — :attr:`permanent_seeds` matches
    :func:`repro.gdatalog.relevance.permanent_seeds`,
    :meth:`slice_cone` matches the predicate set of
    :func:`repro.gdatalog.relevance.compute_slice`,
    :meth:`delta_patchable` matches
    :func:`repro.gdatalog.incremental.patch_eligible`, and
    :meth:`decomposition` *is* :func:`repro.gdatalog.factorize.decompose`
    memoised per chase config — so pre-selected strategies produce
    bit-identical answers (the Hypothesis suites pin this).
    """

    def __init__(
        self,
        program: GDatalogProgram,
        database: Database | None,
        diagnostics: Iterable[Diagnostic],
        source: str | None = None,
        database_source: str | None = None,
    ):
        self.program = program
        self.database = database
        self.diagnostics: tuple[Diagnostic, ...] = tuple(sorted(diagnostics, key=_sort_key))
        self.source = source
        self.database_source = database_source

        self.graph = program.predicate_graph()
        self.negative_cycle = self.graph.negative_cycle_witness()
        self.stratified = self.negative_cycle is None
        generative_heads = frozenset(
            r.head.predicate
            for r in program.rules
            if not r.is_constraint and r.is_generative
        )
        self.generative_heads = generative_heads
        self.choice_cone: frozenset[Predicate] = (
            self.graph.forward_closure(generative_heads) if generative_heads else frozenset()
        )
        self.permanent_seeds: frozenset[Predicate] = compute_permanent_seeds(program)
        self.dependent_choice_groups, self._choice_estimates = choice_structure(program)
        self.outcome_space_log2: float = sum(self._choice_estimates.values())
        digest = hashlib.sha256()
        for line in sorted(str(rule) for rule in program.rules):
            digest.update(line.encode("utf-8"))
            digest.update(b"\n")
        self.program_digest = digest.hexdigest()
        self._decompositions: dict[tuple[Database, str], Any] = {}
        self._patchable: dict[frozenset[Predicate], bool] = {}

    # -- verdicts ------------------------------------------------------------

    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def ok(self) -> bool:
        """Whether the program is evaluable (no error-severity diagnostics)."""
        return not self.errors()

    def raise_for_errors(self) -> None:
        """Raise :class:`DiagnosticsError` when any error diagnostic exists."""
        errors = self.errors()
        if errors:
            summary = "; ".join(f"{d.code}: {d.message}" for d in errors[:3])
            if len(errors) > 3:
                summary += f"; ... ({len(errors) - 3} more)"
            raise DiagnosticsError(
                f"program failed static checks ({len(errors)} error(s)): {summary}",
                self.diagnostics,
            )

    # -- strategy pre-selection ----------------------------------------------

    def slice_cone(self, query_atoms: Sequence[Atom | str]) -> frozenset[Predicate]:
        """The relevant-predicate set a slice for *query_atoms* will use.

        Identical to the ``predicates`` field of
        :func:`~repro.gdatalog.relevance.compute_slice` — the backward
        closure of the query predicates and the permanent seeds.
        """
        from repro.logic.parser import parse_atom

        atoms = tuple(parse_atom(a) if isinstance(a, str) else a for a in query_atoms)
        seeds = {a.predicate for a in atoms} | set(self.permanent_seeds)
        return self.graph.backward_closure(seeds)

    def delta_patchable(self, predicates: Iterable[Predicate]) -> bool:
        """Whether a delta over *predicates* admits incremental ``patch`` mode.

        Memoised per predicate set; identical verdict to
        :func:`repro.gdatalog.incremental.patch_eligible` (which receives
        this analysis's cached choice cone when available).
        """
        key = frozenset(predicates)
        cached = self._patchable.get(key)
        if cached is None:
            from repro.gdatalog.incremental import patch_eligible

            cached = patch_eligible(self.program, key, choice_cone=self.choice_cone)
            self._patchable[key] = cached
        return cached

    @property
    def patchable_predicates(self) -> frozenset[Predicate]:
        """Extensional predicates whose single-predicate deltas are patchable."""
        return frozenset(
            p for p in self.program.extensional_predicates() if self.delta_patchable((p,))
        )

    def decomposition(self, translated: Any, database: Database, config: Any) -> Any:
        """The factorization decomposition, memoised per (database, config).

        *translated* must be the translation of this analysis's program
        (the engine passes its own); the result is exactly
        :func:`repro.gdatalog.factorize.decompose`'s, memoised so the
        engine and service reuse the component partition across requests —
        and across delta updates, where the same analysis serves engines
        over different databases.
        """
        key = (database, repr(config))
        if key not in self._decompositions:
            from repro.gdatalog.factorize import decompose

            self._decompositions[key] = decompose(translated, database, config)
        return self._decompositions[key]

    # -- reporting -----------------------------------------------------------

    def strategy_summary(self) -> dict[str, Any]:
        return {
            "stratified": self.stratified,
            "generative_rules": sum(
                1 for r in self.program.rules if not r.is_constraint and r.is_generative
            ),
            "choice_cone": sorted(str(p) for p in self.choice_cone),
            "permanent_slice_seeds": sorted(str(p) for p in self.permanent_seeds),
            "dependent_choice_groups": [
                [str(p) for p in group] for group in self.dependent_choice_groups
            ],
            "outcome_space_log2": round(self.outcome_space_log2, 3),
            "patchable_predicates": sorted(str(p) for p in self.patchable_predicates),
        }

    def as_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors()),
            "warnings": len(self.warnings()),
            "rules": len(self.program),
            "predicates": len(self.program.predicates()),
            "program_digest": self.program_digest,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "strategy": self.strategy_summary(),
        }


# ---------------------------------------------------------------------------
# Object-level entry point
# ---------------------------------------------------------------------------


def _object_level_diagnostics(
    program: GDatalogProgram, database: Database | None, spans: SpanIndex
) -> list[Diagnostic]:
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(stratification_diagnostics(program, spans))
    diagnostics.extend(schema_diagnostics(program, database, spans))
    diagnostics.extend(derivability_diagnostics(program, database, spans))
    diagnostics.extend(unused_diagnostics(program, spans))
    diagnostics.extend(choice_diagnostics(program, spans))
    diagnostics.extend(cost_smell_diagnostics(program, spans))
    return diagnostics


def analyze_program(
    program: GDatalogProgram, database: Database | None = None
) -> ProgramAnalysis:
    """Analyse an already-constructed program (no source spans).

    Safety and Δ-term well-formedness are enforced by construction on
    this path, so only the graph/schema/choice analyses run.
    """
    spans = SpanIndex()
    return ProgramAnalysis(
        program, database, _object_level_diagnostics(program, database, spans)
    )


# ---------------------------------------------------------------------------
# Source-level entry point
# ---------------------------------------------------------------------------


def _parse_error_diag(error: ParseError, origin: str = "program") -> Diagnostic:
    message = str(error)
    span = error.span
    if span is not None:
        # The position is carried structurally; strip the textual suffix.
        suffix = f" (line {error.line}"
        cut = message.rfind(suffix)
        if cut != -1:
            message = message[:cut]
    return diag("GDL000", message, span=span, origin=origin)


def _parsed_atom_variables(atom_: ParsedAtom) -> set[Variable]:
    result: set[Variable] = set()
    for arg in atom_.args:
        if isinstance(arg, Variable):
            result.add(arg)
        elif isinstance(arg, ParsedDeltaTerm):
            for term in arg.parameters + arg.event_signature:
                if isinstance(term, Variable):
                    result.add(term)
    return result


def _record_predicate_spans(statement: ParsedRule, spans: SpanIndex) -> None:
    atoms = list(statement.positive_body) + list(statement.negative_body)
    if statement.head is not None:
        atoms.insert(0, statement.head)
    for atom_ in atoms:
        if atom_.span is not None:
            spans.predicate_spans.setdefault(atom_.name, atom_.span)
            spans.predicate_spans.setdefault(f"{atom_.name}/{len(atom_.args)}", atom_.span)


def _check_statement(
    statement: ParsedRule,
    registry: Any,
    spans: SpanIndex,
    diagnostics: list[Diagnostic],
) -> GDatalogRule | None:
    """Semantic checks for one statement; returns the rule or ``None``."""
    _record_predicate_spans(statement, spans)
    ok = True
    positive_vars: set[Variable] = set()
    for atom_ in statement.positive_body:
        positive_vars |= _parsed_atom_variables(atom_)

    if statement.head is not None:
        unsafe = _parsed_atom_variables(statement.head) - positive_vars
        if unsafe:
            names = ", ".join(sorted(str(v) for v in unsafe))
            diagnostics.append(
                diag(
                    "GDL001",
                    f"unsafe rule: head variable(s) {names} of "
                    f"{statement.head.name} do not occur in the positive body",
                    span=statement.head.span or statement.span,
                    predicate=statement.head.name,
                )
            )
            ok = False
    for atom_ in statement.negative_body:
        unsafe = _parsed_atom_variables(atom_) - positive_vars
        if unsafe:
            names = ", ".join(sorted(str(v) for v in unsafe))
            diagnostics.append(
                diag(
                    "GDL002",
                    f"unsafe negation: variable(s) {names} of negated atom "
                    f"{atom_.name} do not occur in the positive body",
                    span=atom_.span or statement.span,
                    predicate=atom_.name,
                )
            )
            ok = False

    head_args: list[Any] = []
    if statement.head is not None:
        for arg in statement.head.args:
            if isinstance(arg, ParsedDeltaTerm):
                delta_span = arg.span or statement.head.span or statement.span
                if not registry.knows(arg.name):
                    known = ", ".join(sorted(registry.names()))
                    diagnostics.append(
                        diag(
                            "GDL003",
                            f"unknown distribution {arg.name!r} in Δ-term "
                            f"(known: {known})",
                            span=delta_span,
                        )
                    )
                    ok = False
                    continue
                expected = registry.get(arg.name).parameter_dimension
                if expected is not None and len(arg.parameters) != expected:
                    diagnostics.append(
                        diag(
                            "GDL003",
                            f"distribution {arg.name!r} expects {expected} "
                            f"parameter(s), Δ-term supplies {len(arg.parameters)}",
                            span=delta_span,
                        )
                    )
                    ok = False
                    continue
                head_args.append(DeltaTerm(arg.name, arg.parameters, arg.event_signature))
            else:
                head_args.append(arg)
    if not ok:
        return None

    try:
        if statement.is_constraint:
            rule_ = GDatalogRule.constraint(
                tuple(a.to_atom() for a in statement.positive_body),
                tuple(a.to_atom() for a in statement.negative_body),
            )
        else:
            assert statement.head is not None
            head = HeadAtom(
                Predicate(statement.head.name, len(head_args)), tuple(head_args)
            )
            rule_ = GDatalogRule(
                head,
                tuple(a.to_atom() for a in statement.positive_body),
                tuple(a.to_atom() for a in statement.negative_body),
            )
    except (ValidationError, ParseError) as error:
        diagnostics.append(
            diag("GDL003", f"invalid statement: {error}", span=statement.span)
        )
        return None
    if statement.span is not None:
        spans.rule_spans.setdefault(rule_, statement.span)
    return rule_


def _check_database_source(
    database_source: str, spans: SpanIndex, diagnostics: list[Diagnostic]
) -> Database:
    facts: list[Atom] = []
    try:
        tokens = tokenize(database_source)
    except ParseError as error:
        diagnostics.append(_parse_error_diag(error, origin="database"))
        return Database(())
    for group in split_statements(tokens):
        try:
            statement = parse_statement_tokens(group)
        except ParseError as error:
            diagnostics.append(_parse_error_diag(error, origin="database"))
            continue
        span = statement.span
        if statement.is_constraint or statement.positive_body or statement.negative_body:
            diagnostics.append(
                diag("GDL000", "databases may only contain facts", span=span,
                     origin="database")
            )
            continue
        assert statement.head is not None
        if statement.head.has_delta:
            diagnostics.append(
                diag("GDL000", "database facts cannot contain Δ-terms", span=span,
                     origin="database")
            )
            continue
        fact = statement.head.to_atom()
        if not fact.is_ground:
            diagnostics.append(
                diag("GDL000", f"database facts must be ground, got {fact}",
                     span=span, origin="database")
            )
            continue
        facts.append(fact)
        if span is not None:
            spans.fact_spans.setdefault(fact, span)
    return Database(facts)


def check_source(
    program_source: str,
    database_source: str = "",
    registry: Any = None,
) -> ProgramAnalysis:
    """Statically check program (and optional database) source text.

    Parsing recovers per statement: one malformed statement yields one
    ``GDL000`` diagnostic and checking continues with the rest, so a
    single check reports as many findings as possible.  The returned
    analysis's program contains every well-formed rule (it equals the
    user's program exactly when :attr:`ProgramAnalysis.ok` holds).
    """
    from repro.distributions.registry import default_registry

    active_registry = registry if registry is not None else default_registry()
    diagnostics: list[Diagnostic] = []
    spans = SpanIndex()
    rules: list[GDatalogRule] = []

    try:
        tokens = tokenize(program_source)
    except ParseError as error:
        diagnostics.append(_parse_error_diag(error))
        tokens = []
    for group in split_statements(tokens):
        try:
            statement = parse_statement_tokens(group)
        except ParseError as error:
            diagnostics.append(_parse_error_diag(error))
            continue
        rule_ = _check_statement(statement, active_registry, spans, diagnostics)
        if rule_ is not None:
            rules.append(rule_)

    database = _check_database_source(database_source, spans, diagnostics)

    try:
        program = GDatalogProgram(rules, active_registry)
    except ValidationError as error:
        diagnostics.append(diag("GDL003", f"invalid program: {error}"))
        program = GDatalogProgram((), active_registry)

    diagnostics.extend(_object_level_diagnostics(program, database, spans))
    return ProgramAnalysis(
        program,
        database,
        diagnostics,
        source=program_source,
        database_source=database_source,
    )
