"""Translation of GDatalog¬[Δ] programs into TGD¬ programs (Section 3).

For a rule ``ρ``::

    R1(ū1), ..., Rn(ūn), ¬P1(v̄1), ..., ¬Pm(v̄m) → R0(w̄)

whose head carries Δ-terms ``δ1⟨p̄1⟩[q̄1], ..., δr⟨p̄r⟩[q̄r]`` the set ``ρ∃``
consists of:

* one **activation rule** per Δ-term: ``body → Active^δj(p̄j, q̄j)``,
* one **active-to-result TGD** per Δ-term:
  ``Active^δj(p̄j, q̄j) → ∃yj Result^δj(p̄j, q̄j, yj)``  (represented here by
  its :class:`~repro.gdatalog.atr.AtRSpec`, since all its ground instances
  are generated lazily by the chase), and
* one **result-consumption rule**:
  ``Result^δ1(p̄1, q̄1, y1), ..., Result^δr(p̄r, q̄r, yr), body → R0(w̄')``
  with the Δ-terms of ``w̄`` replaced by the fresh variables ``yj``.

Rules without Δ-terms translate to themselves.  ``Σ_Π = ⋃ρ ρ∃``; the
existential-free part ``Σ∄_Π`` is what grounders manipulate, the AtR part
``Σ∃_Π`` is represented by the collected specs.

The same module also implements the **BCKOV translation** (appendix C) used
by the positive-semantics baseline: identical except that the activation
rules are omitted and the existential TGD quantifies directly over the rule
body.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import GroundingError, ValidationError
from repro.gdatalog.atr import AtRSpec
from repro.gdatalog.delta_terms import DeltaTerm
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule, HeadAtom
from repro.logic.atoms import Atom, Predicate
from repro.logic.rules import FALSE_ATOM, Rule
from repro.logic.terms import Constant, Term, Variable

__all__ = ["RuleTranslation", "TranslatedProgram", "translate_program", "translate_rule"]


@dataclass(frozen=True)
class RuleTranslation:
    """The translation ``ρ∃`` of a single GDatalog¬[Δ] rule."""

    source: GDatalogRule
    #: Existential-free TGD¬ rules produced for this rule (activation rules,
    #: the result-consumption rule, or the rule itself if non-generative).
    rules: tuple[Rule, ...]
    #: AtR specs for the Δ-terms of the rule head (empty for non-generative rules).
    atr_specs: tuple[AtRSpec, ...]


@dataclass(frozen=True)
class TranslatedProgram:
    """``Σ_Π`` split into its existential-free part and its AtR specs."""

    program: GDatalogProgram
    translations: tuple[RuleTranslation, ...]

    # -- views ----------------------------------------------------------------

    @property
    def existential_free_rules(self) -> tuple[Rule, ...]:
        """``Σ∄_Π``: all existential-free rules of the translation."""
        collected: list[Rule] = []
        for translation in self.translations:
            collected.extend(translation.rules)
        return tuple(collected)

    @property
    def atr_specs(self) -> tuple[AtRSpec, ...]:
        """All distinct AtR specs (``Σ∃_Π`` up to grounding)."""
        seen: dict[AtRSpec, None] = {}
        for translation in self.translations:
            for spec in translation.atr_specs:
                seen.setdefault(spec, None)
        return tuple(seen)

    @property
    def active_predicates(self) -> frozenset[Predicate]:
        return frozenset(spec.active_predicate for spec in self.atr_specs)

    @property
    def result_predicates(self) -> frozenset[Predicate]:
        return frozenset(spec.result_predicate for spec in self.atr_specs)

    @property
    def auxiliary_predicate_names(self) -> frozenset[str]:
        """Names of the fresh predicates introduced by the translation."""
        names = {p.name for p in self.active_predicates} | {p.name for p in self.result_predicates}
        return frozenset(names)

    def spec_for_active(self, predicate: Predicate) -> AtRSpec:
        for spec in self.atr_specs:
            if spec.active_predicate == predicate:
                return spec
        raise GroundingError(f"no AtR spec for predicate {predicate}")

    def rules_for_head_predicates(self, predicates: Iterable[Predicate]) -> tuple[Rule, ...]:
        """``Σ∄_{Π|C}``: existential-free rules stemming from source rules with head in *predicates*.

        Constraints (head ``⊥``) are included only when ``FALSE`` is passed
        explicitly in *predicates*; the perfect grounder attaches them to the
        final stratum.
        """
        allowed = set(predicates)
        collected: list[Rule] = []
        for translation in self.translations:
            if translation.source.head.predicate in allowed:
                collected.extend(translation.rules)
        return tuple(collected)

    def strip_auxiliary(self, atoms: Iterable[Atom]) -> frozenset[Atom]:
        """Drop Active/Result atoms from an interpretation ("modulo active/result")."""
        auxiliary = self.auxiliary_predicate_names
        return frozenset(a for a in atoms if a.predicate.name not in auxiliary)

    def strip_active(self, atoms: Iterable[Atom]) -> frozenset[Atom]:
        """Drop only the Active atoms (the paper's "modulo active")."""
        active_names = {p.name for p in self.active_predicates}
        return frozenset(a for a in atoms if a.predicate.name not in active_names)


# -- translation of a single rule ------------------------------------------------


def _fresh_variable(index: int, taken: set[Variable]) -> Variable:
    name = f"Fresh_{index}"
    while Variable(name) in taken:
        name = "_" + name
    return Variable(name)


def translate_rule(rule_: GDatalogRule, bckov: bool = False) -> RuleTranslation:
    """Translate one GDatalog¬[Δ] rule into ``ρ∃`` (or its BCKOV variant)."""
    deltas = rule_.delta_terms()
    if not deltas:
        return RuleTranslation(rule_, (rule_.to_rule(),), ())

    taken = rule_.variables()
    specs: list[AtRSpec] = []
    produced: list[Rule] = []
    fresh_for_position: dict[int, Variable] = {}
    result_atoms: list[Atom] = []

    for j, (position, delta) in enumerate(deltas):
        spec = AtRSpec(
            distribution=delta.distribution.lower(),
            parameter_count=delta.parameter_dimension,
            event_count=delta.event_arity,
        )
        specs.append(spec)
        fresh = _fresh_variable(j, taken)
        taken.add(fresh)
        fresh_for_position[position] = fresh

        active_atom = Atom(spec.active_predicate, delta.parameters + delta.event_signature)
        result_atom = Atom(
            spec.result_predicate, delta.parameters + delta.event_signature + (fresh,)
        )
        result_atoms.append(result_atom)
        if not bckov:
            produced.append(Rule(active_atom, rule_.positive_body, rule_.negative_body))

    head_args: list[Term] = []
    for position, arg in enumerate(rule_.head.args):
        if isinstance(arg, DeltaTerm):
            head_args.append(fresh_for_position[position])
        else:
            head_args.append(arg)
    consumption_head = Atom(rule_.head.predicate, tuple(head_args))
    produced.append(
        Rule(
            consumption_head,
            tuple(result_atoms) + rule_.positive_body,
            rule_.negative_body,
        )
    )
    return RuleTranslation(rule_, tuple(produced), tuple(specs))


def translate_program(program: GDatalogProgram, bckov: bool = False) -> TranslatedProgram:
    """Translate a GDatalog¬[Δ] program into ``Σ_Π`` (or ``Σ̃_Π`` with ``bckov=True``)."""
    reserved = {"active_", "result_"}
    for predicate in program.predicates():
        if any(predicate.name.startswith(prefix) for prefix in reserved):
            raise ValidationError(
                f"predicate name {predicate.name!r} clashes with the reserved Active/Result namespace"
            )
    translations = tuple(translate_rule(rule_, bckov=bckov) for rule_ in program.rules)
    return TranslatedProgram(program, translations)
