"""Dependency-graph utilities for GDatalog¬ programs (Figure 1 of the paper).

The core dependency analysis (edges, SCCs, stratification) lives on
:class:`repro.logic.program.DependencyGraph`; this module adds exports to
``networkx`` and to Graphviz DOT / ASCII renderings used by the examples and
the Figure-1 benchmark.
"""

from __future__ import annotations

import networkx as nx

from repro.gdatalog.syntax import GDatalogProgram
from repro.logic.program import DependencyGraph

__all__ = ["to_networkx", "to_dot", "format_dependency_graph", "format_stratification"]


def to_networkx(program: GDatalogProgram) -> nx.MultiDiGraph:
    """Export ``dg(Π)`` as a ``networkx`` multigraph with a ``negative`` edge attribute."""
    graph: DependencyGraph = program.dependency_graph()
    result = nx.MultiDiGraph()
    for predicate in sorted(graph.vertices, key=str):
        result.add_node(predicate.name, arity=predicate.arity)
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        result.add_edge(source.name, target.name, negative=False)
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        result.add_edge(source.name, target.name, negative=True)
    return result


def to_dot(program: GDatalogProgram, name: str = "dependency_graph") -> str:
    """Render ``dg(Π)`` in Graphviz DOT syntax (negative edges dashed, as in Figure 1)."""
    graph = program.dependency_graph()
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for predicate in sorted(graph.vertices, key=str):
        lines.append(f'  "{predicate.name}";')
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f'  "{source.name}" -> "{target.name}";')
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f'  "{source.name}" -> "{target.name}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines)


def format_dependency_graph(program: GDatalogProgram) -> str:
    """An ASCII listing of the edges of ``dg(Π)`` (negative edges marked ``[neg]``)."""
    graph = program.dependency_graph()
    lines = []
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"{source.name} -> {target.name}")
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"{source.name} -> {target.name} [neg]")
    return "\n".join(lines)


def format_stratification(program: GDatalogProgram) -> str:
    """A one-line-per-stratum rendering of a topological ordering over ``scc(Π)``."""
    lines = []
    for i, component in enumerate(program.stratification(), start=1):
        names = ", ".join(sorted(p.name for p in component))
        lines.append(f"C{i}: {{{names}}}")
    return "\n".join(lines)
