"""Dependency-graph utilities for GDatalog¬ programs (Figure 1 of the paper).

The core dependency analysis (edges, SCCs, stratification) lives on
:class:`repro.logic.program.DependencyGraph`; this module adds exports to
``networkx`` and to Graphviz DOT / ASCII renderings used by the examples and
the Figure-1 benchmark, plus the *ground* dependency analysis used by the
factorized-inference decomposition (:mod:`repro.gdatalog.factorize`):
connected components of the co-occurrence graph over ground atoms.
"""

from __future__ import annotations

from typing import Iterable

import networkx as nx

from repro.gdatalog.syntax import GDatalogProgram
from repro.logic.atoms import Atom
from repro.logic.program import DependencyGraph
from repro.logic.rules import Rule

__all__ = [
    "to_networkx",
    "to_dot",
    "format_dependency_graph",
    "format_stratification",
    "ground_atom_components",
]


def ground_atom_components(
    rules: Iterable[Rule],
    links: Iterable[tuple[Atom, Atom]] = (),
    extra_atoms: Iterable[Atom] = (),
) -> list[frozenset[Atom]]:
    """Connected components of the ground-atom co-occurrence graph.

    Two atoms are connected when they occur in the same ground rule — head,
    positive or negative body; sharing a rule couples the atoms in every
    stable-model computation — or through an explicit *links* edge (the
    factorizer links each Active atom to its Result atoms, mirroring the AtR
    TGDs).  Constraints contribute only their body atoms: their ``⊥`` head is
    shared by every constraint and must not glue unrelated components
    together.  *extra_atoms* seeds isolated vertices (e.g. database facts
    never matched by any rule).  Components are returned sorted by their
    smallest atom, so the partition is deterministic.
    """
    parent: dict[Atom, Atom] = {}

    def find(atom: Atom) -> Atom:
        root = atom
        while parent.setdefault(root, root) != root:
            root = parent[root]
        while parent[atom] != root:  # path compression
            parent[atom], atom = root, parent[atom]
        return root

    def union(first: Atom, second: Atom) -> None:
        root_first, root_second = find(first), find(second)
        if root_first != root_second:
            parent[root_second] = root_first

    for rule_ in rules:
        atoms = list(rule_.positive_body) + list(rule_.negative_body)
        if not rule_.is_constraint:
            atoms.append(rule_.head)
        for atom_ in atoms[1:]:
            union(atoms[0], atom_)
        if len(atoms) == 1:
            find(atoms[0])
    for source, target in links:
        union(source, target)
    for atom_ in extra_atoms:
        find(atom_)

    grouped: dict[Atom, set[Atom]] = {}
    for atom_ in parent:
        grouped.setdefault(find(atom_), set()).add(atom_)
    components = [frozenset(members) for members in grouped.values()]
    components.sort(key=lambda component: min(a.sort_key() for a in component))
    return components


def to_networkx(program: GDatalogProgram) -> nx.MultiDiGraph:
    """Export ``dg(Π)`` as a ``networkx`` multigraph with a ``negative`` edge attribute."""
    graph: DependencyGraph = program.dependency_graph()
    result = nx.MultiDiGraph()
    for predicate in sorted(graph.vertices, key=str):
        result.add_node(predicate.name, arity=predicate.arity)
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        result.add_edge(source.name, target.name, negative=False)
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        result.add_edge(source.name, target.name, negative=True)
    return result


def to_dot(program: GDatalogProgram, name: str = "dependency_graph") -> str:
    """Render ``dg(Π)`` in Graphviz DOT syntax (negative edges dashed, as in Figure 1)."""
    graph = program.dependency_graph()
    lines = [f"digraph {name} {{", "  rankdir=LR;"]
    for predicate in sorted(graph.vertices, key=str):
        lines.append(f'  "{predicate.name}";')
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f'  "{source.name}" -> "{target.name}";')
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f'  "{source.name}" -> "{target.name}" [style=dashed];')
    lines.append("}")
    return "\n".join(lines)


def format_dependency_graph(program: GDatalogProgram) -> str:
    """An ASCII listing of the edges of ``dg(Π)`` (negative edges marked ``[neg]``)."""
    graph = program.dependency_graph()
    lines = []
    for source, target in sorted(graph.positive_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"{source.name} -> {target.name}")
    for source, target in sorted(graph.negative_edges, key=lambda e: (str(e[0]), str(e[1]))):
        lines.append(f"{source.name} -> {target.name} [neg]")
    return "\n".join(lines)


def format_stratification(program: GDatalogProgram) -> str:
    """A one-line-per-stratum rendering of a topological ordering over ``scc(Π)``."""
    lines = []
    for i, component in enumerate(program.stratification(), start=1):
        names = ", ".join(sorted(p.name for p in component))
        lines.append(f"C{i}: {{{names}}}")
    return "\n".join(lines)
