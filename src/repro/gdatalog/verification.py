"""Empirical verification of the grounder axioms (Definition 3.3).

The paper's future-work section calls for *sophisticated grounders* beyond
``GSimple`` and ``GPerfect``.  Anyone implementing a custom
:class:`~repro.gdatalog.grounders.Grounder` needs to establish two properties
(Definition 3.3):

1. **Monotonicity** — ``Σ ⊆ Σ'`` implies ``G(Σ) ⊆ G(Σ')``.
2. **Semantic adequacy** — whenever ``AtR_Σ ↩→ G(Σ)``, the stable models of
   ``G(Σ) ∪ Σ`` coincide with those of ``Σ∄_{Π[D]} ∪ Σ'`` for every totalizer
   ``Σ'`` of ``AtR_Σ``.

Proving this for arbitrary grounders is out of scope for a library, but the
functions in this module *check* both properties on concrete AtR sets (for
instance, all the sets visited by a chase), which is how the test suite turns
Propositions 3.5 and 5.2 into executable evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Sequence

from repro.gdatalog.atr import GroundAtRRule, pending_active_atoms
from repro.gdatalog.chase import ChaseConfig, ChaseEngine
from repro.gdatalog.grounders import Grounder, heads_of
from repro.logic.atoms import Atom
from repro.logic.rules import Rule, fact_rule
from repro.stable.grounding import ground_program
from repro.logic.program import DatalogProgram
from repro.stable.solver import SolverConfig, StableModelSolver

__all__ = [
    "GrounderCheckReport",
    "totalizers_of",
    "reference_stable_models",
    "check_semantic_adequacy",
    "check_monotonicity",
    "collect_chase_atr_sets",
]


@dataclass(frozen=True)
class GrounderCheckReport:
    """Outcome of a verification run over a collection of AtR sets."""

    checked_sets: int
    failures: tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures

    def __str__(self) -> str:
        status = "OK" if self.ok else f"{len(self.failures)} failure(s)"
        return f"GrounderCheckReport({self.checked_sets} AtR sets checked, {status})"


def collect_chase_atr_sets(
    grounder: Grounder, config: ChaseConfig | None = None, include_internal_nodes: bool = True
) -> list[frozenset[GroundAtRRule]]:
    """All AtR sets labelling the nodes of a chase tree for *grounder*.

    These are precisely the consistent AtR sets that matter in practice; leaf
    labels are the terminals.
    """
    engine = ChaseEngine(grounder, config or ChaseConfig())
    collected: list[frozenset[GroundAtRRule]] = []
    stack = [engine.root()]
    while stack:
        node = stack.pop()
        triggers = node.triggers(grounder)
        if include_internal_nodes or not triggers:
            collected.append(node.atr_rules)
        if triggers and node.depth < engine.config.max_depth:
            stack.extend(engine.expand(node, engine.select_trigger(triggers)))
    return collected


def totalizers_of(
    grounder: Grounder, atr_rules: frozenset[GroundAtRRule], max_extra_atoms: int = 3
) -> Iterable[frozenset[GroundAtRRule]]:
    """Enumerate totalizers of ``AtR_Σ`` restricted to the Active atoms of ``G(Σ)``.

    A totalizer extends ``Σ`` with one Result choice for every still-uncovered
    Active atom occurring in the grounding.  (The paper's totalizers range
    over *all* Active atoms of the infinite grounding; for the semantic
    adequacy check only the atoms of ``G(Σ)`` are relevant because only they
    occur in rule bodies of ``G(Σ) ∪ Σ``.)
    """
    grounding = grounder.ground(atr_rules)
    pending = pending_active_atoms(atr_rules, heads_of(grounding), grounder.active_predicates)
    if len(pending) > max_extra_atoms:
        pending = pending[:max_extra_atoms]
    registry = grounder.translated.program.registry

    per_atom_choices: list[list[GroundAtRRule]] = []
    for active_atom in pending:
        spec = grounder.translated.spec_for_active(active_atom.predicate)
        distribution = registry.get(spec.distribution)
        params = spec.parameters_of(active_atom)
        outcomes, _mass = distribution.truncated_support(params, mass_tolerance=1e-6, max_outcomes=8)
        per_atom_choices.append([GroundAtRRule.of(spec, active_atom, o) for o in outcomes])

    if not per_atom_choices:
        yield atr_rules
        return
    for combination in product(*per_atom_choices):
        yield atr_rules | frozenset(combination)


def reference_stable_models(
    grounder: Grounder, totalizer: frozenset[GroundAtRRule]
) -> frozenset[frozenset[Atom]]:
    """``sms(Σ∄_{Π[D]} ∪ Σ')`` computed from scratch (the right-hand side of Definition 3.3).

    The existential-free translation is grounded against the database facts
    *and* the Result atoms fixed by the totalizer, then solved with the
    stable-model engine.
    """
    translated = grounder.translated
    program = DatalogProgram(translated.existential_free_rules)
    seed_atoms = list(grounder.database.facts) + [rule_.result_atom for rule_ in totalizer]
    ground = ground_program(program, seed_atoms)
    # The Result atoms come from AtR rules, not from facts; replace the fact
    # rules synthesized for them by the corresponding AtR rules so that the
    # Result atom is only derivable when its Active atom is.
    result_atoms = {rule_.result_atom for rule_ in totalizer}
    adjusted: list[Rule] = [r for r in ground.rules if not (r.is_fact and r.head in result_atoms)]
    adjusted.extend(rule_.as_rule() for rule_ in totalizer)
    solver = StableModelSolver(SolverConfig())
    return frozenset(solver.enumerate(adjusted))


def check_semantic_adequacy(
    grounder: Grounder,
    atr_sets: Sequence[frozenset[GroundAtRRule]],
    max_totalizers: int = 8,
) -> GrounderCheckReport:
    """Check Definition 3.3's stable-model condition on the given AtR sets."""
    solver = StableModelSolver(SolverConfig())
    failures: list[str] = []
    checked = 0
    for atr_rules in atr_sets:
        grounding = grounder.ground(atr_rules)
        if pending_active_atoms(atr_rules, heads_of(grounding), grounder.active_predicates):
            continue  # compatibility does not hold; nothing to check
        checked += 1
        left = frozenset(
            solver.enumerate(tuple(grounding) + tuple(r.as_rule() for r in atr_rules))
        )
        for i, totalizer in enumerate(totalizers_of(grounder, atr_rules)):
            if i >= max_totalizers:
                break
            right = reference_stable_models(grounder, totalizer)
            if left != right:
                failures.append(
                    f"AtR set of size {len(atr_rules)}: sms(G(Σ) ∪ Σ) has {len(left)} models, "
                    f"reference has {len(right)}"
                )
                break
    return GrounderCheckReport(checked, tuple(failures))


def check_monotonicity(
    grounder: Grounder, atr_sets: Sequence[frozenset[GroundAtRRule]]
) -> GrounderCheckReport:
    """Check ``Σ ⊆ Σ' ⇒ G(Σ) ⊆ G(Σ')`` on every comparable pair of the given sets."""
    failures: list[str] = []
    checked = 0
    groundings = {atr_rules: grounder.ground(atr_rules) for atr_rules in set(atr_sets)}
    ordered = list(groundings)
    for smaller in ordered:
        for larger in ordered:
            if smaller == larger or not smaller <= larger:
                continue
            checked += 1
            if not groundings[smaller] <= groundings[larger]:
                missing = groundings[smaller] - groundings[larger]
                failures.append(
                    f"monotonicity violated: {len(missing)} rule(s) of G(Σ) missing from G(Σ')"
                )
    return GrounderCheckReport(checked, tuple(failures))
