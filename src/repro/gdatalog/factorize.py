"""Factorized exact inference via independent-component decomposition.

Exhaustive chase enumeration is exponential in the number of probabilistic
choices even when the choices never interact: *n* independent coin flips
cost ``2^n`` materialized outcomes in a flat
:class:`~repro.gdatalog.probability_space.OutputSpace`.  But when the ground
program and database split into components that share no ground atom, the
output space ``Π_G(D)`` is literally a product measure — the chase, the
stable-model computation and most queries decompose per component (the
ground-level analogue of the paper's stratified dependency analysis, and the
PPDL reading of independent generative sub-programs).

The decomposition works on the **union grounding**: starting from the
database facts, the program is saturated with *every* probabilistic choice
of positive probability (all truncated-support outcomes of every Active atom
ever derivable), which by monotonicity of the grounders over-approximates
``G(Σ)`` for every chase-reachable ``Σ``.  Connected components of the
resulting ground-atom co-occurrence graph
(:func:`~repro.gdatalog.dependency.ground_atom_components`) therefore
partition every outcome's ground program; each component is chased
independently on its own sub-database, and the full space is represented as
a :class:`ProductSpace` that

* enumerates joint outcomes **lazily** (no ``∏ |Ω_i|`` materialization),
* answers ``marginal`` / ``probability_has_stable_model`` by touching only
  the component an atom depends on (everything else contributes a cached
  scalar), and
* combines events and conditioning per component where independence allows.

Factorization is sound only when every derivation starts from the database:
programs with unconditional rules (empty positive body — their heads would
re-fire in *every* component's sub-chase) and programs whose ground
dependency graph is connected fall back to the sequential engine;
:func:`factorized_space` returns ``None`` in those cases and callers keep
the flat :class:`OutputSpace` path.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Sequence

from repro.exceptions import InferenceError
from repro.gdatalog.atr import GroundAtRRule
from repro.gdatalog.chase import ChaseConfig, ChaseEngine, ChaseResult
from repro.gdatalog.dependency import ground_atom_components
from repro.gdatalog.grounders import Grounder, heads_of
from repro.gdatalog.outcomes import PossibleOutcome
from repro.gdatalog.probability_space import (
    AbstractSpace,
    Event,
    ModelSet,
    OutputSpace,
    ZERO_MASS_EPSILON,
)
from repro.gdatalog.translate import TranslatedProgram
from repro.logic.atoms import Atom
from repro.logic.database import Database
from repro.logic.intern import intern_rule
from repro.logic.rules import Rule, fact_rule

__all__ = [
    "Component",
    "Decomposition",
    "ComponentSpace",
    "ProductSpace",
    "saturated_grounding",
    "decompose",
    "component_space",
    "explore_component_spaces",
    "factorized_space",
]


# ---------------------------------------------------------------------------
# Union grounding (saturation over all probabilistic choices)
# ---------------------------------------------------------------------------


def saturated_grounding(
    translated: TranslatedProgram, database: Database, config: ChaseConfig
) -> tuple[frozenset[Rule], frozenset[GroundAtRRule]] | None:
    """The union grounding over *all* probabilistic choices.

    Repeatedly grounds (ignoring negation, as the simple grounder does) and
    adds, for every newly derived Active atom, one ground AtR rule per
    outcome of positive probability in its truncated support — the same
    truncation the chase applies, so every chase-reachable choice is
    covered.  Returns ``(ground_rules, atr_union)`` once no new Active atom
    appears, or ``None`` when the loop exceeds ``config.max_depth`` rounds
    (a chase that deep is truncated anyway; callers fall back).

    The AtR union is functionally *inconsistent* on purpose (every outcome
    of every trigger at once); it is an analysis artifact, never a chase
    configuration.
    """
    registry = translated.program.registry
    initial_rules = tuple(
        intern_rule(fact_rule(a)) for a in sorted(database.facts, key=Atom.sort_key)
    )
    specs = {spec.active_predicate: spec for spec in translated.atr_specs}
    atr_union: set[GroundAtRRule] = set()
    covered: set[Atom] = set()
    for _round in range(max(config.max_depth, 1) + 1):
        derived = Grounder._saturate(
            non_ground_rules=translated.existential_free_rules,
            atr_rules=atr_union,
            initial_rules=initial_rules,
            respect_negation=False,
        )
        pending = [
            atom_
            for atom_ in heads_of(derived)
            if atom_.predicate in specs and atom_ not in covered
        ]
        if not pending:
            atr_plain = {r.as_rule() for r in atr_union}
            return frozenset(derived - atr_plain), frozenset(atr_union)
        for active in sorted(pending, key=Atom.sort_key):
            covered.add(active)
            spec = specs[active.predicate]
            distribution = registry.get(spec.distribution)
            params = spec.parameters_of(active)
            outcomes, _mass = distribution.truncated_support(
                params,
                mass_tolerance=config.mass_tolerance,
                max_outcomes=config.max_support,
            )
            for outcome in outcomes:
                if distribution.pmf(params, outcome) > 0.0:
                    atr_union.add(GroundAtRRule.of(spec, active, outcome))
    return None


# ---------------------------------------------------------------------------
# Decomposition
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Component:
    """One independent block of the ground program: its atoms and database facts.

    ``generative`` components contain at least one Active atom (their chase
    branches); the single non-generative *base* component collects everything
    deterministic.
    """

    atoms: frozenset[Atom]
    facts: tuple[Atom, ...]
    generative: bool

    def __len__(self) -> int:
        return len(self.atoms)


@dataclass(frozen=True)
class Decomposition:
    """The independent-component partition of ``Π[D]``'s ground atoms."""

    components: tuple[Component, ...]

    @property
    def generative_count(self) -> int:
        return sum(1 for c in self.components if c.generative)

    def __len__(self) -> int:
        return len(self.components)


def decompose(
    translated: TranslatedProgram, database: Database, config: ChaseConfig
) -> Decomposition | None:
    """Partition the program's ground atoms into independent components.

    Returns ``None`` — callers fall back to the sequential engine — when

    * the translation contains a non-constraint rule with an empty positive
      body (its head would be re-derived inside every component's
      sub-chase, breaking disjointness),
    * the saturation does not converge within ``config.max_depth`` rounds, or
    * fewer than two *generative* components exist (a connected ground
      dependency graph: nothing to factorize).

    All non-generative components are merged into one deterministic base
    component (kept only when it carries facts), so the product never pays
    per-singleton overhead for untouched facts.
    """
    if any(not r.positive_body and not r.is_constraint for r in translated.existential_free_rules):
        return None
    saturated = saturated_grounding(translated, database, config)
    if saturated is None:
        return None
    rules, atr_union = saturated
    links = [(r.active_atom, r.result_atom) for r in atr_union]
    atom_components = ground_atom_components(rules, links=links, extra_atoms=database.facts)

    active_atoms = {r.active_atom for r in atr_union}
    component_of: dict[Atom, int] = {}
    for index, members in enumerate(atom_components):
        for atom_ in members:
            component_of[atom_] = index
    facts_by_component: dict[int, list[Atom]] = {}
    for atom_ in sorted(database.facts, key=Atom.sort_key):
        facts_by_component.setdefault(component_of[atom_], []).append(atom_)

    generative: list[Component] = []
    base_atoms: set[Atom] = set()
    base_facts: list[Atom] = []
    for index, members in enumerate(atom_components):
        facts = tuple(facts_by_component.get(index, ()))
        if members & active_atoms:
            generative.append(Component(members, facts, True))
        else:
            base_atoms |= members
            base_facts.extend(facts)
    if len(generative) < 2:
        return None
    components = tuple(generative)
    if base_facts:
        components += (
            Component(frozenset(base_atoms), tuple(sorted(base_facts, key=Atom.sort_key)), False),
        )
    return Decomposition(components)


# ---------------------------------------------------------------------------
# Per-component spaces and their product
# ---------------------------------------------------------------------------


class ComponentSpace:
    """One component's chased :class:`OutputSpace` plus its routing metadata."""

    __slots__ = ("component", "space", "has_model_probability", "finite_probability")

    def __init__(self, component: Component, space: OutputSpace):
        self.component = component
        self.space = space
        # Cached scalars: every query touching a *different* component only
        # needs these two numbers from this one.
        self.finite_probability = space.finite_probability
        self.has_model_probability = space.probability_has_stable_model()

    def __len__(self) -> int:
        return len(self.space)


def component_space(
    grounder: Grounder, component: Component, config: ChaseConfig
) -> ComponentSpace:
    """Chase one component on its own sub-database (same grounder family)."""
    sub_grounder = type(grounder)(grounder.translated, Database(component.facts))
    result = ChaseEngine(sub_grounder, config).run()
    return ComponentSpace(component, OutputSpace(result.outcomes, result.error_probability))


class ProductSpace(AbstractSpace):
    """``Π_G(D)`` as a product of independent per-component spaces.

    Joint outcomes are enumerated lazily (:meth:`__iter__`); queries that
    route to a single component (:meth:`marginal`,
    :meth:`probability_has_stable_model`, the per-component conditioning
    fast path in :mod:`repro.ppdl.conditioning`) never build them at all.
    Generic predicates (:meth:`probability`, :meth:`conditional`) fall back
    to the lazy joint enumeration, which costs ``∏ |Ω_i|`` time but O(1)
    extra memory.
    """

    def __init__(self, components: Sequence[ComponentSpace], translated: TranslatedProgram):
        if not components:
            raise InferenceError("a product space needs at least one component")
        self._components = tuple(components)
        self._translated = translated
        self._atom_component: dict[Atom, int] | None = None

    @property
    def components(self) -> tuple[ComponentSpace, ...]:
        return self._components

    @property
    def translated(self) -> TranslatedProgram:
        return self._translated

    @classmethod
    def merge(cls, spaces: Iterable["ProductSpace"]) -> "ProductSpace":
        """The product over the union of the spaces' (disjoint) components."""
        collected: list[ComponentSpace] = []
        translated: TranslatedProgram | None = None
        for space in spaces:
            collected.extend(space._components)
            translated = space._translated
        if translated is None:
            raise InferenceError("cannot merge an empty collection of product spaces")
        return cls(collected, translated)

    # -- routing -----------------------------------------------------------------

    def component_of(self, atom: Atom) -> int | None:
        """The index of the component whose ground program can derive *atom*."""
        if self._atom_component is None:
            self._atom_component = {
                atom_: index
                for index, component in enumerate(self._components)
                for atom_ in component.component.atoms
            }
        return self._atom_component.get(atom)

    # -- basic accounting ----------------------------------------------------------

    @property
    def error_probability(self) -> float:
        """``1 - ∏ P_i(Ω^fin)`` when any component truncated, exactly 0 otherwise."""
        if all(c.space.error_probability == 0.0 for c in self._components):
            return 0.0
        return max(0.0, 1.0 - self.finite_probability)

    @property
    def finite_probability(self) -> float:
        return math.prod(c.finite_probability for c in self._components)

    def __len__(self) -> int:
        return math.prod(len(c) for c in self._components)

    def __iter__(self) -> Iterator[PossibleOutcome]:
        """Lazily enumerate the joint outcomes (cartesian product order)."""
        for combo in itertools.product(*(c.space for c in self._components)):
            yield self._join(combo)

    def _join(self, combo: Sequence[PossibleOutcome]) -> PossibleOutcome:
        """One joint outcome: unions of the choices/groundings, product mass.

        The joint stable models are the unions of one model per component
        (the ground programs are atom-disjoint), so the solver cache is
        warmed with the product instead of re-solving the union program.
        """
        atr_rules = frozenset().union(*(o.atr_rules for o in combo))
        grounding = frozenset().union(*(o.grounding for o in combo))
        probability = math.prod(o.probability for o in combo)
        joint = PossibleOutcome(
            atr_rules=atr_rules,
            grounding=grounding,
            probability=probability,
            translated=self._translated,
        )
        model_sets = [o.stable_models for o in combo]
        if any(not models for models in model_sets):
            joint.__dict__["stable_models"] = frozenset()
        else:
            joint.__dict__["stable_models"] = frozenset(
                frozenset().union(*pick) for pick in itertools.product(*model_sets)
            )
        return joint

    # -- probability queries ---------------------------------------------------------

    def probability(self, predicate: Callable[[PossibleOutcome], bool]) -> float:
        """Generic event probability via lazy joint enumeration (``∏ |Ω_i|`` time)."""
        return math.fsum(o.probability for o in self if predicate(o))

    def probability_has_stable_model(self) -> float:
        """``∏ P_i(has stable model)`` — the joint program has a model iff every part does."""
        return math.prod(c.has_model_probability for c in self._components)

    def probability_no_stable_model(self) -> float:
        return 1.0 - self.probability_has_stable_model() - self.error_probability

    def marginal(self, atom: Atom, mode: str = "brave") -> float:
        """Atom marginal touching only the atom's component.

        A joint model is a union of per-component models, so *atom* (derivable
        in exactly one component) appears bravely/cautiously in the joint
        models iff it does in its own component's models — every other
        component merely has to admit *some* model.  Atoms no component can
        derive have marginal 0.
        """
        if mode not in ("brave", "cautious"):
            raise InferenceError(f"marginal mode must be 'brave' or 'cautious', got {mode!r}")
        index = self.component_of(atom)
        if index is None:
            return 0.0
        local = self._components[index].space.marginal(atom, mode=mode)
        others = math.prod(
            c.has_model_probability for i, c in enumerate(self._components) if i != index
        )
        return local * others

    # -- events ----------------------------------------------------------------------

    def events(self) -> list[Event]:
        """Joint events combined from the component events.

        Exponential in the number of components (a joint model set is a
        global object), but built from the few per-component *events* rather
        than the many joint outcomes, and without materializing any joint
        outcome (``Event.outcomes`` stays empty — iterate the space for
        outcome-level access).
        """
        masses: dict[ModelSet, list[float]] = {}
        for combo in itertools.product(*(c.space.events() for c in self._components)):
            mass = math.prod(event.probability for event in combo)
            if any(not event.model_set for event in combo):
                joint: ModelSet = frozenset()
            else:
                joint = frozenset(
                    frozenset().union(*pick)
                    for pick in itertools.product(*(event.model_set for event in combo))
                )
            masses.setdefault(joint, []).append(mass)
        events = [
            Event(model_set, (), math.fsum(parts)) for model_set, parts in masses.items()
        ]
        events.sort(key=lambda e: (-e.probability, len(e.model_set)))
        return events

    # -- conditioning ------------------------------------------------------------------

    def materialize(self) -> OutputSpace:
        """The equivalent flat :class:`OutputSpace` (joint outcomes, canonical order)."""
        outcomes = sorted(self, key=lambda o: o.choice_key)
        return OutputSpace(outcomes, error_probability=self.error_probability)

    def conditional(
        self,
        predicate: Callable[[PossibleOutcome], bool],
        epsilon: float = ZERO_MASS_EPSILON,
    ) -> OutputSpace:
        """Condition on an arbitrary joint-outcome event.

        A generic predicate can couple components, so the result is a flat
        renormalized :class:`OutputSpace`; the per-component fast path for
        observation conjunctions lives in
        :func:`repro.ppdl.conditioning.condition`.
        """
        return self.materialize().conditional(predicate, epsilon=epsilon)

    def condition_components(
        self,
        predicates: dict[int, Callable[[PossibleOutcome], bool]],
        epsilon: float = ZERO_MASS_EPSILON,
    ) -> tuple["ProductSpace", float]:
        """Condition each component independently; the product stays a product.

        *predicates* maps component indices to component-outcome events; every
        unmapped component is conditioned on possessing a stable model (the
        semantics of positive observations on the joint space).  Returns the
        conditioned space and the joint evidence probability ``∏ mass_i``.
        Raises :class:`InferenceError` as soon as one component's evidence
        mass is at most *epsilon* — per-component renormalization never
        divides by the (possibly far tinier) joint product, which is exactly
        why legitimately small joint evidence conditions cleanly here.
        """
        conditioned: list[ComponentSpace] = []
        component_masses: list[float] = []
        for index, part in enumerate(self._components):
            event = predicates.get(index)
            if event is None:
                event = lambda outcome: outcome.has_stable_model  # noqa: E731
            mass = part.space.probability(event)
            if mass <= epsilon:
                raise InferenceError(
                    "cannot condition on an event of probability zero "
                    f"(component {index} evidence mass {mass:.3e})"
                )
            conditioned.append(
                ComponentSpace(part.component, part.space.conditional(event, epsilon=epsilon))
            )
            component_masses.append(mass)
        return ProductSpace(conditioned, self._translated), math.prod(component_masses)

    # -- reporting ----------------------------------------------------------------------

    def summary(self) -> str:
        """A per-component summary plus the joint accounting."""
        lines = [
            f"independent components:     {len(self._components)}",
            f"possible outcomes (joint):  {len(self)}"
            f" ({' × '.join(str(len(c)) for c in self._components)})",
            f"finite probability mass:    {self.finite_probability:.6f}",
            f"error-event mass:           {self.error_probability:.6f}",
            f"P(has stable model):        {self.probability_has_stable_model():.6f}",
        ]
        for i, part in enumerate(self._components):
            kind = "generative" if part.component.generative else "deterministic"
            lines.append(
                f"  component {i} ({kind}): {len(part)} outcome(s), "
                f"{len(part.component.facts)} fact(s), "
                f"P(has stable model)={part.has_model_probability:.6f}"
            )
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Top-level entry point
# ---------------------------------------------------------------------------


def explore_component_spaces(
    grounder: Grounder,
    components: Sequence[Component],
    config: ChaseConfig,
    workers: int | None = None,
) -> list[ComponentSpace]:
    """Chase *components* with fresh grounders of the same family.

    With ``workers > 1`` (and more than one component) the chases run on the
    forked worker pool — components are the parallel-split unit (see
    :func:`repro.runtime.pool.explore_components`); otherwise they run
    inline.  Shared by :func:`factorized_space` and the inference service's
    component cache, which only chases the components it has not seen.
    """
    if workers is not None and workers > 1 and len(components) > 1:
        from repro.runtime.pool import explore_components

        sub_grounders = [
            type(grounder)(grounder.translated, Database(c.facts)) for c in components
        ]
        results: list[ChaseResult] = explore_components(sub_grounders, config, workers=workers)
        return [
            ComponentSpace(c, OutputSpace(r.outcomes, r.error_probability))
            for c, r in zip(components, results)
        ]
    return [component_space(grounder, c, config) for c in components]


def factorized_space(
    grounder: Grounder,
    config: ChaseConfig | None = None,
    workers: int | None = None,
    decomposition: Decomposition | None = None,
) -> ProductSpace | None:
    """The factorized output space of a grounder, or ``None`` to fall back.

    *decomposition* lets callers holding a precomputed
    :class:`~repro.gdatalog.checker.ProgramAnalysis` supply its memoised
    component partition instead of re-deriving it here; it must be the
    partition :func:`decompose` yields for this grounder's translated
    program, database and *config*.
    """
    config = config or ChaseConfig()
    if decomposition is None:
        decomposition = decompose(grounder.translated, grounder.database, config)
    if decomposition is None:
        return None
    parts = explore_component_spaces(grounder, decomposition.components, config, workers=workers)
    return ProductSpace(parts, grounder.translated)
