"""Possible outcomes of a GDatalog¬[Δ] program on a database (Definition 3.7).

A possible outcome relative to a grounder ``G`` is a ground program
``Σ ∪ G(Σ)`` where ``Σ`` is a minimal terminal AtR set whose Result atoms
all have positive probability.  A :class:`PossibleOutcome` bundles

* the AtR rules ``Σ`` (the probabilistic choices),
* the grounding ``G(Σ)``,
* the probability ``Pr(Σ) = ∏ δ⟨p̄⟩(o)`` over the Result atoms, and
* lazily computed stable models of the induced ground program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable

from repro.distributions.registry import DistributionRegistry
from repro.gdatalog.atr import GroundAtRRule
from repro.gdatalog.translate import TranslatedProgram
from repro.logic.atoms import Atom
from repro.logic.rules import Rule
from repro.stable.grounding import GroundProgram
from repro.stable.solver import SolverConfig, StableModelSolver, shared_solver

__all__ = ["PossibleOutcome", "outcome_probability"]


def outcome_probability(atr_rules: Iterable[GroundAtRRule], registry: DistributionRegistry) -> float:
    """``Pr(Σ)``: the product of ``δ⟨p̄⟩(o)`` over the AtR rules of ``Σ``."""
    probability = 1.0
    for rule_ in atr_rules:
        probability *= rule_.probability(registry)
    return probability


@dataclass(frozen=True)
class PossibleOutcome:
    """A finite possible outcome ``Σ ∪ G(Σ)`` together with its probability."""

    atr_rules: frozenset[GroundAtRRule]
    grounding: frozenset[Rule]
    probability: float
    translated: TranslatedProgram = field(compare=False, hash=False, repr=False)

    # -- program views --------------------------------------------------------

    @cached_property
    def choice_key(self) -> tuple:
        """A cheap structural identity key for the probabilistic choices ``Σ``.

        The chase uses it to order outcomes canonically (the AtR set
        determines the outcome), replacing per-comparison stringification.
        """
        return tuple(sorted(r.sort_key() for r in self.atr_rules))

    @cached_property
    def full_rules(self) -> tuple[Rule, ...]:
        """The ground program ``Σ ∪ G(Σ)`` with AtR TGDs read as plain rules."""
        atr_plain = tuple(sorted((r.as_rule() for r in self.atr_rules), key=Rule.sort_key))
        return tuple(sorted(self.grounding, key=Rule.sort_key)) + atr_plain

    def ground_program(self) -> GroundProgram:
        return GroundProgram(self.full_rules)

    def with_probability(self, probability: float) -> "PossibleOutcome":
        """A copy with rescaled probability that keeps the lazily computed views.

        Conditioning re-weights outcomes without changing their ground
        program, so the clone inherits any already-solved stable models and
        cached keys instead of recomputing them.
        """
        clone = PossibleOutcome(self.atr_rules, self.grounding, probability, self.translated)
        for attribute in ("choice_key", "full_rules", "stable_models", "has_stable_model"):
            if attribute in self.__dict__:
                clone.__dict__[attribute] = self.__dict__[attribute]
        return clone

    def result_atoms(self) -> frozenset[Atom]:
        """The Result atoms fixed by the probabilistic choices."""
        return frozenset(r.result_atom for r in self.atr_rules)

    def head_atoms(self) -> frozenset[Atom]:
        """``heads(Σ ∪ G(Σ))``."""
        return frozenset(r.head for r in self.full_rules if not r.is_constraint)

    # -- stable-model views ------------------------------------------------------

    @cached_property
    def stable_models(self) -> frozenset[frozenset[Atom]]:
        """``sms(Σ ∪ G(Σ))``: the (possibly empty) set of stable models of the outcome.

        Solved through the process-wide memoized solver: outcomes with the
        same canonicalized ground program (e.g. the same configuration
        re-sampled by the Monte-Carlo sampler) are solved once.
        """
        return frozenset(shared_solver().enumerate(self.ground_program()))

    @cached_property
    def has_stable_model(self) -> bool:
        """Whether the outcome admits a stable model.

        Answers from the already-materialized :attr:`stable_models` when
        available; otherwise routes through the solver's lazy existence
        check, which stops at the first model instead of eagerly
        enumerating all of them (existence-only consumers — the sampler,
        ``P(has stable model)`` — never pay for a full enumeration).
        Cached per outcome, so repeated event evaluations cost one
        attribute lookup.
        """
        if "stable_models" in self.__dict__:
            return bool(self.stable_models)
        return shared_solver().has_stable_model(self.ground_program())

    def stable_models_modulo(self, hide_active: bool = True, hide_result: bool = False) -> frozenset[frozenset[Atom]]:
        """Stable models with Active (and optionally Result) atoms projected away."""
        active_names = {p.name for p in self.translated.active_predicates}
        result_names = {p.name for p in self.translated.result_predicates}
        banned = set()
        if hide_active:
            banned |= active_names
        if hide_result:
            banned |= result_names
        projected = set()
        for model in self.stable_models:
            projected.add(frozenset(a for a in model if a.predicate.name not in banned))
        return frozenset(projected)

    def visible_stable_models(self) -> frozenset[frozenset[Atom]]:
        """Stable models over the program's original schema (Active/Result hidden)."""
        return self.stable_models_modulo(hide_active=True, hide_result=True)

    # -- dunder --------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.full_rules)

    def __str__(self) -> str:
        choices = ", ".join(sorted(f"{r.active_atom}={r.outcome}" for r in self.atr_rules))
        return f"PossibleOutcome(p={self.probability:.6g}, choices=[{choices}])"
