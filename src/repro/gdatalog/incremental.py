"""Incremental view maintenance of chased output spaces under fact deltas.

Given an engine whose output space (flat or factorized) has already been
chased, :func:`maintain_engine` builds the engine of the **post-delta**
database while reusing as much chase structure as the change allows.  Three
modes, picked per delta:

``patch``
    The delta's *affected cone* — the forward closure of the changed
    predicates over ``dg(Π)`` (:func:`~repro.gdatalog.relevance.forward_reachable`)
    — is disjoint from the *choice cone* (the forward closure of the
    generative rule heads).  Then the delta can only change the
    choice-independent part of every outcome's grounding, and it changes it
    the **same way in every outcome**: the new root grounding ``G'(∅)`` is
    derived DRed-style from the old one
    (:meth:`~repro.gdatalog.grounders.SimpleGrounder.delta_root_state`), and
    every chase leaf is patched as ``G'(Σ) = (G(Σ) − removed) ∪ added``
    where ``removed``/``added`` are the root-level diffs.  The AtR sets,
    trigger order and path probabilities are untouched, so the patched
    space is bit-identical to a from-scratch chase — at the cost of one
    root delta instead of ``|Ω|`` full groundings.

    Soundness of the leaf patch: an instance of ``G(Σ)`` either derives
    without choices (it is in ``G(∅)``, and the root diff covers it) or its
    derivation touches a choice-derived atom, which puts its head predicate
    in the choice cone — disjoint from the affected cone, hence identical
    across the update.  Mixed derivations (a rule body joining an affected
    atom with a choice atom) would put the head in **both** cones, which the
    eligibility check excludes; constraint instances have no head, so
    constraints whose positive body mixes the two cones are excluded
    explicitly.  Gated to the simple grounder: the perfect grounder prunes
    by negation against stratum-order head sets, which a root-level diff
    does not commute with.

``component``
    The engine is factorized (``ChaseConfig.factorize``) and the post-delta
    program still decomposes.  Components whose identity (atoms, facts) is
    unchanged keep their already-chased
    :class:`~repro.gdatalog.factorize.ComponentSpace`; only components the
    delta touched (or newly created by merging/splitting) are re-chased.
    Exact versus a fresh factorized engine because a component's space is a
    deterministic function of its facts and the chase configuration.

``rebuild``
    Everything else (choice-cone deltas under a flat configuration, perfect
    grounder retractions, engines with no cached chase).  The new engine is
    returned cold and chases lazily — always correct, never reused.

A flat configuration with an affected choice cone is deliberately **not**
patched by re-chasing subtrees into a shared structure: outcome
probabilities are products in path order, and splicing subtrees chased in a
different trigger order would change float rounding — breaking the
bit-identity contract that every maintained space obeys.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass

from repro.exceptions import ValidationError
from repro.gdatalog.chase import ChaseResult
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.factorize import (
    ComponentSpace,
    ProductSpace,
    explore_component_spaces,
)
from repro.gdatalog.outcomes import PossibleOutcome
from repro.gdatalog.probability_space import AbstractSpace, OutputSpace
from repro.gdatalog.relevance import forward_reachable
from repro.gdatalog.syntax import GDatalogProgram
from repro.logic.deltas import DbDelta

__all__ = ["UpdateReport", "maintain_engine", "patch_eligible"]


@dataclass(frozen=True)
class UpdateReport:
    """What one delta update did: mode, effective size, and chase reuse.

    ``reused_subtrees``/``invalidated_subtrees`` count chase outcomes in
    ``patch`` mode and components in ``component`` mode; a ``rebuild``
    reuses nothing.  ``reuse_ratio`` is the share of subtrees kept.
    """

    mode: str
    inserted: int
    retracted: int
    invalidated_subtrees: int
    reused_subtrees: int

    @property
    def reuse_ratio(self) -> float:
        total = self.invalidated_subtrees + self.reused_subtrees
        return self.reused_subtrees / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "mode": self.mode,
            "inserted": self.inserted,
            "retracted": self.retracted,
            "invalidated_subtrees": self.invalidated_subtrees,
            "reused_subtrees": self.reused_subtrees,
            "reuse_ratio": self.reuse_ratio,
        }


def patch_eligible(program: GDatalogProgram, delta_predicates, choice_cone=None) -> bool:
    """Whether a delta over *delta_predicates* admits the ``patch`` mode.

    Requires the affected cone (forward closure of the changed predicates)
    to be disjoint from the choice cone (forward closure of the generative
    rule heads), and no constraint whose positive body joins the two cones.
    Both conditions are judged on the source program; the ``Σ_Π``
    translation only interposes Active/Result predicates *inside* source
    edges, so source-level cones are exact.  *choice_cone* lets callers
    holding a precomputed :class:`~repro.gdatalog.checker.ProgramAnalysis`
    pass its cached cone instead of re-deriving it per update.
    """
    graph = program.predicate_graph()
    if choice_cone is None:
        generative_heads = {
            r.head.predicate for r in program.rules if not r.is_constraint and r.is_generative
        }
        if not generative_heads:
            return True
        choice_cone = graph.forward_closure(generative_heads)
    elif not choice_cone:
        return True
    affected = graph.forward_closure(delta_predicates)
    if affected & choice_cone:
        return False
    for rule_ in program.rules:
        if rule_.is_constraint:
            body = {a.predicate for a in rule_.positive_body}
            if body & affected and body & choice_cone:
                return False
    return True


def _report(mode: str, delta: DbDelta, invalidated: int = 0, reused: int = 0) -> UpdateReport:
    return UpdateReport(
        mode=mode,
        inserted=len(delta.inserts),
        retracted=len(delta.retracts),
        invalidated_subtrees=invalidated,
        reused_subtrees=reused,
    )


def _cached_flat_result(engine: GDatalogEngine, old_space) -> ChaseResult | None:
    """The engine's already-chased flat result, if any (never triggers a chase)."""
    result = engine.__dict__.get("chase_result")
    if result is not None:
        return result
    if isinstance(old_space, OutputSpace):
        # E.g. the service's parallel-explorer path: the space exists but
        # the engine's cached_property was never populated.  Truncation
        # counters are not recoverable from a space; they are reporting
        # metadata only, so zero is safe.
        return ChaseResult(
            outcomes=list(old_space.outcomes),
            error_probability=old_space.error_probability,
            truncated_paths=0,
            max_depth_reached=0,
        )
    return None


def _patch_flat(
    engine: GDatalogEngine,
    new_engine: GDatalogEngine,
    delta: DbDelta,
    old_result: ChaseResult,
) -> OutputSpace:
    """Patch every chase leaf with the root-level grounding diff."""
    old_root = engine.grounder.initial_state()
    new_root = new_engine.grounder.delta_root_state(old_root, delta.inserts, delta.retracts)
    new_engine.grounder.seed_initial_state(new_root)
    removed = old_root.grounding() - new_root.grounding()
    added = new_root.grounding() - old_root.grounding()

    translated = new_engine.translated
    outcomes = []
    for outcome in old_result.outcomes:
        patched = PossibleOutcome(
            outcome.atr_rules,
            (outcome.grounding - removed) | added,
            outcome.probability,
            translated,
        )
        if "choice_key" in outcome.__dict__:
            patched.__dict__["choice_key"] = outcome.__dict__["choice_key"]
        outcomes.append(patched)
    result = ChaseResult(
        outcomes=outcomes,
        error_probability=old_result.error_probability,
        truncated_paths=old_result.truncated_paths,
        max_depth_reached=old_result.max_depth_reached,
    )
    new_engine.__dict__["chase_result"] = result
    return OutputSpace(result.outcomes, error_probability=result.error_probability)


def maintain_engine(
    engine: GDatalogEngine,
    delta: DbDelta | Mapping,
    old_space: AbstractSpace | None = None,
) -> tuple[GDatalogEngine, AbstractSpace | None, UpdateReport]:
    """The engine of the post-delta database, reusing *engine*'s chase work.

    *old_space* optionally carries the already-computed space when the
    caller (the inference service) keeps it outside the engine; otherwise
    the engine's own caches are consulted.  Returns the new engine, the
    maintained space (``None`` when the new engine must chase lazily) and
    the :class:`UpdateReport`.  The original engine is never mutated — its
    caches stay valid for the pre-delta state.
    """
    if not isinstance(delta, DbDelta):
        delta = DbDelta.from_spec(delta)
    if engine.query_slice is not None:
        raise ValidationError(
            "cannot delta-update a query-sliced engine; update the base engine "
            "(slices are rebuilt from it on demand)"
        )
    if engine._grounder_name is None:
        raise ValidationError(
            "cannot delta-update an engine with a custom grounder instance; "
            "the post-delta grounder family cannot be rebuilt"
        )

    effective = delta.effective(engine.database)
    if effective.is_empty:
        return engine, old_space, _report("noop", effective)

    new_engine = GDatalogEngine(
        engine.program,
        effective.apply(engine.database),
        grounder=engine._grounder_name,
        chase_config=engine.chase_config,
        # The rule set is unchanged, so the pre-delta engine's static
        # analysis (choice cone, permanent seeds, memoised decompositions)
        # carries over verbatim.
        analysis=engine.analysis,
    )
    config = engine.chase_config

    if config.factorize:
        old_product = old_space if isinstance(old_space, ProductSpace) else None
        if old_product is None:
            cached = engine.__dict__.get("factorized")
            old_product = cached if isinstance(cached, ProductSpace) else None
        decomposition = new_engine.analysis.decomposition(
            new_engine.translated, new_engine.database, config
        )
        if decomposition is not None and old_product is not None:
            by_identity: dict = {part.component: part for part in old_product.components}
            parts: list[ComponentSpace | None] = []
            missing = []
            for index, component in enumerate(decomposition.components):
                reused_part = by_identity.get(component)
                parts.append(reused_part)
                if reused_part is None:
                    missing.append((index, component))
            fresh = explore_component_spaces(
                new_engine.grounder, [c for _, c in missing], config
            )
            for (index, _), part in zip(missing, fresh):
                parts[index] = part
            space = ProductSpace(parts, new_engine.translated)
            new_engine.__dict__["factorized"] = space
            report = _report(
                "component", effective, invalidated=len(missing), reused=len(parts) - len(missing)
            )
            return new_engine, space, report
        # A factorized config whose fresh build would fall back to the flat
        # chase (or with no product to reuse): patching the flat structure
        # is only exact when the fresh path is flat too, so only continue
        # when the post-delta program does not decompose.
        if decomposition is not None:
            return new_engine, None, _report("rebuild", effective)

    old_result = _cached_flat_result(engine, old_space)
    if (
        old_result is not None
        and engine._grounder_name == "simple"
        and engine.analysis.delta_patchable(effective.predicates())
    ):
        space = _patch_flat(engine, new_engine, effective, old_result)
        return new_engine, space, _report(
            "patch", effective, invalidated=0, reused=len(old_result.outcomes)
        )

    return new_engine, None, _report("rebuild", effective)
