"""Grounders for generative Datalog¬: the simple and the perfect grounder.

A *grounder* of ``Π[D]`` (Definition 3.3) is a monotone function mapping
every functionally consistent set ``Σ`` of ground AtR rules to a set of
ground existential-free rules ``G(Σ) ⊆ ground(Σ∄_{Π[D]})`` such that,
whenever ``AtR_Σ`` is compatible with ``G(Σ)``, the stable models of
``G(Σ) ∪ Σ`` are exactly those of ``Σ∄_{Π[D]}`` joined with any totalizer of
``AtR_Σ``.

Two grounders are provided:

* :class:`SimpleGrounder` (Definition 3.4) — forward-chains rule instances
  whose *positive* bodies match already-derived heads, ignoring negation.
* :class:`PerfectGrounder` (Definition 5.1) — for stratified programs;
  processes the strata of ``Π`` in topological order and additionally
  requires the instantiated *negative* body to be disjoint from the heads
  derived so far, which prunes rule instances that can never fire.  If the
  AtR set does not cover the Active atoms derived up to some stratum, the
  grounding stops extending at that stratum (the "otherwise" branch of
  Definition 5.1).

Both grounders treat the database ``D`` through the fact rules ``→ α`` of
``Π[D]`` and instantiate integrity constraints by positive-body matching
after the head set has converged.
"""

from __future__ import annotations

import abc
from typing import Iterable, Sequence

from repro.exceptions import GroundingError, StratificationError
from repro.gdatalog.atr import GroundAtRRule, is_consistent, pending_active_atoms
from repro.gdatalog.translate import TranslatedProgram
from repro.logic.atoms import Atom, Predicate
from repro.logic.database import Database
from repro.logic.rules import Rule, fact_rule
from repro.logic.unify import FactIndex, match_conjunction

__all__ = ["Grounder", "SimpleGrounder", "PerfectGrounder", "heads_of", "make_grounder"]


def heads_of(rules: Iterable[Rule]) -> frozenset[Atom]:
    """``heads(Σ)``: the head atoms of the non-constraint rules of *rules*."""
    return frozenset(r.head for r in rules if not r.is_constraint)


class Grounder(abc.ABC):
    """Base class of grounders for a fixed program ``Π`` and database ``D``."""

    def __init__(self, translated: TranslatedProgram, database: Database):
        self.translated = translated
        self.database = database
        self._fact_rules: tuple[Rule, ...] = tuple(fact_rule(a) for a in sorted(database.facts, key=str))
        self._active_predicates: set[Predicate] = set(translated.active_predicates)

    # -- interface ------------------------------------------------------------

    @abc.abstractmethod
    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        """``G(Σ)``: the ground existential-free rules assigned to the AtR set ``Σ``.

        *seed* may carry the grounding of a subset of ``Σ``; by monotonicity
        of grounders the result is unchanged, but the fixpoint computation
        can start from the seed instead of from scratch.
        """

    # -- shared helpers ---------------------------------------------------------

    @property
    def active_predicates(self) -> set[Predicate]:
        return self._active_predicates

    def pending_triggers(
        self, atr_rules: frozenset[GroundAtRRule], grounding: frozenset[Rule]
    ) -> list[Atom]:
        """Active atoms in ``heads(G(Σ))`` that ``Σ`` does not cover (the chase triggers)."""
        return pending_active_atoms(atr_rules, heads_of(grounding), self._active_predicates)

    def is_terminal(self, atr_rules: frozenset[GroundAtRRule], grounding: frozenset[Rule] | None = None) -> bool:
        """Whether ``Σ ∈ terminals(G)``, i.e. ``AtR_Σ ↩→ G(Σ)``."""
        actual = grounding if grounding is not None else self.ground(atr_rules)
        return not self.pending_triggers(atr_rules, actual)

    def _check_consistent(self, atr_rules: frozenset[GroundAtRRule]) -> None:
        if not is_consistent(atr_rules):
            raise GroundingError("grounders are only defined on functionally consistent AtR sets")

    @staticmethod
    def _saturate(
        non_ground_rules: Sequence[Rule],
        atr_rules: Iterable[GroundAtRRule],
        initial_rules: Iterable[Rule],
        respect_negation: bool,
    ) -> set[Rule]:
        """Forward-chain ground rule instances whose positive bodies match derived heads.

        When *respect_negation* is set (perfect grounder), an instance is only
        added if its negative body is disjoint from the heads derived so far.
        Returns the set of derived ground rules **including** the AtR rules
        that fired (callers subtract them as required by ``\\ Σ``).
        """
        derived_rules: set[Rule] = set()
        heads = FactIndex()

        def add_rule(rule_: Rule) -> bool:
            if rule_ in derived_rules:
                return False
            derived_rules.add(rule_)
            if not rule_.is_constraint:
                heads.add(rule_.head)
            return True

        for rule_ in initial_rules:
            add_rule(rule_)

        atr_plain = [r.as_rule() for r in atr_rules]
        proper = [r for r in non_ground_rules if not r.is_constraint]
        constraints = [r for r in non_ground_rules if r.is_constraint]

        changed = True
        while changed:
            changed = False
            for rule_ in atr_plain:
                if rule_ in derived_rules:
                    continue
                if rule_.positive_body[0] in heads:
                    if add_rule(rule_):
                        changed = True
            for rule_ in proper:
                for substitution in match_conjunction(rule_.positive_body, heads):
                    grounded = rule_.substitute(substitution.as_dict())
                    if not grounded.is_ground or grounded in derived_rules:
                        continue
                    if respect_negation and any(b in heads for b in grounded.negative_body):
                        continue
                    if add_rule(grounded):
                        changed = True

        for rule_ in constraints:
            for substitution in match_conjunction(rule_.positive_body, heads):
                grounded = rule_.substitute(substitution.as_dict())
                if grounded.is_ground:
                    derived_rules.add(grounded)

        return derived_rules


class SimpleGrounder(Grounder):
    """The simple grounder ``GSimple_{Π[D]}`` of Definition 3.4."""

    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        self._check_consistent(atr_rules)
        initial: list[Rule] = list(self._fact_rules)
        if seed:
            initial.extend(seed)
        derived = self._saturate(
            non_ground_rules=self.translated.existential_free_rules,
            atr_rules=atr_rules,
            initial_rules=initial,
            respect_negation=False,
        )
        atr_plain = {r.as_rule() for r in atr_rules}
        return frozenset(derived - atr_plain)


class PerfectGrounder(Grounder):
    """The perfect grounder ``GPerfect_{Π[D]}`` of Definition 5.1 (stratified programs only)."""

    def __init__(self, translated: TranslatedProgram, database: Database):
        super().__init__(translated, database)
        if not translated.program.is_stratified:
            raise StratificationError("the perfect grounder requires a stratified GDatalog¬ program")
        self._strata: list[frozenset[Predicate]] = translated.program.stratification()
        known = set().union(*self._strata) if self._strata else set()
        orphan_predicates = frozenset(
            p for p in (a.predicate for a in database.facts) if p not in known
        )
        if orphan_predicates:
            # Database predicates never mentioned by the program form a
            # lowest pseudo-stratum of their own.
            self._strata = [orphan_predicates] + self._strata

    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        self._check_consistent(atr_rules)
        current: set[Rule] = set()

        for component in self._strata:
            # Compatibility check of Definition 5.1: stop extending as soon as
            # the AtR set fails to cover an Active atom already derived.
            if pending_active_atoms(atr_rules, heads_of(current), self._active_predicates):
                break
            stratum_rules = list(self.translated.rules_for_head_predicates(component))
            stratum_facts = [r for r in self._fact_rules if r.head.predicate in component]
            derived = self._saturate(
                non_ground_rules=stratum_rules,
                atr_rules=atr_rules,
                initial_rules=list(current) + stratum_facts,
                respect_negation=True,
            )
            atr_plain = {r.as_rule() for r in atr_rules}
            current = set(derived - atr_plain)

        # Integrity constraints are instantiated against the final head set
        # (they belong to no stratum; they never derive atoms).
        constraint_sources = [
            rule_
            for translation in self.translated.translations
            if translation.source.is_constraint
            for rule_ in translation.rules
        ]
        if constraint_sources:
            heads = FactIndex(heads_of(current))
            for rule_ in constraint_sources:
                for substitution in match_conjunction(rule_.positive_body, heads):
                    grounded = rule_.substitute(substitution.as_dict())
                    if grounded.is_ground:
                        current.add(grounded)

        return frozenset(current)


def make_grounder(
    name_or_instance: str | Grounder, translated: TranslatedProgram, database: Database
) -> Grounder:
    """Resolve ``"simple"`` / ``"perfect"`` / a ready-made grounder instance."""
    if isinstance(name_or_instance, Grounder):
        return name_or_instance
    normalized = name_or_instance.lower()
    if normalized == "simple":
        return SimpleGrounder(translated, database)
    if normalized == "perfect":
        return PerfectGrounder(translated, database)
    raise GroundingError(f"unknown grounder {name_or_instance!r}; expected 'simple' or 'perfect'")
