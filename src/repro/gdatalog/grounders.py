"""Grounders for generative Datalog¬: the simple and the perfect grounder.

A *grounder* of ``Π[D]`` (Definition 3.3) is a monotone function mapping
every functionally consistent set ``Σ`` of ground AtR rules to a set of
ground existential-free rules ``G(Σ) ⊆ ground(Σ∄_{Π[D]})`` such that,
whenever ``AtR_Σ`` is compatible with ``G(Σ)``, the stable models of
``G(Σ) ∪ Σ`` are exactly those of ``Σ∄_{Π[D]}`` joined with any totalizer of
``AtR_Σ``.

Two grounders are provided:

* :class:`SimpleGrounder` (Definition 3.4) — forward-chains rule instances
  whose *positive* bodies match already-derived heads, ignoring negation.
* :class:`PerfectGrounder` (Definition 5.1) — for stratified programs;
  processes the strata of ``Π`` in topological order and additionally
  requires the instantiated *negative* body to be disjoint from the heads
  derived so far, which prunes rule instances that can never fire.  If the
  AtR set does not cover the Active atoms derived up to some stratum, the
  grounding stops extending at that stratum (the "otherwise" branch of
  Definition 5.1).

Both grounders treat the database ``D`` through the fact rules ``→ α`` of
``Π[D]`` and instantiate integrity constraints by positive-body matching
after the head set has converged.

Incremental grounding
---------------------

The chase explores a tree of AtR sets in which every child extends its
parent by exactly one ground AtR rule.  Re-running the grounding fixpoint
from scratch at every node is wasteful: by monotonicity, the child grounding
is the parent grounding plus whatever the new Result atom makes derivable.
:class:`GroundingState` packages a grounding together with the bookkeeping
needed to *extend* it (head index, fired/unfired AtR rules, per-stratum
checkpoints), and the grounders expose

* :meth:`Grounder.initial_state` — the state of ``G(∅)``,
* :meth:`Grounder.extend_state` — extend a state by new AtR rules
  (semi-naive delta propagation for the simple grounder, stratum-resume for
  the perfect grounder),
* :meth:`Grounder.state_for` — a state from scratch (reference path).

The classic :meth:`Grounder.ground` method is kept as the independent,
naively-iterated reference implementation; property tests assert that the
incremental states produce identical groundings.

All rule matching — saturation, semi-naive propagation and constraint
instantiation — runs through the dispatching join engine
(:mod:`repro.logic.columnar`): head sets come from
:func:`~repro.logic.columnar.make_fact_store` — columnar
:class:`~repro.logic.columnar.FactStore` instances (NumPy id columns,
vectorized batch joins) when NumPy is available, plain
:class:`~repro.logic.join.ArgIndex` hash-bucket indexes otherwise — and the
``iter_join`` / ``iter_join_seminaive`` dispatchers pick the batch or the
indexed engine per call.  Groundings are bit-identical across all three
engines (``tests/property/test_join_equivalence``,
``tests/property/test_columnar_equivalence``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.exceptions import GroundingError, StratificationError
from repro.gdatalog.atr import GroundAtRRule, is_consistent, pending_active_atoms
from repro.gdatalog.translate import TranslatedProgram
from repro.logic.atoms import Atom, Predicate
from repro.logic.database import Database
from repro.logic.columnar import iter_join, iter_join_seminaive, make_fact_store
from repro.logic.intern import intern_atom, intern_rule
from repro.logic.join import join_stats
from repro.logic.rules import Rule, fact_rule
from repro.logic.unify import FactIndex

__all__ = [
    "Grounder",
    "GrounderStats",
    "GroundingState",
    "SimpleGrounder",
    "PerfectGrounder",
    "grounder_name",
    "heads_of",
    "make_grounder",
]


def heads_of(rules: Iterable[Rule]) -> frozenset[Atom]:
    """``heads(Σ)``: the head atoms of the non-constraint rules of *rules*."""
    return frozenset(r.head for r in rules if not r.is_constraint)


@dataclass
class GrounderStats:
    """Counters describing how a grounder's work was split (``--profile``).

    The join counters (``index_probes`` / ``full_scans`` — candidate sets
    answered from argument-position buckets vs. whole-extent enumerations —
    and ``plans_compiled`` / ``plans_reused``) are deltas of the process-wide
    :data:`repro.logic.join.JOIN_STATS` since the last :meth:`reset`,
    populated by :meth:`sync_join_counters`.  Like the intern-table and
    solver-cache counters, they are process-global: with several engines
    chasing concurrently (threaded ``serve``) a grounder's window includes
    the other engines' traffic, so treat per-run join numbers as indicative
    in multi-engine processes.
    """

    full_groundings: int = 0
    incremental_extensions: int = 0
    rules_derived: int = 0
    index_probes: int = 0
    full_scans: int = 0
    plans_compiled: int = 0
    plans_reused: int = 0
    columnar_batches: int = 0
    columnar_rows_selected: int = 0
    columnar_rows_joined: int = 0
    columnar_snapshot_copies: int = 0
    _join_baseline: tuple[int, int, int, int] = field(default=(0, 0, 0, 0), repr=False)
    _columnar_baseline: tuple[int, int, int, int] = field(default=(0, 0, 0, 0), repr=False)

    def reset(self) -> None:
        self.full_groundings = 0
        self.incremental_extensions = 0
        self.rules_derived = 0
        self.index_probes = 0
        self.full_scans = 0
        self.plans_compiled = 0
        self.plans_reused = 0
        self.columnar_batches = 0
        self.columnar_rows_selected = 0
        self.columnar_rows_joined = 0
        self.columnar_snapshot_copies = 0
        self._join_baseline = join_stats().snapshot()
        self._columnar_baseline = join_stats().columnar_snapshot()

    def sync_join_counters(self) -> None:
        """Refresh the join counters from the process-wide totals."""
        probes, scans, compiled, reused = join_stats().snapshot()
        base = self._join_baseline
        self.index_probes = probes - base[0]
        self.full_scans = scans - base[1]
        self.plans_compiled = compiled - base[2]
        self.plans_reused = reused - base[3]
        batches, selected, joined, copies = join_stats().columnar_snapshot()
        cbase = self._columnar_baseline
        self.columnar_batches = batches - cbase[0]
        self.columnar_rows_selected = selected - cbase[1]
        self.columnar_rows_joined = joined - cbase[2]
        self.columnar_snapshot_copies = copies - cbase[3]


class GroundingState:
    """The reusable result of grounding one AtR set ``Σ``.

    Bundles the ground program ``G(Σ)`` (proper rules and constraint
    instances kept apart) with the derived-head index and the fired /
    unfired AtR rules, so a grounder can extend it with new AtR rules
    without recomputing the fixpoint.  For the perfect grounder it
    additionally records the stratum at which grounding stopped
    (``resume_index``) and the rules derived *before* that stratum
    (``checkpoint_rules``), allowing an extension to resume mid-pipeline.

    States are value-like: :meth:`copy` produces an independent state
    sharing the (interned, immutable) atoms and rules.
    """

    __slots__ = (
        "atr_rules",
        "rules",
        "constraints",
        "heads",
        "fired_atr",
        "unfired_atr",
        "resume_index",
        "checkpoint_rules",
        "_grounding",
    )

    def __init__(
        self,
        atr_rules: frozenset[GroundAtRRule],
        rules: set[Rule],
        constraints: set[Rule],
        heads: FactIndex,
        fired_atr: set[GroundAtRRule],
        unfired_atr: set[GroundAtRRule],
        resume_index: int = 0,
        checkpoint_rules: frozenset[Rule] = frozenset(),
    ):
        self.atr_rules = atr_rules
        self.rules = rules
        self.constraints = constraints
        self.heads = heads
        self.fired_atr = fired_atr
        self.unfired_atr = unfired_atr
        self.resume_index = resume_index
        self.checkpoint_rules = checkpoint_rules
        self._grounding: frozenset[Rule] | None = None

    def copy(self) -> "GroundingState":
        return GroundingState(
            self.atr_rules,
            set(self.rules),
            set(self.constraints),
            self.heads.copy(),
            set(self.fired_atr),
            set(self.unfired_atr),
            self.resume_index,
            self.checkpoint_rules,
        )

    def grounding(self) -> frozenset[Rule]:
        """``G(Σ)`` as a frozenset (cached after the first call)."""
        if self._grounding is None:
            self._grounding = frozenset(self.rules) | frozenset(self.constraints)
        return self._grounding

    def __len__(self) -> int:
        return len(self.rules) + len(self.constraints)


class Grounder(abc.ABC):
    """Base class of grounders for a fixed program ``Π`` and database ``D``."""

    def __init__(self, translated: TranslatedProgram, database: Database):
        self.translated = translated
        self.database = database
        self._fact_rules: tuple[Rule, ...] = tuple(
            intern_rule(fact_rule(a)) for a in sorted(database.facts, key=Atom.sort_key)
        )
        self._active_predicates: set[Predicate] = set(translated.active_predicates)
        self.stats = GrounderStats()
        self._initial: GroundingState | None = None

    # -- interface ------------------------------------------------------------

    @abc.abstractmethod
    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        """``G(Σ)``: the ground existential-free rules assigned to the AtR set ``Σ``.

        *seed* may carry the grounding of a subset of ``Σ``; by monotonicity
        of grounders the result is unchanged, but the fixpoint computation
        can start from the seed instead of from scratch.
        """

    # -- incremental-state API ---------------------------------------------------

    def initial_state(self) -> GroundingState:
        """The grounding state of the empty AtR set, ``G(∅)`` (memoized).

        Memoization is safe because every extension path copies the state
        before mutating it (:meth:`GroundingState.copy`), and it is
        load-bearing twice over: repeated chase runs and per-sample
        :meth:`~repro.gdatalog.chase.ChaseEngine.sample_path` calls skip the
        root fixpoint, and the streaming-update path can plant a
        delta-derived root via :meth:`seed_initial_state` so an updated
        engine never pays a from-scratch saturation.
        """
        if self._initial is None:
            self._initial = self.state_for(frozenset())
        return self._initial

    def seed_initial_state(self, state: GroundingState) -> None:
        """Plant a precomputed root state (the streaming-update fast path)."""
        if state.atr_rules:
            raise GroundingError("the initial grounding state must have an empty AtR set")
        self._initial = state

    def state_for(self, atr_rules: frozenset[GroundAtRRule]) -> GroundingState:
        """A grounding state computed from scratch (reference path).

        The default implementation wraps :meth:`ground`; subclasses override
        it with a representation that is cheaper to extend.
        """
        self.stats.full_groundings += 1
        return self._state_from_grounding(atr_rules, self.ground(atr_rules))

    def extend_state(
        self, state: GroundingState, new_atr_rules: Iterable[GroundAtRRule]
    ) -> GroundingState:
        """The state of ``Σ ∪ new_atr_rules`` built on top of the state of ``Σ``.

        The base implementation recomputes via :meth:`ground` (seeded with
        the parent grounding); :class:`SimpleGrounder` and
        :class:`PerfectGrounder` override it with genuinely incremental
        algorithms.  Extensions must keep the AtR set functionally
        consistent.
        """
        atr_rules = frozenset(state.atr_rules | set(new_atr_rules))
        self._check_consistent(atr_rules)
        self.stats.full_groundings += 1
        return self._state_from_grounding(atr_rules, self.ground(atr_rules, seed=state.grounding()))

    def _state_from_grounding(
        self, atr_rules: frozenset[GroundAtRRule], grounding: frozenset[Rule]
    ) -> GroundingState:
        rules = {r for r in grounding if not r.is_constraint}
        constraints = {r for r in grounding if r.is_constraint}
        heads = make_fact_store(r.head for r in rules)
        fired = {r for r in atr_rules if r.active_atom in heads}
        for rule_ in fired:
            heads.add(rule_.result_atom)
        return GroundingState(
            atr_rules, rules, constraints, heads, fired, set(atr_rules) - fired
        )

    # -- shared helpers ---------------------------------------------------------

    @property
    def active_predicates(self) -> set[Predicate]:
        return self._active_predicates

    def pending_triggers(
        self, atr_rules: frozenset[GroundAtRRule], grounding: frozenset[Rule]
    ) -> list[Atom]:
        """Active atoms in ``heads(G(Σ))`` that ``Σ`` does not cover (the chase triggers)."""
        return pending_active_atoms(atr_rules, heads_of(grounding), self._active_predicates)

    def pending_triggers_from_state(self, state: GroundingState) -> list[Atom]:
        """The chase triggers of a state, read off the head index.

        Avoids rebuilding ``heads(G(Σ))`` per call: only the buckets of the
        Active predicates are scanned.
        """
        defined = {r.active_atom for r in state.atr_rules}
        pending = [
            atom_
            for predicate in self._active_predicates
            for atom_ in state.heads.facts_for(predicate)
            if atom_ not in defined
        ]
        pending.sort(key=Atom.sort_key)
        return pending

    def is_terminal(self, atr_rules: frozenset[GroundAtRRule], grounding: frozenset[Rule] | None = None) -> bool:
        """Whether ``Σ ∈ terminals(G)``, i.e. ``AtR_Σ ↩→ G(Σ)``."""
        actual = grounding if grounding is not None else self.ground(atr_rules)
        return not self.pending_triggers(atr_rules, actual)

    def _check_consistent(self, atr_rules: frozenset[GroundAtRRule]) -> None:
        if not is_consistent(atr_rules):
            raise GroundingError("grounders are only defined on functionally consistent AtR sets")

    @staticmethod
    def _saturate(
        non_ground_rules: Sequence[Rule],
        atr_rules: Iterable[GroundAtRRule],
        initial_rules: Iterable[Rule],
        respect_negation: bool,
    ) -> set[Rule]:
        """Forward-chain ground rule instances whose positive bodies match derived heads.

        When *respect_negation* is set (perfect grounder), an instance is only
        added if its negative body is disjoint from the heads derived so far.
        Returns the set of derived ground rules **including** the AtR rules
        that fired (callers subtract them as required by ``\\ Σ``).
        """
        derived_rules: set[Rule] = set()
        heads = make_fact_store()

        def add_rule(rule_: Rule) -> bool:
            if rule_ in derived_rules:
                return False
            derived_rules.add(rule_)
            if not rule_.is_constraint:
                heads.add(rule_.head)
            return True

        for rule_ in initial_rules:
            add_rule(rule_)

        atr_plain = [r.as_rule() for r in atr_rules]
        proper = [r for r in non_ground_rules if not r.is_constraint]
        constraints = [r for r in non_ground_rules if r.is_constraint]

        changed = True
        while changed:
            changed = False
            for rule_ in atr_plain:
                if rule_ in derived_rules:
                    continue
                if rule_.positive_body[0] in heads:
                    if add_rule(rule_):
                        changed = True
            for rule_ in proper:
                for mapping in iter_join(rule_.positive_body, heads):
                    grounded = intern_rule(rule_.substitute(mapping))
                    if not grounded.is_ground or grounded in derived_rules:
                        continue
                    if respect_negation and any(b in heads for b in grounded.negative_body):
                        continue
                    if add_rule(grounded):
                        changed = True

        for rule_ in constraints:
            for mapping in iter_join(rule_.positive_body, heads):
                grounded = intern_rule(rule_.substitute(mapping))
                if grounded.is_ground:
                    derived_rules.add(grounded)

        return derived_rules


class SimpleGrounder(Grounder):
    """The simple grounder ``GSimple_{Π[D]}`` of Definition 3.4."""

    def __init__(self, translated: TranslatedProgram, database: Database):
        super().__init__(translated, database)
        rules = translated.existential_free_rules
        self._proper_rules: tuple[Rule, ...] = tuple(
            r for r in rules if not r.is_constraint and r.positive_body
        )
        self._seed_rules: tuple[Rule, ...] = tuple(
            intern_rule(r) for r in rules if not r.is_constraint and not r.positive_body
        )
        self._constraint_rules: tuple[Rule, ...] = tuple(r for r in rules if r.is_constraint)

    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        self._check_consistent(atr_rules)
        initial: list[Rule] = list(self._fact_rules)
        if seed:
            initial.extend(seed)
        derived = self._saturate(
            non_ground_rules=self.translated.existential_free_rules,
            atr_rules=atr_rules,
            initial_rules=initial,
            respect_negation=False,
        )
        atr_plain = {r.as_rule() for r in atr_rules}
        return frozenset(derived - atr_plain)

    # -- incremental path -------------------------------------------------------

    def state_for(self, atr_rules: frozenset[GroundAtRRule]) -> GroundingState:
        """Seed the state with ``G(∅)``'s inputs and propagate everything as delta."""
        self._check_consistent(atr_rules)
        self.stats.full_groundings += 1
        heads = make_fact_store()
        rules: set[Rule] = set()
        delta = FactIndex()
        for rule_ in self._fact_rules + self._seed_rules:
            if rule_ not in rules:
                rules.add(rule_)
                if heads.add(rule_.head):
                    delta.add(rule_.head)
        state = GroundingState(
            frozenset(atr_rules), rules, set(), heads, set(), set(atr_rules)
        )
        self._propagate(state, delta)
        return state

    def delta_root_state(
        self,
        old_root: GroundingState,
        inserts: Iterable[Atom],
        retracts: Iterable[Atom],
    ) -> GroundingState:
        """The root state ``G(∅)`` of *this* grounder, derived from another
        grounder's root over the pre-delta database.

        ``self`` grounds the post-delta database; *old_root* is the (already
        computed) root of the pre-delta database.  Retraction runs
        DRed-style delete/re-derive over the ground rule *instances* of the
        old root — membership of an instance in the simple-grounder fixpoint
        depends only on the derivability of its positive body atoms, so:

        1. **Over-delete.**  Seed the deleted-atom set with the retracted
           facts; transitively delete every instance with a deleted positive
           body atom and mark its head deleted, regardless of remaining
           alternative derivations.  Over-approximating here is what makes
           cyclic self-support (``p :- q.  q :- p.`` after retracting the
           external support of ``p``) come out right.
        2. **Re-derive.**  Atoms that kept a surviving deriving instance,
           plus the inserted facts, seed one semi-naive propagation
           (:meth:`_propagate`) over the surviving instances — re-firing
           exactly the over-deleted instances whose bodies are genuinely
           still derivable, and re-instantiating any constraint whose body
           touches a changed atom.

        The result is set-identical to ``self.state_for(frozenset())``
        computed from scratch (differentially tested), at the cost of the
        changed cone instead of the whole fixpoint.
        """
        if old_root.atr_rules:
            raise GroundingError("delta_root_state requires the root (empty-AtR) state")
        self.stats.incremental_extensions += 1
        inserted_rules = [intern_rule(fact_rule(a)) for a in inserts]
        retracted = list(retracts)

        if not retracted:
            state = old_root.copy()
            delta = FactIndex()
            for rule_ in inserted_rules:
                if rule_ not in state.rules:
                    state.rules.add(rule_)
                    if state.heads.add(rule_.head):
                        delta.add(rule_.head)
            self._propagate(state, delta)
            return state

        retracted_rules = {intern_rule(fact_rule(a)) for a in retracted}
        body_index: dict[Atom, list[Rule]] = {}
        for rule_ in old_root.rules:
            for body_atom in rule_.positive_body:
                body_index.setdefault(body_atom, []).append(rule_)

        overdeleted: set[Rule] = {r for r in retracted_rules if r in old_root.rules}
        deleted_atoms: set[Atom] = set()
        worklist: list[Atom] = [intern_atom(a) for a in retracted]
        while worklist:
            atom_ = worklist.pop()
            if atom_ in deleted_atoms:
                continue
            deleted_atoms.add(atom_)
            for rule_ in body_index.get(atom_, ()):
                if rule_ not in overdeleted:
                    overdeleted.add(rule_)
                    worklist.append(rule_.head)

        surviving = set(old_root.rules) - overdeleted
        heads = make_fact_store(r.head for r in surviving)
        constraints = {
            c
            for c in old_root.constraints
            if not any(b in deleted_atoms for b in c.positive_body)
        }
        state = GroundingState(frozenset(), surviving, constraints, heads, set(), set())

        delta = FactIndex()
        for rule_ in inserted_rules:
            if rule_ not in state.rules:
                state.rules.add(rule_)
                if heads.add(rule_.head):
                    delta.add(rule_.head)
        for atom_ in deleted_atoms:
            # Re-derivation seeds: over-deleted atoms still covered by a
            # surviving instance re-enter the semi-naive frontier.
            if atom_ in heads:
                delta.add(atom_)
        self._propagate(state, delta)
        return state

    def extend_state(
        self, state: GroundingState, new_atr_rules: Iterable[GroundAtRRule]
    ) -> GroundingState:
        """Semi-naive extension: only matches involving newly derived heads are tried."""
        additions = set(new_atr_rules) - state.atr_rules
        child = state.copy()
        child.atr_rules = frozenset(child.atr_rules | additions)
        self._check_consistent(child.atr_rules)
        self.stats.incremental_extensions += 1

        delta = FactIndex()
        for atr_rule in additions:
            if atr_rule.active_atom in child.heads:
                child.fired_atr.add(atr_rule)
                if child.heads.add(atr_rule.result_atom):
                    delta.add(atr_rule.result_atom)
            else:
                child.unfired_atr.add(atr_rule)
        self._propagate(child, delta)
        return child

    def _propagate(self, state: GroundingState, delta: FactIndex) -> None:
        """Drive the semi-naive fixpoint: rounds of delta-driven matching.

        *delta* holds the heads derived in the previous round; each round
        matches every non-ground rule with the requirement that at least one
        body atom falls into the delta, fires AtR rules whose Active atom has
        become derivable, and collects the freshly derived heads as the next
        delta.  Constraints are instantiated at the end against the converged
        head set, again restricted to matches using a new head.
        """
        heads = state.heads
        rules = state.rules
        total_delta = FactIndex(delta)

        while len(delta):
            next_delta = FactIndex()
            for rule_ in self._proper_rules:
                for mapping in iter_join_seminaive(rule_.positive_body, heads, delta):
                    grounded = intern_rule(rule_.substitute(mapping))
                    if not grounded.is_ground or grounded in rules:
                        continue
                    rules.add(grounded)
                    self.stats.rules_derived += 1
                    if heads.add(grounded.head):
                        next_delta.add(grounded.head)
                        total_delta.add(grounded.head)
            for atr_rule in tuple(state.unfired_atr):
                if atr_rule.active_atom in heads:
                    state.unfired_atr.discard(atr_rule)
                    state.fired_atr.add(atr_rule)
                    if heads.add(atr_rule.result_atom):
                        next_delta.add(atr_rule.result_atom)
                        total_delta.add(atr_rule.result_atom)
            delta = next_delta

        if len(total_delta):
            for rule_ in self._constraint_rules:
                if rule_.positive_body:
                    matches = iter_join_seminaive(rule_.positive_body, heads, total_delta)
                else:
                    matches = ()
                for mapping in matches:
                    grounded = intern_rule(rule_.substitute(mapping))
                    if grounded.is_ground:
                        state.constraints.add(grounded)
        for rule_ in self._constraint_rules:
            if not rule_.positive_body and rule_.is_ground:
                state.constraints.add(intern_rule(rule_))


class PerfectGrounder(Grounder):
    """The perfect grounder ``GPerfect_{Π[D]}`` of Definition 5.1 (stratified programs only)."""

    def __init__(self, translated: TranslatedProgram, database: Database):
        super().__init__(translated, database)
        if not translated.program.is_stratified:
            raise StratificationError("the perfect grounder requires a stratified GDatalog¬ program")
        self._strata: list[frozenset[Predicate]] = translated.program.stratification()
        known = set().union(*self._strata) if self._strata else set()
        orphan_predicates = frozenset(
            p for p in (a.predicate for a in database.facts) if p not in known
        )
        if orphan_predicates:
            # Database predicates never mentioned by the program form a
            # lowest pseudo-stratum of their own.
            self._strata = [orphan_predicates] + self._strata
        self._constraint_sources: tuple[Rule, ...] = tuple(
            rule_
            for translation in self.translated.translations
            if translation.source.is_constraint
            for rule_ in translation.rules
        )

    def ground(
        self, atr_rules: frozenset[GroundAtRRule], seed: frozenset[Rule] | None = None
    ) -> frozenset[Rule]:
        self._check_consistent(atr_rules)
        current, _, _ = self._run_strata(atr_rules, start_index=0, base_rules=set())
        return frozenset(current | self._instantiate_constraints(current))

    # -- incremental path -------------------------------------------------------

    def state_for(self, atr_rules: frozenset[GroundAtRRule]) -> GroundingState:
        self._check_consistent(atr_rules)
        self.stats.full_groundings += 1
        current, resume_index, checkpoint = self._run_strata(
            atr_rules, start_index=0, base_rules=set()
        )
        return self._assemble_state(atr_rules, current, resume_index, checkpoint)

    def extend_state(
        self, state: GroundingState, new_atr_rules: Iterable[GroundAtRRule]
    ) -> GroundingState:
        """Resume the stratum pipeline at the checkpoint instead of from stratum 0.

        Strata processed strictly before the checkpoint cannot change when the
        AtR set grows: the new AtR rules cover Active atoms first derived in
        the checkpointed stratum, so their Result atoms only feed rules from
        that stratum onward.
        """
        atr_rules = frozenset(state.atr_rules | set(new_atr_rules))
        self._check_consistent(atr_rules)
        if state.resume_index >= len(self._strata):
            # Every stratum was already grounded and its Active atoms covered;
            # extra AtR rules cannot fire, so the grounding is unchanged.
            child = state.copy()
            child.atr_rules = atr_rules
            child.unfired_atr |= set(new_atr_rules) - state.atr_rules
            return child
        self.stats.incremental_extensions += 1
        current, resume_index, checkpoint = self._run_strata(
            atr_rules,
            start_index=state.resume_index,
            base_rules=set(state.checkpoint_rules),
        )
        return self._assemble_state(atr_rules, current, resume_index, checkpoint)

    # -- internals ----------------------------------------------------------------

    def _run_strata(
        self,
        atr_rules: frozenset[GroundAtRRule],
        start_index: int,
        base_rules: set[Rule],
    ) -> tuple[set[Rule], int, frozenset[Rule]]:
        """Process the strata pipeline from *start_index*.

        Returns ``(rules, resume_index, checkpoint)`` where *resume_index* is
        the first stratum a later extension has to reprocess (the stratum
        that derived the still-uncovered Active atoms, or ``len(strata)``
        when everything is covered) and *checkpoint* holds the rules derived
        before that stratum.
        """
        current: set[Rule] = set(base_rules)
        checkpoint: frozenset[Rule] = frozenset(base_rules)
        resume_index = len(self._strata)
        for index in range(start_index, len(self._strata)):
            component = self._strata[index]
            # Compatibility check of Definition 5.1: stop extending as soon as
            # the AtR set fails to cover an Active atom already derived.
            if pending_active_atoms(atr_rules, heads_of(current), self._active_predicates):
                resume_index = index - 1
                break
            checkpoint = frozenset(current)
            stratum_rules = list(self.translated.rules_for_head_predicates(component))
            stratum_facts = [r for r in self._fact_rules if r.head.predicate in component]
            derived = self._saturate(
                non_ground_rules=stratum_rules,
                atr_rules=atr_rules,
                initial_rules=list(current) + stratum_facts,
                respect_negation=True,
            )
            atr_plain = {r.as_rule() for r in atr_rules}
            current = set(derived - atr_plain)
        else:
            if pending_active_atoms(atr_rules, heads_of(current), self._active_predicates):
                resume_index = len(self._strata) - 1
        return current, resume_index, checkpoint

    def _instantiate_constraints(self, current: set[Rule]) -> set[Rule]:
        """Integrity constraints instantiated against the final head set.

        They belong to no stratum and never derive atoms.
        """
        instances: set[Rule] = set()
        if self._constraint_sources:
            heads = make_fact_store(heads_of(current))
            for rule_ in self._constraint_sources:
                for mapping in iter_join(rule_.positive_body, heads):
                    grounded = intern_rule(rule_.substitute(mapping))
                    if grounded.is_ground:
                        instances.add(grounded)
        return instances

    def _assemble_state(
        self,
        atr_rules: frozenset[GroundAtRRule],
        current: set[Rule],
        resume_index: int,
        checkpoint: frozenset[Rule],
    ) -> GroundingState:
        constraints = self._instantiate_constraints(current)
        heads = make_fact_store(r.head for r in current if not r.is_constraint)
        fired = {r for r in atr_rules if r.active_atom in heads}
        for rule_ in fired:
            heads.add(rule_.result_atom)
        return GroundingState(
            atr_rules,
            current,
            constraints,
            heads,
            fired,
            set(atr_rules) - fired,
            resume_index=resume_index,
            checkpoint_rules=checkpoint,
        )


def grounder_name(grounder: "str | Grounder") -> str:
    """The ``make_grounder`` name of a grounder family (``"simple"`` / ``"perfect"``).

    Lets callers rebuild a grounder of the same family over a different
    (e.g. query-sliced) program and database.  Custom :class:`Grounder`
    subclasses outside the two built-in families raise
    :class:`GroundingError` — silently rebuilding them as a different
    family would change which grounding implementation answers.
    """
    if isinstance(grounder, str):
        return grounder.lower()
    if isinstance(grounder, PerfectGrounder):
        return "perfect"
    if isinstance(grounder, SimpleGrounder):
        return "simple"
    raise GroundingError(
        f"cannot determine the grounder family of {type(grounder).__name__}; "
        "expected a SimpleGrounder or PerfectGrounder (sub)class"
    )


def make_grounder(
    name_or_instance: str | Grounder, translated: TranslatedProgram, database: Database
) -> Grounder:
    """Resolve ``"simple"`` / ``"perfect"`` / a ready-made grounder instance."""
    if isinstance(name_or_instance, Grounder):
        return name_or_instance
    normalized = name_or_instance.lower()
    if normalized == "simple":
        return SimpleGrounder(translated, database)
    if normalized == "perfect":
        return PerfectGrounder(translated, database)
    raise GroundingError(f"unknown grounder {name_or_instance!r}; expected 'simple' or 'perfect'")
