"""Query-relevant slicing of GDatalog¬[Δ] programs (magic-sets-style pruning).

Every query — marginal, stable-model existence, batched or served — is
answered from the chase of the *whole* program, even when the query mentions
one predicate in one corner of the rule graph.  Classic Datalog relevance
reasoning (magic sets / demand transformation) applies to the chase
semantics as well: a probabilistic choice whose outcomes cannot reach the
query atom through the predicate dependency graph contributes a factor of 1
to every query mass and never needs to be chased.  This module computes the
**backward-reachable slice** of a program for a query atom (or a batch of
atoms) and the restriction of the database to the slice, so the engine can
chase exponentially fewer triggers.

Soundness.  Dropping a set of rules ``T`` (the predicates not backward
reachable from the query) is exact when, for every chase outcome, ``T`` has
a *unique* stable extension of total probability 1.  The slice therefore
always keeps, in addition to the backward cone of the query atoms:

* **constraints and their cones** — a violated constraint kills every stable
  model of an outcome, which changes *any* query mass, so constraint bodies
  are permanent relevance seeds;
* **negative-cycle predicates and their cones** — an SCC of ``dg(Π)`` with
  an internal negative edge can kill (odd loop) or multiply (even loop)
  stable models, so stratified negation is followed conservatively: only
  rules whose dropped part is stratified relative to the slice are cut;
* **inexact probabilistic choices and their cones** — a dropped generative
  rule is only a factor of exactly 1 when its branch masses are dyadic
  (each pmf a power of two) and sum to exactly 1.0 in float arithmetic;
  anything else (infinite supports, non-dyadic weights, variable
  parameters) stays in the slice so sliced answers are **bit-identical**
  to unsliced ones, not merely close.

One caveat bounds the bit-identity claim: it holds whenever the **full**
chase is truncation-free under the configured limits (the default
``max_depth``/``max_outcomes`` are generous).  Slicing removes triggers,
so a sliced chase never truncates more than the full one — but a full
chase deep enough to hit the depth or outcome limits carries truncation
mass in the error event that the (shallower) sliced chase does not, in
which case the sliced answers are *more* exact than the full ones rather
than equal to them.

The slice is computed at the *source* level (before the ``Σ_Π``
translation), so the Active/Result machinery of dropped rules is never even
created.  When nothing can be cut the callers fall back to the full engine
transparently; when the query predicate is unreachable the slice is empty
and the chase degenerates to the single empty outcome (marginal 0,
P(has stable model) 1 — exactly the full program's answers, because an
empty slice certifies that no constraint and no negative cycle exists).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import ValidationError
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule
from repro.logic.atoms import Atom, Predicate
from repro.logic.database import Database
from repro.logic.parser import parse_atom
from repro.logic.terms import Variable

__all__ = [
    "QuerySlice",
    "relevant_predicates",
    "forward_reachable",
    "permanent_seeds",
    "compute_slice",
    "atoms_for_queries",
]


@dataclass(frozen=True)
class QuerySlice:
    """The query-relevant restriction of a program and its database.

    ``predicates`` is the relevant predicate set (the backward closure of
    the query atoms and the permanent seeds); ``program`` keeps exactly the
    rules whose head predicate is relevant plus every constraint, and
    ``database`` keeps the facts over relevant predicates.
    """

    source: GDatalogProgram
    program: GDatalogProgram
    database: Database
    predicates: frozenset[Predicate]
    query_atoms: tuple[Atom, ...]
    dropped_rules: int
    dropped_facts: int

    @property
    def is_full(self) -> bool:
        """Whether slicing cut nothing (callers keep the original engine)."""
        return self.dropped_rules == 0 and self.dropped_facts == 0

    @property
    def is_empty(self) -> bool:
        """Whether nothing at all is relevant (the unreachable-query fast path)."""
        return len(self.program) == 0 and len(self.database) == 0

    def summary(self) -> str:
        return (
            f"slice: {len(self.program)}/{len(self.source)} rules, "
            f"{len(self.database)}/{len(self.database) + self.dropped_facts} facts, "
            f"{len(self.predicates)} relevant predicate(s)"
        )


# ---------------------------------------------------------------------------
# Backward reachability over dg(Π)
# ---------------------------------------------------------------------------


def relevant_predicates(
    program: GDatalogProgram, seeds: Iterable[Predicate]
) -> frozenset[Predicate]:
    """The backward closure of *seeds* over the predicate dependency graph.

    A predicate is relevant when it is a seed or occurs in the body —
    positive **or** negative, since negation influences derivability just as
    positively as membership does — of a rule whose head predicate is
    already relevant.  Constraint rules contribute no edges (they are
    excluded from ``dg(Π)``); their bodies enter through
    :func:`permanent_seeds` instead.  Delegates to the shared
    :class:`~repro.logic.predgraph.PredicateGraph`, so repeated queries
    reuse one memoised adjacency map.
    """
    return program.predicate_graph().backward_closure(seeds)


def forward_reachable(
    program: GDatalogProgram, seeds: Iterable[Predicate]
) -> frozenset[Predicate]:
    """The forward closure of *seeds* over the predicate dependency graph.

    The dual of :func:`relevant_predicates`: a predicate is forward
    reachable when it is a seed or is the **head** of a rule whose body —
    positive or negative, for the same reason negation counts backwards —
    mentions a forward-reachable predicate.  This is the "affected cone" of
    a database delta: every predicate whose extension can change when facts
    over the seed predicates are inserted or retracted lies in the closure,
    so anything outside it is untouched and its chase structure can be
    shared verbatim.  Constraint rules have no head and contribute no
    edges; a delta's effect on constraint *instances* is judged separately
    (see :mod:`repro.gdatalog.incremental`).
    """
    return program.predicate_graph().forward_closure(seeds)


def permanent_seeds(program: GDatalogProgram) -> frozenset[Predicate]:
    """Predicates every slice must contain regardless of the query.

    Three sources (see the module docstring for why each is load-bearing):
    constraint bodies, members of dependency-graph SCCs with an internal
    negative edge, and the heads of generative rules whose dropped chase
    branches would not contribute a factor of exactly 1.
    """
    seeds: set[Predicate] = set()
    for rule_ in program.rules:
        if rule_.is_constraint:
            seeds.update(a.predicate for a in rule_.positive_body + rule_.negative_body)
        elif rule_.is_generative and not _drops_exactly(rule_, program):
            seeds.add(rule_.head.predicate)

    graph = program.predicate_graph()
    for index in graph.negative_cycle_sccs:
        seeds.update(graph.sccs[index])
    return frozenset(seeds)


def _drops_exactly(rule_: GDatalogRule, program: GDatalogProgram) -> bool:
    """Whether dropping this generative rule contributes a factor of exactly 1.

    Every chase outcome of the full program splits its probability into the
    sliced factors times the dropped factors; the split is bit-exact iff
    each dropped pmf is a power of two (scaling by it never rounds) and the
    branch masses sum to exactly 1.0 (no truncation, no float shortfall).
    Variable distribution parameters cannot be checked statically and are
    kept conservatively.
    """
    registry = program.registry
    for _position, delta in rule_.delta_terms():
        if any(isinstance(term, Variable) for term in delta.parameters):
            return False
        try:
            params = delta.parameter_values()
        except ValidationError:
            return False
        distribution = registry.get(delta.distribution.lower())
        if not distribution.has_finite_support(params):
            return False
        masses = [
            pmf
            for outcome in distribution.support(params)
            if (pmf := distribution.pmf(params, outcome)) > 0.0
        ]
        if math.fsum(masses) != 1.0:
            return False
        if any(math.frexp(mass)[0] != 0.5 for mass in masses):
            return False
    return True


# ---------------------------------------------------------------------------
# Slice construction
# ---------------------------------------------------------------------------


def compute_slice(
    program: GDatalogProgram,
    database: Database,
    query_atoms: Sequence[Atom | str],
    permanent: frozenset[Predicate] | None = None,
) -> QuerySlice:
    """The query-relevant slice of ``(Π, D)`` for a batch of query atoms.

    An empty *query_atoms* is valid and yields the "model-killing core"
    (constraints, negative cycles, inexact choices and their cones) — the
    exact slice for :class:`~repro.ppdl.queries.HasStableModelQuery`.
    *permanent* lets callers holding a precomputed
    :class:`~repro.gdatalog.checker.ProgramAnalysis` pass its cached
    :func:`permanent_seeds` instead of re-deriving them per request.
    """
    atoms = tuple(parse_atom(a) if isinstance(a, str) else a for a in query_atoms)
    if permanent is None:
        permanent = permanent_seeds(program)
    seeds = {a.predicate for a in atoms} | set(permanent)
    relevant = relevant_predicates(program, seeds)

    kept_rules = tuple(
        r for r in program.rules if r.is_constraint or r.head.predicate in relevant
    )
    kept_facts = tuple(f for f in database.facts if f.predicate in relevant)
    dropped_rules = len(program) - len(kept_rules)
    dropped_facts = len(database) - len(kept_facts)
    if dropped_rules == 0 and dropped_facts == 0:
        sliced_program, sliced_database = program, database
    else:
        sliced_program = GDatalogProgram(kept_rules, program.registry)
        sliced_database = Database(kept_facts)
    return QuerySlice(
        source=program,
        program=sliced_program,
        database=sliced_database,
        predicates=relevant,
        query_atoms=atoms,
        dropped_rules=dropped_rules,
        dropped_facts=dropped_facts,
    )


def atoms_for_queries(queries: Iterable) -> tuple[Atom, ...] | None:
    """The relevance seeds of a query batch, or ``None`` when it cannot be sliced.

    :class:`~repro.ppdl.queries.AtomQuery` contributes its atom;
    :class:`~repro.ppdl.queries.HasStableModelQuery` contributes nothing
    (the permanent seeds already cover everything that can kill a model).
    Any other query shape (generic event predicates, conditionals) inspects
    whole outcomes, so the batch must fall back to the full program.
    """
    from repro.ppdl.queries import AtomQuery, HasStableModelQuery

    atoms: list[Atom] = []
    for query in queries:
        if isinstance(query, AtomQuery):
            atoms.append(query.atom)
        elif isinstance(query, HasStableModelQuery):
            continue
        else:
            return None
    return tuple(atoms)
