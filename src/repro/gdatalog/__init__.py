"""Generative Datalog with stable negation: syntax, translation, grounders, chase, inference."""

from repro.gdatalog.atr import (
    AtRSpec,
    GroundAtRRule,
    atr_function,
    is_compatible,
    is_consistent,
    pending_active_atoms,
)
from repro.gdatalog.chase import ChaseConfig, ChaseEngine, ChaseNode, ChaseResult, TriggerStrategy
from repro.gdatalog.delta_terms import DeltaTerm
from repro.gdatalog.dependency import (
    format_dependency_graph,
    format_stratification,
    to_dot,
    to_networkx,
)
from repro.gdatalog.engine import GDatalogEngine
from repro.gdatalog.grounders import Grounder, PerfectGrounder, SimpleGrounder, heads_of, make_grounder
from repro.gdatalog.outcomes import PossibleOutcome, outcome_probability
from repro.gdatalog.probability_space import Event, OutputSpace
from repro.gdatalog.relevance import (
    QuerySlice,
    atoms_for_queries,
    compute_slice,
    permanent_seeds,
    relevant_predicates,
)
from repro.gdatalog.sampler import Estimate, MonteCarloSampler, SampleStats
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule, HeadAtom, desugar_constraints
from repro.gdatalog.translate import RuleTranslation, TranslatedProgram, translate_program, translate_rule
from repro.gdatalog.verification import (
    GrounderCheckReport,
    check_monotonicity,
    check_semantic_adequacy,
    collect_chase_atr_sets,
    reference_stable_models,
    totalizers_of,
)

__all__ = [
    "AtRSpec",
    "GroundAtRRule",
    "atr_function",
    "is_compatible",
    "is_consistent",
    "pending_active_atoms",
    "ChaseConfig",
    "ChaseEngine",
    "ChaseNode",
    "ChaseResult",
    "TriggerStrategy",
    "DeltaTerm",
    "format_dependency_graph",
    "format_stratification",
    "to_dot",
    "to_networkx",
    "GDatalogEngine",
    "Grounder",
    "PerfectGrounder",
    "SimpleGrounder",
    "heads_of",
    "make_grounder",
    "PossibleOutcome",
    "outcome_probability",
    "Event",
    "OutputSpace",
    "QuerySlice",
    "atoms_for_queries",
    "compute_slice",
    "permanent_seeds",
    "relevant_predicates",
    "Estimate",
    "MonteCarloSampler",
    "SampleStats",
    "GDatalogProgram",
    "GDatalogRule",
    "HeadAtom",
    "desugar_constraints",
    "RuleTranslation",
    "TranslatedProgram",
    "translate_program",
    "translate_rule",
    "GrounderCheckReport",
    "check_monotonicity",
    "check_semantic_adequacy",
    "collect_chase_atr_sets",
    "reference_stable_models",
    "totalizers_of",
]
