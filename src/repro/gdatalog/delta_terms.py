"""Δ-terms: symbolic samples from parameterized distributions.

A Δ-term ``δ⟨p̄⟩[q̄]`` consists of a distribution name ``δ ∈ Δ``, a non-empty
tuple of *distribution parameters* ``p̄`` and a (possibly empty) tuple of
terms ``q̄`` called the *event signature*.  It denotes a sample from the
distribution ``δ⟨p̄⟩``; distinct event signatures yield distinct (independent)
samples, while ground atoms agreeing on ``δ``, ``p̄`` and ``q̄`` share the
same sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.exceptions import ValidationError
from repro.logic.terms import Constant, Term, Variable

__all__ = ["DeltaTerm"]


@dataclass(frozen=True)
class DeltaTerm:
    """The syntactic object ``δ⟨p̄⟩[q̄]`` appearing in GDatalog¬[Δ] rule heads."""

    distribution: str
    parameters: tuple[Term, ...]
    event_signature: tuple[Term, ...] = ()

    def __post_init__(self) -> None:
        if not self.distribution:
            raise ValidationError("Δ-terms need a distribution name")
        if not self.parameters:
            raise ValidationError(f"Δ-term {self.distribution} needs a non-empty parameter tuple")
        for term in self.parameters + self.event_signature:
            if not isinstance(term, (Constant, Variable)):
                raise ValidationError(
                    f"Δ-term arguments must be ordinary terms, got {type(term).__name__}"
                )

    # -- inspection ---------------------------------------------------------

    @property
    def parameter_dimension(self) -> int:
        return len(self.parameters)

    @property
    def event_arity(self) -> int:
        return len(self.event_signature)

    def variables(self) -> set[Variable]:
        """All variables occurring in the parameters or the event signature."""
        return {t for t in self.parameters + self.event_signature if isinstance(t, Variable)}

    @property
    def is_ground(self) -> bool:
        return not self.variables()

    # -- construction -------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "DeltaTerm":
        """Apply a variable mapping to the parameters and the event signature."""
        new_params = tuple(mapping.get(t, t) if isinstance(t, Variable) else t for t in self.parameters)
        new_events = tuple(
            mapping.get(t, t) if isinstance(t, Variable) else t for t in self.event_signature
        )
        if new_params == self.parameters and new_events == self.event_signature:
            return self
        return DeltaTerm(self.distribution, new_params, new_events)

    def parameter_values(self) -> tuple[float, ...]:
        """The parameters as real numbers (requires the Δ-term to be ground)."""
        values: list[float] = []
        for term in self.parameters:
            if not isinstance(term, Constant):
                raise ValidationError(f"Δ-term {self} is not ground")
            values.append(term.as_number())
        return tuple(values)

    # -- dunder -------------------------------------------------------------

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.parameters)
        rendered = f"{self.distribution}<{params}>"
        if self.event_signature:
            events = ", ".join(str(t) for t in self.event_signature)
            rendered += f"[{events}]"
        return rendered

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DeltaTerm({self!s})"
