"""Active-to-Result (AtR) machinery: specs, ground AtR rules, consistency.

The translation of a GDatalog¬[Δ] program introduces, for every Δ-term
``δ⟨p̄⟩[q̄]`` occurring in a rule head, a pair of fresh predicates::

    Active^δ_{|q̄|}(p̄, q̄)            (arity |p̄| + |q̄|)
    Result^δ_{|q̄|}(p̄, q̄, y)         (arity |p̄| + |q̄| + 1)

linked by the *active-to-result TGD* ``Active(p̄, q̄) → ∃y Result(p̄, q̄, y)``.
A **ground AtR rule** fixes the existential witness to a concrete outcome:
``Active(p̄, q̄) → Result(p̄, q̄, o)``; sets of ground AtR rules encode
configurations of probabilistic choices.  This module provides:

* :class:`AtRSpec` — metadata tying the fresh predicates back to the
  distribution;
* :class:`GroundAtRRule` — a single ground AtR TGD;
* consistency (Definition: functional on the Active atom), the induced
  partial function, compatibility ``AtR_Σ ↩→ Σ'`` and totalizers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.distributions.base import Outcome
from repro.distributions.registry import DistributionRegistry
from repro.exceptions import GroundingError, ValidationError
from repro.logic.atoms import Atom, Predicate
from repro.logic.intern import intern_atom, intern_rule
from repro.logic.rules import Rule
from repro.logic.terms import Constant

__all__ = [
    "AtRSpec",
    "GroundAtRRule",
    "active_predicate_name",
    "result_predicate_name",
    "is_consistent",
    "atr_function",
    "is_compatible",
    "pending_active_atoms",
    "outcome_to_constant",
]


def active_predicate_name(distribution: str, parameter_count: int, event_count: int) -> str:
    """The fresh predicate name ``active_<δ>_<|p̄|>_<|q̄|>``."""
    return f"active_{distribution}_{parameter_count}_{event_count}"


def result_predicate_name(distribution: str, parameter_count: int, event_count: int) -> str:
    """The fresh predicate name ``result_<δ>_<|p̄|>_<|q̄|>``."""
    return f"result_{distribution}_{parameter_count}_{event_count}"


def outcome_to_constant(outcome: Outcome) -> Constant:
    """Convert a distribution outcome (a Python number) into a :class:`Constant`."""
    if isinstance(outcome, bool):
        return Constant(int(outcome))
    if isinstance(outcome, float) and outcome.is_integer():
        return Constant(int(outcome))
    return Constant(outcome)


@dataclass(frozen=True)
class AtRSpec:
    """Metadata of one Active/Result predicate pair introduced by the translation."""

    distribution: str
    parameter_count: int
    event_count: int

    @property
    def active_predicate(self) -> Predicate:
        return Predicate(
            active_predicate_name(self.distribution, self.parameter_count, self.event_count),
            self.parameter_count + self.event_count,
        )

    @property
    def result_predicate(self) -> Predicate:
        return Predicate(
            result_predicate_name(self.distribution, self.parameter_count, self.event_count),
            self.parameter_count + self.event_count + 1,
        )

    def parameters_of(self, active_atom: Atom) -> tuple[float, ...]:
        """Extract the distribution parameters ``p̄`` from a ground Active atom."""
        values: list[float] = []
        for term in active_atom.args[: self.parameter_count]:
            if not isinstance(term, Constant):
                raise GroundingError(f"active atom {active_atom} is not ground")
            values.append(term.as_number())
        return tuple(values)

    def result_atom(self, active_atom: Atom, outcome: Outcome) -> Atom:
        """The Result atom obtained by appending *outcome* to an Active atom."""
        return Atom(self.result_predicate, active_atom.args + (outcome_to_constant(outcome),))


@dataclass(frozen=True)
class GroundAtRRule:
    """A ground active-to-result TGD ``Active(p̄, q̄) → Result(p̄, q̄, o)``."""

    spec: AtRSpec
    active_atom: Atom
    result_atom: Atom

    def __post_init__(self) -> None:
        if self.active_atom.predicate != self.spec.active_predicate:
            raise ValidationError(
                f"active atom {self.active_atom} does not match spec predicate {self.spec.active_predicate}"
            )
        if self.result_atom.predicate != self.spec.result_predicate:
            raise ValidationError(
                f"result atom {self.result_atom} does not match spec predicate {self.spec.result_predicate}"
            )
        if self.result_atom.args[:-1] != self.active_atom.args:
            raise ValidationError(
                f"result atom {self.result_atom} does not extend active atom {self.active_atom}"
            )
        if not self.active_atom.is_ground or not self.result_atom.is_ground:
            raise ValidationError("ground AtR rules must be ground")

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def of(spec: AtRSpec, active_atom: Atom, outcome: Outcome) -> "GroundAtRRule":
        # Interned: the same trigger/outcome pair is instantiated once per
        # process even though every sibling subtree of the chase recreates it.
        return GroundAtRRule(
            spec,
            intern_atom(active_atom),
            intern_atom(spec.result_atom(active_atom, outcome)),
        )

    # -- inspection ------------------------------------------------------------

    @property
    def outcome(self) -> Constant:
        """The chosen sample ``o`` (last argument of the Result atom)."""
        last = self.result_atom.args[-1]
        assert isinstance(last, Constant)
        return last

    @property
    def outcome_value(self) -> float:
        return self.outcome.as_number()

    def parameters(self) -> tuple[float, ...]:
        return self.spec.parameters_of(self.active_atom)

    def probability(self, registry: DistributionRegistry) -> float:
        """``δ⟨p̄⟩(o)`` under the given distribution registry."""
        distribution = registry.get(self.spec.distribution)
        return distribution.pmf(self.parameters(), _constant_to_outcome(self.outcome))

    def as_rule(self) -> Rule:
        """The ground AtR rule viewed as a plain ground Datalog rule (interned)."""
        return intern_rule(Rule(self.result_atom, (self.active_atom,), ()))

    def sort_key(self) -> tuple:
        """Cheap structural ordering key (the Result atom determines the rule)."""
        return self.result_atom.sort_key()

    def __str__(self) -> str:
        return f"{self.result_atom} :- {self.active_atom}."

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GroundAtRRule({self!s})"


def _constant_to_outcome(constant: Constant) -> Outcome:
    value = constant.value
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return value
    return constant.as_number()


# -- set-level notions ---------------------------------------------------------


def is_consistent(atr_rules: Iterable[GroundAtRRule]) -> bool:
    """Functional consistency: no two AtR rules share an Active atom with different outcomes."""
    chosen: dict[Atom, Constant] = {}
    for rule_ in atr_rules:
        existing = chosen.get(rule_.active_atom)
        if existing is not None and existing != rule_.outcome:
            return False
        chosen[rule_.active_atom] = rule_.outcome
    return True


def atr_function(atr_rules: Iterable[GroundAtRRule]) -> dict[Atom, Atom]:
    """The partial function ``AtR_Σ : Act → Res`` induced by a consistent AtR set."""
    mapping: dict[Atom, Atom] = {}
    for rule_ in atr_rules:
        existing = mapping.get(rule_.active_atom)
        if existing is not None and existing != rule_.result_atom:
            raise GroundingError(
                f"inconsistent AtR set: {rule_.active_atom} maps to both {existing} and {rule_.result_atom}"
            )
        mapping[rule_.active_atom] = rule_.result_atom
    return mapping


def is_compatible(
    atr_rules: Iterable[GroundAtRRule],
    head_atoms: Iterable[Atom],
    active_predicates: set[Predicate],
) -> bool:
    """``AtR_Σ ↩→ Σ'``: the AtR function is defined on every Active atom in *head_atoms*."""
    return not pending_active_atoms(atr_rules, head_atoms, active_predicates)


def pending_active_atoms(
    atr_rules: Iterable[GroundAtRRule],
    head_atoms: Iterable[Atom],
    active_predicates: set[Predicate],
) -> list[Atom]:
    """Active atoms occurring in *head_atoms* for which no AtR rule exists (the chase triggers)."""
    defined = {rule_.active_atom for rule_ in atr_rules}
    pending = {
        atom_
        for atom_ in head_atoms
        if atom_.predicate in active_predicates and atom_ not in defined
    }
    return sorted(pending, key=Atom.sort_key)
