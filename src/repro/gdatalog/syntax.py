"""Syntax of GDatalog¬[Δ] programs: Δ-atoms, rules and programs.

A GDatalog¬[Δ] rule has the shape::

    R1(ū1), ..., Rn(ūn), ¬P1(v̄1), ..., ¬Pm(v̄m)  →  R0(w̄)

where ``w̄`` may mix ordinary terms and Δ-terms, and every variable of the
head (including those inside Δ-terms), and of every negative literal, must
occur in some positive body atom (safety).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.distributions.registry import DistributionRegistry, default_registry
from repro.exceptions import StratificationError, ValidationError
from repro.gdatalog.delta_terms import DeltaTerm
from repro.logic.atoms import Atom, Predicate
from repro.logic.predgraph import PredicateGraph
from repro.logic.program import DatalogProgram, DependencyGraph
from repro.logic.rules import FALSE_ATOM, FALSE_PREDICATE, Rule
from repro.logic.terms import Constant, Term, Variable

__all__ = ["HeadAtom", "GDatalogRule", "GDatalogProgram", "desugar_constraints"]

#: Argument of a head atom: an ordinary term or a Δ-term.
HeadArg = Term | DeltaTerm


@dataclass(frozen=True)
class HeadAtom:
    """A Δ-atom: an atom whose arguments may include Δ-terms (head position only)."""

    predicate: Predicate
    args: tuple[HeadArg, ...]

    def __post_init__(self) -> None:
        if len(self.args) != self.predicate.arity:
            raise ValidationError(
                f"Δ-atom {self.predicate.name} expects {self.predicate.arity} arguments, got {len(self.args)}"
            )
        for arg in self.args:
            if not isinstance(arg, (Constant, Variable, DeltaTerm)):
                raise ValidationError(
                    f"Δ-atom arguments must be terms or Δ-terms, got {type(arg).__name__}"
                )

    # -- inspection ---------------------------------------------------------

    @property
    def has_delta(self) -> bool:
        return any(isinstance(a, DeltaTerm) for a in self.args)

    def delta_terms(self) -> tuple[tuple[int, DeltaTerm], ...]:
        """The Δ-terms of the atom together with their argument positions."""
        return tuple((i, a) for i, a in enumerate(self.args) if isinstance(a, DeltaTerm))

    def variables(self) -> set[Variable]:
        result: set[Variable] = set()
        for arg in self.args:
            if isinstance(arg, Variable):
                result.add(arg)
            elif isinstance(arg, DeltaTerm):
                result |= arg.variables()
        return result

    def to_atom(self) -> Atom:
        """The plain atom, valid only when no Δ-terms occur."""
        if self.has_delta:
            raise ValidationError(f"Δ-atom {self} contains Δ-terms and is not a plain atom")
        return Atom(self.predicate, tuple(a for a in self.args if isinstance(a, (Constant, Variable))))

    # -- construction -------------------------------------------------------

    def substitute(self, mapping: Mapping[Variable, Term]) -> "HeadAtom":
        new_args: list[HeadArg] = []
        for arg in self.args:
            if isinstance(arg, Variable):
                new_args.append(mapping.get(arg, arg))
            elif isinstance(arg, DeltaTerm):
                new_args.append(arg.substitute(mapping))
            else:
                new_args.append(arg)
        return HeadAtom(self.predicate, tuple(new_args))

    @staticmethod
    def from_atom(atom_: Atom) -> "HeadAtom":
        return HeadAtom(atom_.predicate, atom_.args)

    # -- dunder -------------------------------------------------------------

    def __str__(self) -> str:
        if not self.args:
            return self.predicate.name
        return f"{self.predicate.name}({', '.join(str(a) for a in self.args)})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"HeadAtom({self!s})"


@dataclass(frozen=True)
class GDatalogRule:
    """A GDatalog¬[Δ] rule (or an integrity constraint when the head is ``⊥``)."""

    head: HeadAtom
    positive_body: tuple[Atom, ...] = ()
    negative_body: tuple[Atom, ...] = ()

    def __post_init__(self) -> None:
        positive_vars: set[Variable] = set()
        for atom_ in self.positive_body:
            positive_vars |= atom_.variables()
        unsafe_head = self.head.variables() - positive_vars
        if unsafe_head:
            raise ValidationError(
                f"unsafe GDatalog rule {self}: head variables "
                f"{sorted(str(v) for v in unsafe_head)} do not occur in the positive body"
            )
        for atom_ in self.negative_body:
            missing = atom_.variables() - positive_vars
            if missing:
                raise ValidationError(
                    f"unsafe GDatalog rule {self}: negated variables "
                    f"{sorted(str(v) for v in missing)} do not occur in the positive body"
                )

    # -- constructors --------------------------------------------------------

    @staticmethod
    def constraint(positive: Sequence[Atom] = (), negative: Sequence[Atom] = ()) -> "GDatalogRule":
        """Build an integrity constraint ``⊥ ← body``."""
        return GDatalogRule(HeadAtom.from_atom(FALSE_ATOM), tuple(positive), tuple(negative))

    @staticmethod
    def from_rule(rule_: Rule) -> "GDatalogRule":
        """Lift a plain Datalog¬ rule into a (non-generative) GDatalog rule."""
        return GDatalogRule(HeadAtom.from_atom(rule_.head), rule_.positive_body, rule_.negative_body)

    # -- inspection ----------------------------------------------------------

    @property
    def is_constraint(self) -> bool:
        return self.head.predicate == FALSE_PREDICATE

    @property
    def is_generative(self) -> bool:
        """Whether the head mentions at least one Δ-term."""
        return self.head.has_delta

    @property
    def is_positive(self) -> bool:
        return not self.negative_body

    @property
    def is_fact(self) -> bool:
        return not self.positive_body and not self.negative_body and not self.head.variables()

    def delta_terms(self) -> tuple[tuple[int, DeltaTerm], ...]:
        return self.head.delta_terms()

    def predicates(self) -> set[Predicate]:
        result = {self.head.predicate}
        result |= {a.predicate for a in self.positive_body}
        result |= {a.predicate for a in self.negative_body}
        result.discard(FALSE_PREDICATE)
        return result

    def variables(self) -> set[Variable]:
        result = self.head.variables()
        for atom_ in self.positive_body + self.negative_body:
            result |= atom_.variables()
        return result

    def to_rule(self) -> Rule:
        """The plain Datalog¬ rule, valid only for non-generative rules."""
        if self.is_generative:
            raise ValidationError(f"rule {self} is generative and has no plain-Datalog reading")
        head = FALSE_ATOM if self.is_constraint else self.head.to_atom()
        return Rule(head, self.positive_body, self.negative_body)

    # -- dunder ---------------------------------------------------------------

    def __str__(self) -> str:
        body = [str(a) for a in self.positive_body] + [f"not {a}" for a in self.negative_body]
        head = "" if self.is_constraint else str(self.head)
        if not body:
            return f"{head}."
        prefix = f"{head} " if head else ""
        return f"{prefix}:- {', '.join(body)}."

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GDatalogRule({self!s})"


class GDatalogProgram:
    """A finite set of GDatalog¬[Δ] rules together with the distribution set Δ."""

    def __init__(
        self,
        rules: Iterable[GDatalogRule],
        registry: DistributionRegistry | None = None,
    ):
        self._rules: tuple[GDatalogRule, ...] = tuple(rules)
        self._registry = registry if registry is not None else default_registry()
        self._cache: dict[str, object] = {}
        for rule_ in self._rules:
            if not isinstance(rule_, GDatalogRule):
                raise ValidationError(f"GDatalog programs contain GDatalog rules, got {type(rule_).__name__}")
        self._validate_delta_terms()

    # -- validation -----------------------------------------------------------

    def _validate_delta_terms(self) -> None:
        for rule_ in self._rules:
            for _, delta in rule_.delta_terms():
                if not self._registry.knows(delta.distribution):
                    raise ValidationError(
                        f"rule {rule_} uses unknown distribution {delta.distribution!r}"
                    )
                distribution = self._registry.get(delta.distribution)
                expected = distribution.parameter_dimension
                if expected is not None and delta.parameter_dimension != expected:
                    raise ValidationError(
                        f"distribution {delta.distribution!r} expects {expected} parameter(s), "
                        f"Δ-term {delta} supplies {delta.parameter_dimension}"
                    )

    # -- views ------------------------------------------------------------------

    @property
    def rules(self) -> tuple[GDatalogRule, ...]:
        return self._rules

    @property
    def registry(self) -> DistributionRegistry:
        return self._registry

    def __iter__(self) -> Iterator[GDatalogRule]:
        return iter(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    def __str__(self) -> str:
        return "\n".join(str(r) for r in self._rules)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GDatalogProgram({len(self._rules)} rules)"

    # -- schema -------------------------------------------------------------------

    def predicates(self) -> frozenset[Predicate]:
        """``sch(Π)`` (excluding ``⊥``)."""
        result: set[Predicate] = set()
        for rule_ in self._rules:
            result |= rule_.predicates()
        return frozenset(result)

    def intensional_predicates(self) -> frozenset[Predicate]:
        """``idb(Π)``: predicates occurring in some (non-constraint) rule head."""
        return frozenset(r.head.predicate for r in self._rules if not r.is_constraint)

    def extensional_predicates(self) -> frozenset[Predicate]:
        """``edb(Π)``: predicates occurring only in rule bodies."""
        return frozenset(self.predicates() - self.intensional_predicates())

    # -- properties ------------------------------------------------------------------

    @property
    def is_positive(self) -> bool:
        return all(r.is_positive for r in self._rules) and not any(r.is_constraint for r in self._rules)

    @property
    def has_constraints(self) -> bool:
        return any(r.is_constraint for r in self._rules)

    def generative_rules(self) -> tuple[GDatalogRule, ...]:
        return tuple(r for r in self._rules if r.is_generative)

    def constraints(self) -> tuple[GDatalogRule, ...]:
        return tuple(r for r in self._rules if r.is_constraint)

    # -- dependency / stratification ----------------------------------------------------

    def dependency_graph(self) -> DependencyGraph:
        """``dg(Π)``: the predicate dependency multigraph (constraints excluded)."""
        if "dependency_graph" not in self._cache:
            positive: set[tuple[Predicate, Predicate]] = set()
            negative: set[tuple[Predicate, Predicate]] = set()
            for rule_ in self._rules:
                if rule_.is_constraint:
                    continue
                head_predicate = rule_.head.predicate
                for atom_ in rule_.positive_body:
                    positive.add((atom_.predicate, head_predicate))
                for atom_ in rule_.negative_body:
                    negative.add((atom_.predicate, head_predicate))
            self._cache["dependency_graph"] = DependencyGraph(
                self.predicates(), frozenset(positive), frozenset(negative)
            )
        return self._cache["dependency_graph"]

    def predicate_graph(self) -> PredicateGraph:
        """The shared :class:`~repro.logic.predgraph.PredicateGraph` IR of ``dg(Π)``.

        Memoised on the program, so relevance slicing, incremental
        maintenance and the static checker all share one graph (and its
        cached SCC/closure state) instead of rebuilding adjacency maps.
        """
        return self.dependency_graph().predicate_graph

    @property
    def is_stratified(self) -> bool:
        """Whether ``dg(Π)`` has no cycle through a negative edge (GDatalog¬ˢ[Δ])."""
        return not self.dependency_graph().has_negative_cycle()

    def stratification(self) -> list[frozenset[Predicate]]:
        """A topological ordering over ``scc(Π)``; raises if not stratified."""
        graph = self.predicate_graph()
        witness = graph.negative_cycle_witness()
        if witness is not None:
            path = f"{witness[0]} -[not]-> " + " -> ".join(str(p) for p in witness[1:])
            raise StratificationError(f"GDatalog¬ program is not stratified ({path})")
        return list(graph.sccs)

    # -- composition ----------------------------------------------------------------------

    def with_rules(self, extra: Iterable[GDatalogRule]) -> "GDatalogProgram":
        return GDatalogProgram(self._rules + tuple(extra), self._registry)

    def restricted_to_heads(self, predicates: Iterable[Predicate]) -> "GDatalogProgram":
        """``Π|_C``: rules whose head predicate belongs to *predicates*."""
        allowed = set(predicates)
        return GDatalogProgram(
            (r for r in self._rules if r.head.predicate in allowed), self._registry
        )

    def non_generative_part(self) -> DatalogProgram:
        """The plain Datalog¬ program formed by the non-generative rules."""
        return DatalogProgram(r.to_rule() for r in self._rules if not r.is_generative)


def desugar_constraints(program: GDatalogProgram) -> GDatalogProgram:
    """Replace ``⊥`` constraints by the paper's stable-negation simulation.

    Every constraint ``← body`` becomes ``fail ← body`` plus the single rule
    ``aux ← fail, ¬aux`` (with fresh 0-ary predicates ``__fail__aux`` /
    ``__fail__flag``), which admits no stable model containing ``fail``.
    """
    fail_predicate = Predicate("__fail__flag", 0)
    aux_predicate = Predicate("__fail__aux", 0)
    fail_atom = Atom(fail_predicate, ())
    aux_atom = Atom(aux_predicate, ())

    new_rules: list[GDatalogRule] = []
    has_constraint = False
    for rule_ in program.rules:
        if rule_.is_constraint:
            has_constraint = True
            new_rules.append(
                GDatalogRule(HeadAtom.from_atom(fail_atom), rule_.positive_body, rule_.negative_body)
            )
        else:
            new_rules.append(rule_)
    if has_constraint:
        new_rules.append(
            GDatalogRule(HeadAtom.from_atom(aux_atom), (fail_atom,), (aux_atom,))
        )
    return GDatalogProgram(new_rules, program.registry)
