"""The chase procedure on ground AtR programs (Section 4).

The chase operates on sets of ground AtR rules ("configurations of
probabilistic choices").  A node labelled ``Σ`` has, for a *trigger*
``α = Active^δ(p̄, q̄) ∈ heads(G(Σ))`` not yet covered by ``Σ``, one child per
outcome ``o`` with ``δ⟨p̄⟩(o) > 0``; a node without triggers is a leaf and its
label (joined with ``G(Σ)``) is a finite possible outcome.  Lemma 4.4 shows
the set of finite-path results is independent of the trigger order; the test
suite exercises this with different :class:`TriggerStrategy` choices.

Distributions with infinite support are truncated at a configurable
probability-mass tolerance, and paths exceeding the depth limit are cut off;
the probability mass lost this way is accounted to the error event
``Ω∞`` (mirroring the treatment of infinite outcomes in the paper).

Since the tree of configurations shares Σ-prefixes along every path, the
engine grounds *incrementally* by default: every node carries the
:class:`~repro.gdatalog.grounders.GroundingState` of its AtR set, and a
child's state is obtained by extending the parent's with the single new AtR
rule (semi-naive delta propagation) instead of re-running the grounding
fixpoint from scratch.  Set :attr:`ChaseConfig.incremental` to ``False`` to
fall back to per-node from-scratch grounding (the reference behaviour used
by the equivalence tests and the E9 benchmark baseline).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterator, Sequence

from repro.exceptions import ChaseLimitError, InferenceError
from repro.rng import seeded_random
from repro.gdatalog.atr import GroundAtRRule
from repro.gdatalog.grounders import Grounder, GroundingState
from repro.gdatalog.outcomes import PossibleOutcome
from repro.logic.atoms import Atom
from repro.logic.rules import Rule

__all__ = [
    "TriggerStrategy",
    "ChaseConfig",
    "ChaseNode",
    "ChaseStats",
    "ChaseResult",
    "ChaseEngine",
]


class TriggerStrategy(str, Enum):
    """How the chase picks the next trigger among the pending Active atoms.

    By Lemma 4.4 every strategy yields the same set of finite possible
    outcomes; exposing the choice lets the tests verify order independence.
    """

    FIRST = "first"
    LAST = "last"
    RANDOM = "random"


@dataclass(frozen=True)
class ChaseConfig:
    """Limits and tolerances of the exhaustive chase.

    Attributes
    ----------
    max_depth:
        Maximum number of trigger applications along one path; deeper paths
        are truncated and their mass moves to the error event.
    max_outcomes:
        Upper bound on the number of finite possible outcomes produced;
        exceeding it raises :class:`ChaseLimitError` in strict mode and
        truncates (moving the remaining mass to the error event) otherwise.
    mass_tolerance:
        For distributions with infinite support, outcomes are enumerated
        until at least ``1 - mass_tolerance`` of the conditional mass is
        covered; the remainder goes to the error event.
    max_support:
        Hard cap on the number of branches per trigger.
    strict:
        Whether hitting ``max_outcomes`` raises instead of truncating.
    trigger_strategy / seed:
        Trigger selection policy (see :class:`TriggerStrategy`).
    incremental:
        Whether chase nodes carry a reusable
        :class:`~repro.gdatalog.grounders.GroundingState` that children
        extend by one AtR rule (the default).  When ``False`` every node's
        grounding is recomputed from scratch via
        :meth:`~repro.gdatalog.grounders.Grounder.ground` — identical
        results, dramatically slower on larger chase trees; kept as the
        reference baseline.
    factorize:
        Whether exact inference may decompose the ground program into
        independent components and chase each on its own sub-database
        (see :mod:`repro.gdatalog.factorize`).  Read by the engine layer,
        not by :class:`ChaseEngine` itself; programs whose ground
        dependency graph is connected fall back to the sequential chase.
    slice_for_query:
        Query atoms (or atom strings) the engine may slice the program for
        before grounding: only the backward-reachable part of the rule
        graph — plus every constraint, negative cycle and inexact choice —
        is chased (see :mod:`repro.gdatalog.relevance`).  ``()`` slices to
        the model-killing core (the exact slice for stable-model-existence
        queries); ``None`` (the default) disables slicing.  Read by the
        engine layer, not by :class:`ChaseEngine` itself.
    """

    max_depth: int = 200
    max_outcomes: int = 200_000
    mass_tolerance: float = 1e-9
    max_support: int = 64
    strict: bool = False
    trigger_strategy: TriggerStrategy = TriggerStrategy.FIRST
    seed: int = 0
    incremental: bool = True
    factorize: bool = False
    slice_for_query: tuple[Atom | str, ...] | None = None


@dataclass(frozen=True)
class ChaseNode:
    """A node of the chase tree: an AtR set, its grounding, and bookkeeping.

    ``state`` carries the reusable grounding state when the engine runs
    incrementally (``None`` in from-scratch mode); it never participates in
    node equality.
    """

    atr_rules: frozenset[GroundAtRRule]
    grounding: frozenset[Rule]
    probability: float
    depth: int
    state: GroundingState | None = field(default=None, compare=False, repr=False)

    def triggers(self, grounder: Grounder) -> list[Atom]:
        if self.state is not None:
            return grounder.pending_triggers_from_state(self.state)
        return grounder.pending_triggers(self.atr_rules, self.grounding)


@dataclass
class ChaseStats:
    """Profiling counters of one chase run (surfaced by ``--profile``)."""

    nodes_expanded: int = 0
    nodes_visited: int = 0
    leaves: int = 0
    grounding_seconds: float = 0.0
    incremental_extensions: int = 0
    full_groundings: int = 0
    join_index_probes: int = 0
    join_full_scans: int = 0
    join_plans_compiled: int = 0
    join_plans_reused: int = 0
    columnar_batches: int = 0
    columnar_rows_selected: int = 0
    columnar_rows_joined: int = 0
    columnar_snapshot_copies: int = 0

    def merge_grounder(self, grounder: Grounder) -> None:
        grounder.stats.sync_join_counters()
        self.incremental_extensions = grounder.stats.incremental_extensions
        self.full_groundings = grounder.stats.full_groundings
        self.join_index_probes = grounder.stats.index_probes
        self.join_full_scans = grounder.stats.full_scans
        self.join_plans_compiled = grounder.stats.plans_compiled
        self.join_plans_reused = grounder.stats.plans_reused
        self.columnar_batches = grounder.stats.columnar_batches
        self.columnar_rows_selected = grounder.stats.columnar_rows_selected
        self.columnar_rows_joined = grounder.stats.columnar_rows_joined
        self.columnar_snapshot_copies = grounder.stats.columnar_snapshot_copies


@dataclass
class ChaseResult:
    """The outcome of an exhaustive chase.

    ``error_probability`` collects the mass of truncated branches (infinite
    supports cut at the tolerance, depth-limited paths, outcome-count
    truncation); it upper-bounds the paper's ``P(Ω∞)`` for the configured
    limits and equals it in the limit of unbounded exploration.
    ``stats`` carries the profiling counters of the run.
    """

    outcomes: list[PossibleOutcome]
    error_probability: float
    truncated_paths: int
    max_depth_reached: int
    stats: ChaseStats | None = None

    @property
    def finite_probability(self) -> float:
        return sum(o.probability for o in self.outcomes)

    def __iter__(self) -> Iterator[PossibleOutcome]:
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


class ChaseEngine:
    """Exhaustive, order-independent chase over a fixed grounder."""

    def __init__(self, grounder: Grounder, config: ChaseConfig | None = None):
        self.grounder = grounder
        self.config = config or ChaseConfig()
        self._registry = grounder.translated.program.registry
        self._rng = seeded_random(self.config.seed)
        self.stats = ChaseStats()

    # -- public API -------------------------------------------------------------

    def root(self) -> ChaseNode:
        """The root node: the empty AtR set and its grounding."""
        empty: frozenset[GroundAtRRule] = frozenset()
        started = time.perf_counter()
        if self.config.incremental:
            state = self.grounder.initial_state()
            grounding = state.grounding()
        else:
            state = None
            grounding = self.grounder.ground(empty)
        self.stats.grounding_seconds += time.perf_counter() - started
        return ChaseNode(empty, grounding, 1.0, 0, state=state)

    def expand(self, node: ChaseNode, trigger: Atom) -> list[ChaseNode]:
        """One trigger application ``Σ⟨α⟩{Σ1, Σ2, ...}`` (Definition 4.1).

        Children are created only for outcomes with positive probability;
        infinite supports are truncated at the configured tolerance.
        """
        spec = self.grounder.translated.spec_for_active(trigger.predicate)
        distribution = self._registry.get(spec.distribution)
        params = spec.parameters_of(trigger)
        outcomes, _covered = distribution.truncated_support(
            params, mass_tolerance=self.config.mass_tolerance, max_outcomes=self.config.max_support
        )
        self.stats.nodes_expanded += 1
        children: list[ChaseNode] = []
        for outcome in outcomes:
            probability = distribution.pmf(params, outcome)
            if probability <= 0.0:
                continue
            atr_rule = GroundAtRRule.of(spec, trigger, outcome)
            children.append(
                self._child(node, atr_rule, node.probability * probability)
            )
        return children

    def _child(self, node: ChaseNode, atr_rule: GroundAtRRule, probability: float) -> ChaseNode:
        """Build one child node, extending the parent's grounding state if present."""
        child_atr = frozenset(node.atr_rules | {atr_rule})
        started = time.perf_counter()
        if node.state is not None:
            child_state = self.grounder.extend_state(node.state, (atr_rule,))
            child_grounding = child_state.grounding()
        else:
            child_state = None
            child_grounding = self.grounder.ground(child_atr, seed=node.grounding)
        self.stats.grounding_seconds += time.perf_counter() - started
        return ChaseNode(child_atr, child_grounding, probability, node.depth + 1, state=child_state)

    def select_trigger(self, triggers: Sequence[Atom]) -> Atom:
        """Pick the next trigger according to the configured strategy."""
        if not triggers:
            raise InferenceError(
                "select_trigger called with no pending triggers; "
                "the node is terminal and must not be expanded"
            )
        if self.config.trigger_strategy is TriggerStrategy.LAST:
            return triggers[-1]
        if self.config.trigger_strategy is TriggerStrategy.RANDOM:
            return triggers[self._rng.randrange(len(triggers))]
        return triggers[0]

    def run(self, root: ChaseNode | None = None) -> ChaseResult:
        """Exhaustively enumerate the finite possible outcomes (depth-first).

        *root* defaults to the empty configuration; passing an interior
        chase node restricts the enumeration to its subtree (the parallel
        explorer in :mod:`repro.runtime.pool` farms disjoint subtrees to
        workers this way and merges the partial results).
        """
        outcomes: list[PossibleOutcome] = []
        error_mass = 0.0
        truncated = 0
        max_depth_reached = 0
        self.stats = ChaseStats()
        self.grounder.stats.reset()

        stack: list[ChaseNode] = [self.root() if root is None else root]
        while stack:
            node = stack.pop()
            self.stats.nodes_visited += 1
            max_depth_reached = max(max_depth_reached, node.depth)
            triggers = node.triggers(self.grounder)
            if not triggers:
                self.stats.leaves += 1
                if len(outcomes) >= self.config.max_outcomes:
                    if self.config.strict:
                        raise ChaseLimitError(
                            f"chase produced more than {self.config.max_outcomes} possible outcomes"
                        )
                    error_mass += node.probability
                    truncated += 1
                    continue
                outcomes.append(
                    PossibleOutcome(
                        atr_rules=node.atr_rules,
                        grounding=node.grounding,
                        probability=node.probability,
                        translated=self.grounder.translated,
                    )
                )
                continue
            if node.depth >= self.config.max_depth:
                if self.config.strict:
                    raise ChaseLimitError(
                        f"chase exceeded the maximum depth of {self.config.max_depth}"
                    )
                error_mass += node.probability
                truncated += 1
                continue
            trigger = self.select_trigger(triggers)
            children = self.expand(node, trigger)
            branch_mass = sum(c.probability for c in children)
            # Mass lost to truncated (infinite) supports.
            error_mass += max(node.probability - branch_mass, 0.0)
            stack.extend(children)

        # Canonical order via cheap structural keys (the AtR set identifies
        # the outcome); replaces the old O(n·|rules|·log) stringify-sort.
        outcomes.sort(key=lambda o: o.choice_key)
        self.stats.merge_grounder(self.grounder)
        return ChaseResult(
            outcomes=outcomes,
            error_probability=min(error_mass, 1.0),
            truncated_paths=truncated,
            max_depth_reached=max_depth_reached,
            stats=self.stats,
        )

    # -- single-path sampling (used by the Monte-Carlo sampler) -------------------

    def sample_path(self, rng, start: ChaseNode | None = None) -> tuple[PossibleOutcome | None, int]:
        """Follow a single random chase path; ``None`` signals the error event.

        Returns ``(outcome, depth)``.  Each trigger is resolved by sampling
        the corresponding distribution, so the path ends at a possible
        outcome with exactly its semantic probability.  *start* lets the
        stratified adaptive sampler begin below a fixed first choice; the
        returned outcome's probability is then conditional on the prefix
        (the start node's probability factor is inherited as-is).
        """
        node = self.root() if start is None else start
        while True:
            triggers = node.triggers(self.grounder)
            if not triggers:
                return (
                    PossibleOutcome(
                        atr_rules=node.atr_rules,
                        grounding=node.grounding,
                        probability=node.probability,
                        translated=self.grounder.translated,
                    ),
                    node.depth,
                )
            if node.depth >= self.config.max_depth:
                return None, node.depth
            trigger = self.select_trigger(triggers)
            spec = self.grounder.translated.spec_for_active(trigger.predicate)
            distribution = self._registry.get(spec.distribution)
            params = spec.parameters_of(trigger)
            outcome = distribution.sample(params, rng)
            probability = distribution.pmf(params, outcome)
            atr_rule = GroundAtRRule.of(spec, trigger, outcome)
            node = self._child(node, atr_rule, node.probability * probability)
