"""Probabilistic Answer Set Programming baseline (credal semantics).

Probabilistic ASP (Cozman & Mauá; Baral et al.) attaches probabilities to
facts of an answer-set program.  Because a total choice may admit several
stable models (or none), queries are answered with *lower* and *upper*
probabilities:

* lower: mass of the total choices in which the query holds in **every**
  stable model;
* upper: mass of the total choices in which the query holds in **some**
  stable model.

Total choices without stable models are reported separately as
``inconsistent_mass`` (under the standard credal semantics the program is
required to be consistent for every total choice; the paper's coin example
shows how generative Datalog¬ deliberately departs from this).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.rng import default_rng

from repro.baselines.problog import ProbabilisticFact
from repro.exceptions import ValidationError
from repro.logic.atoms import Atom
from repro.logic.database import Database
from repro.logic.program import DatalogProgram
from repro.stable.grounding import ground_program
from repro.stable.solver import SolverConfig, StableModelSolver

__all__ = ["CredalInterval", "PASPProgram"]


@dataclass(frozen=True)
class CredalInterval:
    """A lower/upper probability pair (plus the mass of inconsistent choices)."""

    lower: float
    upper: float
    inconsistent_mass: float = 0.0

    def width(self) -> float:
        return self.upper - self.lower

    def __str__(self) -> str:
        rendered = f"[{self.lower:.6f}, {self.upper:.6f}]"
        if self.inconsistent_mass > 0.0:
            rendered += f" (inconsistent mass {self.inconsistent_mass:.6f})"
        return rendered


class PASPProgram:
    """Probabilistic facts + an answer-set (Datalog¬ with constraints) program."""

    def __init__(
        self,
        probabilistic_facts: Iterable[ProbabilisticFact],
        rules: DatalogProgram,
        database: Database | Iterable[Atom] = (),
        solver_config: SolverConfig | None = None,
    ):
        self.probabilistic_facts = tuple(probabilistic_facts)
        self.rules = rules
        self.database = database if isinstance(database, Database) else Database(database)
        self.solver = StableModelSolver(solver_config)
        if len(self.probabilistic_facts) > 25:
            raise ValidationError(
                "exact credal inference enumerates 2^n total choices; use estimate_query for n > 25"
            )

    # -- exact inference -----------------------------------------------------------

    def _total_choices(self) -> Iterable[tuple[tuple[bool, ...], float]]:
        for selection in itertools.product((False, True), repeat=len(self.probabilistic_facts)):
            probability = 1.0
            for chosen, fact in zip(selection, self.probabilistic_facts):
                probability *= fact.probability if chosen else (1.0 - fact.probability)
            if probability > 0.0:
                yield selection, probability

    def _stable_models_for_choice(self, selection: Sequence[bool]) -> list[frozenset[Atom]]:
        chosen = [f.atom for picked, f in zip(selection, self.probabilistic_facts) if picked]
        ground = ground_program(self.rules, self.database.with_facts(chosen))
        return self.solver.all_stable_models(ground)

    def query(self, atom: Atom) -> CredalInterval:
        """Exact lower/upper probability of *atom*."""
        lower = 0.0
        upper = 0.0
        inconsistent = 0.0
        for selection, mass in self._total_choices():
            models = self._stable_models_for_choice(selection)
            if not models:
                inconsistent += mass
                continue
            if any(atom in model for model in models):
                upper += mass
            if all(atom in model for model in models):
                lower += mass
        return CredalInterval(lower, upper, inconsistent)

    def consistency_probability(self) -> float:
        """Mass of the total choices possessing at least one stable model."""
        mass = 0.0
        for selection, probability in self._total_choices():
            if self._stable_models_for_choice(selection):
                mass += probability
        return mass

    # -- approximate inference --------------------------------------------------------

    def estimate_query(self, atom: Atom, n: int = 1000, seed: int | None = None) -> CredalInterval:
        """Monte-Carlo estimate of the credal interval of *atom*."""
        rng = default_rng(seed)
        probabilities = [f.probability for f in self.probabilistic_facts]
        lower_hits = 0
        upper_hits = 0
        inconsistent = 0
        for _ in range(n):
            draws = rng.random(len(probabilities))
            selection = tuple(bool(u < p) for u, p in zip(draws, probabilities))
            models = self._stable_models_for_choice(selection)
            if not models:
                inconsistent += 1
                continue
            if any(atom in model for model in models):
                upper_hits += 1
            if all(atom in model for model in models):
                lower_hits += 1
        return CredalInterval(lower_hits / n, upper_hits / n, inconsistent / n)
