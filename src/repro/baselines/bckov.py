"""The BCKOV semantics for *positive* generative Datalog (Bárány et al. 2017).

Appendix C of the paper recalls the original semantics of positive
GDatalog[Δ] programs: possible outcomes are minimal models of the
translation ``Σ̃_Π`` (which omits the intermediate Active predicates) whose
Result atoms all have positive probability, and the probability of a finite
outcome is the product of the probabilities of its Result atoms.

This module implements that semantics directly with an instance-level chase:
states are instances (sets of ground atoms); whenever a rule body matches
and a needed Result atom is missing, the chase branches over the outcomes of
the corresponding distribution; deterministic consequences are closed under
the rules.  The result is the set ``Ω^BCKOV_Π(D)`` with probabilities, which
Theorem C.4 relates (by isomorphism) to the simple-grounder semantics of the
main text — the relationship the test suite and bench E4 verify.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.distributions.registry import DistributionRegistry
from repro.exceptions import ChaseLimitError, ValidationError
from repro.gdatalog.atr import AtRSpec, outcome_to_constant
from repro.gdatalog.delta_terms import DeltaTerm
from repro.gdatalog.syntax import GDatalogProgram, GDatalogRule
from repro.logic.atoms import Atom
from repro.logic.database import Database
from repro.logic.substitution import Substitution
from repro.logic.terms import Constant, Term, Variable
from repro.logic.unify import FactIndex, match_conjunction

__all__ = ["BCKOVOutcome", "BCKOVResult", "BCKOVEngine"]


@dataclass(frozen=True)
class BCKOVOutcome:
    """A BCKOV possible outcome: a minimal model with its probability."""

    instance: frozenset[Atom]
    probability: float

    def visible_atoms(self) -> frozenset[Atom]:
        """The atoms over the original schema (Result atoms hidden)."""
        return frozenset(a for a in self.instance if not a.predicate.name.startswith("result_"))

    def __len__(self) -> int:
        return len(self.instance)


@dataclass
class BCKOVResult:
    """All BCKOV possible outcomes plus truncation bookkeeping."""

    outcomes: list[BCKOVOutcome]
    error_probability: float

    @property
    def finite_probability(self) -> float:
        return sum(o.probability for o in self.outcomes)

    def distribution_over_instances(self, visible_only: bool = False) -> dict[frozenset[Atom], float]:
        """``J ↦ P(J)`` (summing duplicates, which minimality rules out anyway)."""
        distribution: dict[frozenset[Atom], float] = {}
        for outcome in self.outcomes:
            key = outcome.visible_atoms() if visible_only else outcome.instance
            distribution[key] = distribution.get(key, 0.0) + outcome.probability
        return distribution

    def __iter__(self):
        return iter(self.outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)


@dataclass(frozen=True)
class _PendingSample:
    """A Result atom that must be invented to satisfy a matched rule body."""

    spec: AtRSpec
    prefix: tuple[Constant, ...]  # ground parameters followed by the event signature


class BCKOVEngine:
    """Exhaustive enumeration of BCKOV possible outcomes of a positive GDatalog[Δ] program."""

    def __init__(
        self,
        program: GDatalogProgram,
        database: Database,
        max_depth: int = 10_000,
        max_outcomes: int = 200_000,
        mass_tolerance: float = 1e-9,
        max_support: int = 64,
    ):
        if not program.is_positive:
            raise ValidationError("the BCKOV baseline only supports positive programs without constraints")
        self.program = program
        self.database = database
        self.registry: DistributionRegistry = program.registry
        self.max_depth = max_depth
        self.max_outcomes = max_outcomes
        self.mass_tolerance = mass_tolerance
        self.max_support = max_support

    # -- chase -------------------------------------------------------------------

    def run(self) -> BCKOVResult:
        """Enumerate all (finite) BCKOV possible outcomes of ``D`` w.r.t. ``Π``."""
        outcomes: list[BCKOVOutcome] = []
        error_mass = 0.0
        stack: list[tuple[frozenset[Atom], float, int]] = [(frozenset(self.database.facts), 1.0, 0)]

        while stack:
            instance, probability, depth = stack.pop()
            instance = self._deterministic_closure(instance)
            pending = self._first_pending_sample(instance)
            if pending is None:
                if len(outcomes) >= self.max_outcomes:
                    raise ChaseLimitError("BCKOV chase exceeded the configured number of outcomes")
                outcomes.append(BCKOVOutcome(instance, probability))
                continue
            if depth >= self.max_depth:
                error_mass += probability
                continue
            distribution = self.registry.get(pending.spec.distribution)
            params = tuple(c.as_number() for c in pending.prefix[: pending.spec.parameter_count])
            supported, _mass = distribution.truncated_support(
                params, mass_tolerance=self.mass_tolerance, max_outcomes=self.max_support
            )
            branch_mass = 0.0
            for outcome_value in supported:
                pmf = distribution.pmf(params, outcome_value)
                if pmf <= 0.0:
                    continue
                result_atom = Atom(
                    pending.spec.result_predicate, pending.prefix + (outcome_to_constant(outcome_value),)
                )
                stack.append((instance | {result_atom}, probability * pmf, depth + 1))
                branch_mass += pmf
            error_mass += probability * max(1.0 - branch_mass, 0.0)

        outcomes.sort(key=lambda o: sorted(str(a) for a in o.instance))
        return BCKOVResult(outcomes, min(error_mass, 1.0))

    # -- helpers --------------------------------------------------------------------

    def _deterministic_closure(self, instance: frozenset[Atom]) -> frozenset[Atom]:
        """Close the instance under rule applications whose Result atoms are present."""
        atoms = set(instance)
        index = FactIndex(atoms)
        changed = True
        while changed:
            changed = False
            for rule_ in self.program.rules:
                for substitution in match_conjunction(rule_.positive_body, index):
                    head_atom = self._instantiate_head(rule_, substitution, index)
                    if head_atom is not None and head_atom not in atoms:
                        atoms.add(head_atom)
                        index.add(head_atom)
                        changed = True
        return frozenset(atoms)

    def _instantiate_head(
        self, rule_: GDatalogRule, substitution: Substitution, index: FactIndex
    ) -> Atom | None:
        """The ground head atom for a body match, or ``None`` if a Result atom is missing."""
        head_args: list[Term] = []
        for arg in rule_.head.args:
            if isinstance(arg, DeltaTerm):
                prefix = self._ground_prefix(arg, substitution)
                spec = _spec_for(arg)
                sampled = self._lookup_result(index, spec, prefix)
                if sampled is None:
                    return None
                head_args.append(sampled)
            elif isinstance(arg, Variable):
                value = substitution.get(arg)
                if value is None:
                    return None
                head_args.append(value)
            else:
                head_args.append(arg)
        return Atom(rule_.head.predicate, tuple(head_args))

    def _first_pending_sample(self, instance: frozenset[Atom]) -> _PendingSample | None:
        """The first Δ-term occurrence whose Result atom is missing, if any."""
        index = FactIndex(instance)
        pending: list[_PendingSample] = []
        for rule_ in self.program.rules:
            if not rule_.is_generative:
                continue
            for substitution in match_conjunction(rule_.positive_body, index):
                for _, delta in rule_.delta_terms():
                    prefix = self._ground_prefix(delta, substitution)
                    spec = _spec_for(delta)
                    if self._lookup_result(index, spec, prefix) is None:
                        pending.append(_PendingSample(spec, prefix))
        if not pending:
            return None
        return sorted(pending, key=lambda p: (str(p.spec.result_predicate), str(p.prefix)))[0]

    @staticmethod
    def _ground_prefix(delta: DeltaTerm, substitution: Substitution) -> tuple[Constant, ...]:
        grounded = delta.substitute(substitution.as_dict())
        prefix: list[Constant] = []
        for term in grounded.parameters + grounded.event_signature:
            if not isinstance(term, Constant):
                raise ValidationError(f"Δ-term {delta} not ground under body match")
            prefix.append(term)
        return tuple(prefix)

    @staticmethod
    def _lookup_result(index: FactIndex, spec: AtRSpec, prefix: tuple[Constant, ...]) -> Constant | None:
        """The sampled constant stored for ``Result(prefix, ·)``, if present."""
        for candidate in index.facts_for(spec.result_predicate):
            if candidate.args[:-1] == prefix:
                last = candidate.args[-1]
                assert isinstance(last, Constant)
                return last
        return None


def _spec_for(delta: DeltaTerm) -> AtRSpec:
    return AtRSpec(
        distribution=delta.distribution.lower(),
        parameter_count=delta.parameter_dimension,
        event_count=delta.event_arity,
    )
