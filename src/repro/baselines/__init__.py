"""Baselines implemented from scratch: BCKOV positive semantics, ProbLog-style facts, credal PASP."""

from repro.baselines.bckov import BCKOVEngine, BCKOVOutcome, BCKOVResult
from repro.baselines.pasp import CredalInterval, PASPProgram
from repro.baselines.problog import ProbabilisticFact, ProbLogProgram

__all__ = [
    "BCKOVEngine",
    "BCKOVOutcome",
    "BCKOVResult",
    "CredalInterval",
    "PASPProgram",
    "ProbabilisticFact",
    "ProbLogProgram",
]
