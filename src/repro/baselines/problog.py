"""A ProbLog-style baseline: probabilistic facts over a stratified Datalog¬ program.

ProbLog (De Raedt et al.) attaches probabilities to *facts* (or rules); a
total choice independently includes each probabilistic fact with its
probability, and the success probability of a query atom is the total mass
of the choices whose (unique, stratified) model entails the atom.

The paper's related-work section positions generative Datalog against this
family: ProbLog places uncertainty at the level of facts/rules, generative
Datalog at the level of attribute values in rule heads.  The baseline lets
the benchmark harness compare both styles on workloads expressible in each
(e.g. the monotone part of the network-resilience example).

Exact inference enumerates the ``2^n`` total choices of the ``n``
probabilistic facts (with memoization of repeated evaluations); a
Monte-Carlo estimator is provided for larger fact sets.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.rng import default_rng

from repro.exceptions import ValidationError
from repro.logic.atoms import Atom
from repro.logic.database import Database
from repro.logic.program import DatalogProgram
from repro.stable.solver import SolverConfig, StableModelSolver, stable_models
from repro.stable.stratified import perfect_model

__all__ = ["ProbabilisticFact", "ProbLogProgram"]


@dataclass(frozen=True)
class ProbabilisticFact:
    """An independent probabilistic fact ``p :: atom``."""

    probability: float
    atom: Atom

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValidationError(f"fact probability must be in [0, 1], got {self.probability}")
        if not self.atom.is_ground:
            raise ValidationError(f"probabilistic facts must be ground, got {self.atom}")

    def __str__(self) -> str:
        return f"{self.probability}::{self.atom}."


class ProbLogProgram:
    """Probabilistic facts + a stratified Datalog¬ rule program + deterministic facts."""

    def __init__(
        self,
        probabilistic_facts: Iterable[ProbabilisticFact],
        rules: DatalogProgram,
        database: Database | Iterable[Atom] = (),
    ):
        self.probabilistic_facts = tuple(probabilistic_facts)
        self.rules = rules
        self.database = database if isinstance(database, Database) else Database(database)
        if not rules.is_stratified:
            raise ValidationError("the ProbLog baseline requires a stratified rule program")

    # -- exact inference --------------------------------------------------------

    def _total_choices(self) -> Iterable[tuple[tuple[bool, ...], float]]:
        """All total choices with their probabilities."""
        for selection in itertools.product((False, True), repeat=len(self.probabilistic_facts)):
            probability = 1.0
            for chosen, fact in zip(selection, self.probabilistic_facts):
                probability *= fact.probability if chosen else (1.0 - fact.probability)
            if probability > 0.0:
                yield selection, probability

    def _model_for_choice(self, selection: Sequence[bool]) -> frozenset[Atom]:
        chosen = [f.atom for picked, f in zip(selection, self.probabilistic_facts) if picked]
        return perfect_model(self.rules, self.database.with_facts(chosen))

    def query(self, atom: Atom) -> float:
        """The exact success probability of *atom*."""
        probability = 0.0
        for selection, mass in self._total_choices():
            if atom in self._model_for_choice(selection):
                probability += mass
        return probability

    def query_many(self, atoms: Sequence[Atom]) -> dict[Atom, float]:
        """Exact success probabilities for several atoms with one sweep over the choices."""
        totals = {atom: 0.0 for atom in atoms}
        for selection, mass in self._total_choices():
            model = self._model_for_choice(selection)
            for atom in atoms:
                if atom in model:
                    totals[atom] += mass
        return totals

    def distribution_over_models(self) -> dict[frozenset[Atom], float]:
        """``M ↦ P(M)`` over the models induced by total choices."""
        distribution: dict[frozenset[Atom], float] = {}
        for selection, mass in self._total_choices():
            model = self._model_for_choice(selection)
            distribution[model] = distribution.get(model, 0.0) + mass
        return distribution

    # -- approximate inference ------------------------------------------------------

    def estimate_query(self, atom: Atom, n: int = 1000, seed: int | None = None) -> float:
        """Monte-Carlo estimate of the success probability of *atom*."""
        rng = default_rng(seed)
        probabilities = [f.probability for f in self.probabilistic_facts]
        successes = 0
        for _ in range(n):
            draws = rng.random(len(probabilities))
            selection = tuple(bool(u < p) for u, p in zip(draws, probabilities))
            if atom in self._model_for_choice(selection):
                successes += 1
        return successes / n

    # -- reporting ----------------------------------------------------------------------

    def __str__(self) -> str:
        lines = [str(f) for f in self.probabilistic_facts]
        lines.extend(str(r) for r in self.rules.rules)
        return "\n".join(lines)
