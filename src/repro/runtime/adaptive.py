"""Adaptive Monte-Carlo estimation with confidence-driven stopping.

Fixed-budget sampling either wastes samples (easy queries converge early)
or under-delivers (hard queries stay noisy).  :class:`AdaptiveSampler`
draws samples in *chunks* and stops as soon as the confidence interval of
the running estimate is narrower than a requested half-width — using the
**Wilson-score** interval, which (unlike the Wald/normal interval) keeps a
positive width when the empirical proportion sits at 0 or 1, so the driver
cannot stop after one lucky chunk of unanimous samples.

Optionally the sampler *stratifies* over the branches of the first chase
trigger: each first-choice outcome ``o`` (mass ``p_o``) becomes a stratum
sampled conditionally from its child node, and the estimates combine as
``p̂ = Σ p_o q̂_o`` with half-width ``sqrt(Σ p_o² hw_o²)``.  Branch masses
are then exact rather than estimated, which removes the first choice's
variance entirely — on strongly skewed first choices this reaches a target
half-width with far fewer samples.

Usage::

    driver = AdaptiveSampler(grounder, target_half_width=0.02, seed=7)
    result = driver.estimate(HasStableModelQuery())
    result.value, result.half_width, result.samples, result.converged
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.rng import default_rng, sqrt

from repro.gdatalog.chase import ChaseConfig, ChaseEngine
from repro.gdatalog.grounders import Grounder
from repro.gdatalog.sampler import Estimate
from repro.ppdl.queries import Query

__all__ = ["AdaptiveEstimate", "AdaptiveSampler"]


@dataclass(frozen=True)
class AdaptiveEstimate:
    """The result of one adaptive run: estimate, achieved precision, effort."""

    value: float
    half_width: float
    samples: int
    chunks: int
    converged: bool
    stratified: bool

    def as_estimate(self) -> Estimate:
        """A plain :class:`Estimate` view (half-width recast as z·SE)."""
        standard_error = self.half_width / 1.96 if self.half_width else 0.0
        return Estimate(self.value, standard_error, self.samples)

    def __str__(self) -> str:
        marker = "converged" if self.converged else "budget exhausted"
        return f"{self.value:.6f} ± {self.half_width:.6f} (n={self.samples}, {marker})"


class _Stratum:
    """One first-trigger branch: its exact mass and running success counts."""

    __slots__ = ("node", "mass", "samples", "successes")

    def __init__(self, node, mass: float):
        self.node = node
        self.mass = mass
        self.samples = 0
        self.successes = 0

    def half_width(self, z: float) -> float:
        if self.samples == 0:
            return 0.5  # maximally uncertain before the first draw
        return Estimate(
            self.successes / self.samples, 0.0, self.samples
        ).half_width(z, method="wilson")


class AdaptiveSampler:
    """Chunked Monte-Carlo driver that stops at a target Wilson half-width.

    Parameters
    ----------
    grounder / config:
        As for :class:`~repro.gdatalog.chase.ChaseEngine`.
    target_half_width:
        Stop once the (combined) Wilson half-width is at most this.
    z:
        Critical value of the interval (1.96 ≈ 95%).
    chunk_size:
        Samples drawn between convergence checks.
    max_samples:
        Hard budget; the result reports ``converged=False`` when it binds.
    stratify:
        Split on the first trigger's branches (see module docstring).
    """

    def __init__(
        self,
        grounder: Grounder,
        config: ChaseConfig | None = None,
        target_half_width: float = 0.01,
        z: float = 1.96,
        chunk_size: int = 256,
        max_samples: int = 200_000,
        stratify: bool = False,
        seed: int | None = None,
    ):
        if target_half_width <= 0.0:
            raise ValueError(f"target_half_width must be positive, got {target_half_width}")
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self._engine = ChaseEngine(grounder, config or ChaseConfig())
        self._rng = default_rng(seed)
        self.target_half_width = float(target_half_width)
        self.z = float(z)
        self.chunk_size = int(chunk_size)
        self.max_samples = int(max_samples)
        self.stratify = stratify

    # -- public API -------------------------------------------------------------

    def estimate(self, query: Query) -> AdaptiveEstimate:
        """Estimate ``P(query)`` to the target precision."""
        if self.stratify:
            strata = self._first_branch_strata()
            if strata is not None:
                return self._estimate_stratified(query, strata)
        return self._estimate_plain(query)

    # -- plain chunked loop --------------------------------------------------------

    def _estimate_plain(self, query: Query) -> AdaptiveEstimate:
        successes = 0
        samples = 0
        chunks = 0
        while samples < self.max_samples:
            budget = min(self.chunk_size, self.max_samples - samples)
            for _ in range(budget):
                outcome, _depth = self._engine.sample_path(self._rng)
                if outcome is not None and query.outcome_predicate(outcome):
                    successes += 1
            samples += budget
            chunks += 1
            half_width = Estimate(successes / samples, 0.0, samples).half_width(
                self.z, method="wilson"
            )
            if half_width <= self.target_half_width:
                return AdaptiveEstimate(
                    successes / samples, half_width, samples, chunks, True, False
                )
        half_width = Estimate(successes / samples, 0.0, samples).half_width(self.z, method="wilson")
        return AdaptiveEstimate(successes / samples, half_width, samples, chunks, False, False)

    # -- stratified loop ------------------------------------------------------------

    def _first_branch_strata(self) -> list[_Stratum] | None:
        """The first trigger's children as strata, or ``None`` when degenerate."""
        root = self._engine.root()
        triggers = root.triggers(self._engine.grounder)
        if not triggers:
            return None
        trigger = self._engine.select_trigger(triggers)
        children = self._engine.expand(root, trigger)
        if len(children) < 2:
            return None
        return [_Stratum(child, child.probability) for child in children]

    def _estimate_stratified(self, query: Query, strata: list[_Stratum]) -> AdaptiveEstimate:
        samples = 0
        chunks = 0
        while samples < self.max_samples:
            budget = min(self.chunk_size, self.max_samples - samples)
            allocations = self._allocate(strata, budget)
            for stratum, allocation in zip(strata, allocations):
                for _ in range(allocation):
                    outcome, _depth = self._engine.sample_path(self._rng, start=stratum.node)
                    stratum.samples += 1
                    if outcome is not None and query.outcome_predicate(outcome):
                        stratum.successes += 1
            samples += sum(allocations)
            chunks += 1
            value, half_width = self._combine(strata)
            if half_width <= self.target_half_width:
                return AdaptiveEstimate(value, half_width, samples, chunks, True, True)
        value, half_width = self._combine(strata)
        return AdaptiveEstimate(value, half_width, samples, chunks, False, True)

    def _allocate(self, strata: list[_Stratum], budget: int) -> list[int]:
        """Proportional-to-mass allocation, at least one sample per stratum."""
        raw = [max(1, int(round(budget * stratum.mass))) for stratum in strata]
        # Trim overshoot deterministically from the largest allocations.
        while sum(raw) > budget and max(raw) > 1:
            raw[raw.index(max(raw))] -= 1
        return raw

    def _combine(self, strata: list[_Stratum]) -> tuple[float, float]:
        """Combined estimate ``Σ p_o q̂_o`` and half-width ``sqrt(Σ p_o² hw_o²)``.

        The mass gap of truncated first-choice supports counts as failure
        (it belongs to the error event), matching the exact semantics.
        """
        value = sum(
            stratum.mass * (stratum.successes / stratum.samples)
            for stratum in strata
            if stratum.samples
        )
        variance_like = sum((stratum.mass * stratum.half_width(self.z)) ** 2 for stratum in strata)
        return value, float(sqrt(variance_like))
