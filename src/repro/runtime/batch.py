"""Batched query evaluation: many queries, one pass over the outcomes.

``Query.evaluate`` scans the whole output space once *per query*; a serving
workload that asks for dozens of marginals therefore pays ``|queries|``
passes, each of which re-walks every outcome's stable models.
:class:`QueryBatch` answers an arbitrary mix of
:class:`~repro.ppdl.queries.AtomQuery` / ``HasStableModelQuery`` / generic
:class:`~repro.ppdl.queries.Query` objects in a **single pass**: per
outcome it materializes the brave set (union of the stable models) and the
cautious set (their intersection) once, after which every atom query is a
set-membership test instead of a loop over the models.

The batched results are bit-identical to per-query ``evaluate`` — the same
probabilities are added in the same outcome order — which the property
tests assert on random workloads.

Usage::

    batch = QueryBatch([AtomQuery.of("infected(2, 1)"), HasStableModelQuery()])
    exact = batch.evaluate(engine.output_space())      # [0.271, 0.19]
    approx = batch.estimate(engine.sampler(seed=7), n=4000)
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.rng import sqrt

from repro.gdatalog.factorize import ProductSpace
from repro.gdatalog.outcomes import PossibleOutcome
from repro.gdatalog.probability_space import AbstractSpace
from repro.gdatalog.sampler import Estimate, MonteCarloSampler
from repro.logic.atoms import Atom
from repro.ppdl.queries import AtomQuery, HasStableModelQuery, Query

__all__ = ["QueryBatch"]


class QueryBatch:
    """A fixed sequence of queries evaluated together over one outcome scan."""

    def __init__(self, queries: Sequence[Query]):
        self._queries: tuple[Query, ...] = tuple(queries)
        for query in self._queries:
            if not isinstance(query, Query):
                raise TypeError(
                    f"QueryBatch accepts Query objects only, got {type(query).__name__}; "
                    "evaluate ConditionalQuery separately (it renormalizes the space)"
                )

    @property
    def queries(self) -> tuple[Query, ...]:
        return self._queries

    def __len__(self) -> int:
        return len(self._queries)

    # -- one-outcome kernel ------------------------------------------------------

    def _satisfaction(self, outcome: PossibleOutcome) -> list[bool]:
        """Which queries the outcome satisfies, computing model views once."""
        models = outcome.stable_models
        brave: frozenset[Atom] | None = None
        cautious: frozenset[Atom] | None = None
        if models:
            iterator = iter(models)
            first = next(iterator)
            brave_set, cautious_set = set(first), set(first)
            for model in iterator:
                brave_set |= model
                cautious_set &= model
            brave, cautious = frozenset(brave_set), frozenset(cautious_set)
        flags: list[bool] = []
        for query in self._queries:
            if isinstance(query, AtomQuery):
                if not models:
                    flags.append(False)
                elif query.mode == "brave":
                    flags.append(query.atom in brave)
                else:
                    flags.append(query.atom in cautious)
            elif isinstance(query, HasStableModelQuery):
                flags.append(bool(models))
            else:
                flags.append(query.outcome_predicate(outcome))
        return flags

    # -- exact -------------------------------------------------------------------

    def evaluate(self, space: AbstractSpace) -> list[float]:
        """Exact probabilities, aligned with the constructor's query order.

        Masses are accumulated with :func:`math.fsum` (exactly rounded), so
        the batched results match per-query ``evaluate`` bit for bit.  On a
        factorized :class:`~repro.gdatalog.factorize.ProductSpace`, atom and
        stable-model queries route to the relevant components and only the
        remaining generic queries share one lazy pass over the joint
        outcomes.
        """
        if isinstance(space, ProductSpace):
            return self._evaluate_product(space)
        contributions: list[list[float]] = [[] for _ in self._queries]
        for outcome in space:
            flags = self._satisfaction(outcome)
            probability = outcome.probability
            for position, satisfied in enumerate(flags):
                if satisfied:
                    contributions[position].append(probability)
        return [math.fsum(parts) for parts in contributions]

    def _evaluate_product(self, space: ProductSpace) -> list[float]:
        """Component-routed evaluation: generic queries share one joint pass."""
        results: list[float | None] = [None] * len(self._queries)
        generic_positions: list[int] = []
        for position, query in enumerate(self._queries):
            if isinstance(query, AtomQuery):
                results[position] = space.marginal(query.atom, mode=query.mode)
            elif isinstance(query, HasStableModelQuery):
                results[position] = space.probability_has_stable_model()
            else:
                generic_positions.append(position)
        if generic_positions:
            generic = [self._queries[position] for position in generic_positions]
            contributions: list[list[float]] = [[] for _ in generic]
            for outcome in space:
                for slot, query in enumerate(generic):
                    if query.outcome_predicate(outcome):
                        contributions[slot].append(outcome.probability)
            for slot, position in enumerate(generic_positions):
                results[position] = math.fsum(contributions[slot])
        return results  # type: ignore[return-value]

    # -- approximate --------------------------------------------------------------

    def estimate(self, sampler: MonteCarloSampler, n: int = 1000) -> list[Estimate]:
        """Monte-Carlo estimates sharing one set of *n* sampled outcomes.

        All queries are evaluated against the same sample, so a batch costs
        one sampling run instead of ``|queries|``.  Error-event samples
        satisfy no query, mirroring the exact semantics.
        """
        successes = [0] * len(self._queries)
        for _ in range(n):
            outcome = sampler.sample_outcome()
            if outcome is None:
                continue
            for position, satisfied in enumerate(self._satisfaction(outcome)):
                if satisfied:
                    successes[position] += 1
        estimates: list[Estimate] = []
        for count in successes:
            p_hat = count / n if n else 0.0
            standard_error = float(sqrt(max(p_hat * (1.0 - p_hat), 1e-300) / n)) if n else 0.0
            estimates.append(Estimate(p_hat, standard_error, n))
        return estimates
